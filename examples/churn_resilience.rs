//! Beyond the paper: what happens when suppliers *leave*?
//!
//! The paper's suppliers serve forever. Here each peer supplies for a
//! bounded lifetime after converting, and the system must outgrow its own
//! attrition. Under heavy churn the differentiated protocol is no longer
//! just faster — it is the difference between a functioning system and a
//! collapsed one.
//!
//! Run with `cargo run --release --example churn_resilience`.

use p2ps::core::admission::Protocol;
use p2ps::metrics::{AsciiPlot, Table, TimeSeries};
use p2ps::sim::{ArrivalPattern, SimConfig, Simulation};

fn renamed(series: &TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    out.extend(series.iter());
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new([
        "lifetime",
        "protocol",
        "peak capacity",
        "overall admission %",
    ]);
    let mut curves = Vec::new();

    for lifetime_hours in [4u64, 12, 0] {
        for protocol in [Protocol::Dac, Protocol::Ndac] {
            let mut builder = SimConfig::builder();
            builder
                .seed_suppliers(20)
                .requesting_peers(8_000)
                .arrival_window_hours(36)
                .duration_hours(72)
                .pattern(ArrivalPattern::Ramp)
                .protocol(protocol);
            if lifetime_hours > 0 {
                builder.supplier_lifetime_hours(lifetime_hours);
            }
            let report = Simulation::new(builder.build()?, 42).run();
            let peak = report
                .capacity()
                .iter()
                .map(|(_, v)| v)
                .fold(0.0f64, f64::max);
            let label = if lifetime_hours == 0 {
                "forever".to_owned()
            } else {
                format!("{lifetime_hours}h")
            };
            table.row([
                label.clone(),
                protocol.to_string(),
                format!("{peak:.0}"),
                format!("{:.1}", report.final_overall_admission_rate()),
            ]);
            if protocol == Protocol::Dac {
                curves.push(renamed(
                    report.capacity(),
                    &format!("DAC, lifetime {label}"),
                ));
            }
        }
    }

    let mut plot = AsciiPlot::new("DACp2p capacity under bounded supplier lifetimes", 72, 18);
    for c in &curves {
        plot = plot.series(c);
    }
    println!("{}", plot.render());
    println!("{table}");
    println!(
        "Under heavy churn NDACp2p squanders scarce high-class supply on low-class\n\
         requesters and nearly collapses, while DACp2p keeps the system alive —\n\
         differentiation as a survival property."
    );
    Ok(())
}
