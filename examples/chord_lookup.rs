//! Candidate lookup over a Chord ring (paper §4.2, footnote 4).
//!
//! The paper's requesting peers may discover candidate suppliers either
//! through a central directory or a distributed lookup service such as
//! Chord. This example builds a 1,024-node Chord ring, registers
//! suppliers for a media item, and measures lookup hop counts to confirm
//! the `O(log n)` routing bound.
//!
//! Run with `cargo run --release --example chord_lookup`.

use p2ps::core::{PeerClass, PeerId};
use p2ps::lookup::chord::{ChordId, ChordRing};
use p2ps::lookup::Rendezvous;
use p2ps::metrics::{Histogram, OnlineStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_nodes = 1_024u64;
    let mut ring = ChordRing::new();
    for i in 0..n_nodes {
        ring.join(PeerId::new(i));
    }
    println!("built a Chord ring of {} nodes", ring.len());

    // Register a supplier population for one popular item.
    for i in 0..40u64 {
        ring.register(
            "icdcs-video",
            PeerId::new(i),
            PeerClass::new(1 + (i % 4) as u8)?,
        );
    }
    println!(
        "registered {} suppliers of 'icdcs-video' at the item key's successor node",
        ring.supplier_count("icdcs-video")
    );

    // A requesting peer samples M = 8 candidates through the ring.
    let mut rng = SmallRng::seed_from_u64(7);
    let candidates = ring.sample("icdcs-video", 8, &mut rng);
    println!("\nM = 8 sampled candidates:");
    for c in &candidates {
        println!("  {} ({})", c.id, c.class);
    }

    // Measure routing cost from many start nodes to many keys.
    let mut stats = OnlineStats::new();
    let mut hops_hist = Histogram::new(0.0, 16.0, 16);
    let starts: Vec<ChordId> = ring.node_ids().step_by(37).collect();
    for probe in 0..256u64 {
        let key = ChordId::of_item(&format!("probe-{probe}"));
        for &start in &starts {
            let result = ring.lookup_from(start, key);
            stats.record(result.hops as f64);
            hops_hist.record(result.hops as f64);
        }
    }
    println!(
        "\nlookup hops over {} routed lookups: mean {:.2}, max {:.0} (log2({n_nodes}) = {:.0})",
        stats.count(),
        stats.mean(),
        stats.max().unwrap_or(0.0),
        (n_nodes as f64).log2()
    );
    println!("hop distribution:");
    for (lo, count) in hops_hist.iter() {
        if count > 0 {
            println!("  {lo:>4.0} hops: {count}");
        }
    }

    // Churn: the item's owner leaves; the supplier list must survive.
    let owner = ring.lookup(ChordId::of_item("icdcs-video")).owner;
    let owner_peer = ring.peer_of(owner).expect("owner exists");
    ring.leave(owner_peer);
    println!(
        "\nafter the owner node left, the item still has {} suppliers (keys migrated to the successor)",
        ring.supplier_count("icdcs-video")
    );
    Ok(())
}
