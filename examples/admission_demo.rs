//! The `DACp2p` differentiation mechanics, step by step (paper §4).
//!
//! Walks one supplier population through a burst of requests, showing how
//! admission probability vectors relax when idle, tighten on reminders,
//! and how the requester-side probe secures exactly the playback rate.
//!
//! Run with `cargo run --example admission_demo`.

use p2ps::core::admission::{
    attempt_admission, BackoffPolicy, Candidate, ProbeOutcome, Protocol, RequestDecision,
    RequesterState, SupplierConfig, SupplierState,
};
use p2ps::core::{Bandwidth, PeerClass};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A direct in-memory candidate (the same adapter shape the simulator and
/// the TCP node use).
struct LocalCandidate {
    state: SupplierState,
    rng: SmallRng,
    now: u64,
}

impl Candidate for LocalCandidate {
    fn class(&self) -> PeerClass {
        self.state.class()
    }
    fn request(&mut self, from: PeerClass) -> RequestDecision {
        self.state.handle_request(self.now, from, &mut self.rng)
    }
    fn leave_reminder(&mut self, from: PeerClass) {
        self.state.leave_reminder(from);
    }
    fn release(&mut self) {}
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SupplierConfig::new(4, 1_200, Protocol::Dac)?;
    let class = |k: u8| PeerClass::new(k).unwrap();

    // A supplier population: one class-1, one class-2, two class-3.
    // Offers: 1 + 1/2 + 1/4 + 1/4.
    let mut candidates: Vec<LocalCandidate> = [1u8, 2, 3, 3]
        .iter()
        .enumerate()
        .map(|(i, &k)| LocalCandidate {
            state: SupplierState::new(class(k), config, 0).unwrap(),
            rng: SmallRng::seed_from_u64(i as u64),
            now: 0,
        })
        .collect();

    println!("supplier vectors at t=0 (class-k suppliers favor classes ≤ k):");
    for c in &mut candidates {
        let k = c.state.class();
        println!("  {}: {}", k, c.state.vector_at(0));
    }

    // A class-2 requesting peer probes all four (M = 4 here).
    let mut requester = RequesterState::new(class(2), BackoffPolicy::new(600, 2));
    requester.record_request(0);
    println!("\nclass-2 requester probes the candidates (descending class order):");
    match attempt_admission(class(2), &mut candidates) {
        ProbeOutcome::Admitted { granted } => {
            let total: Bandwidth = granted
                .iter()
                .map(|&i| candidates[i].class().bandwidth())
                .sum();
            println!(
                "  ADMITTED by slots {granted:?} (aggregate offer {total}, exactly R0: {})",
                total.is_full_rate()
            );
        }
        ProbeOutcome::Rejected { secured, reminders } => {
            println!("  REJECTED with {secured} secured; reminders at {reminders:?}");
            let delay = requester.record_rejection();
            println!("  backoff before retry: {delay} s (T_bkf·E_bkf^(i-1))");
        }
    }

    // Make everyone busy and watch a burst of favored requests tighten
    // the vectors through reminders.
    let t_busy = 100;
    for c in &mut candidates {
        c.now = t_busy;
        if !c.state.is_busy() {
            c.state.begin_session(t_busy);
        }
    }
    println!("\nall suppliers are now busy; a class-1 requester probes and leaves reminders:");
    for c in &mut candidates {
        let d = c.state.handle_request(t_busy + 1, class(1), &mut c.rng);
        println!("  {} answers {:?}", c.state.class(), d);
        if matches!(d, RequestDecision::Busy { favored: true }) {
            c.state.leave_reminder(class(1));
        }
    }
    for c in &mut candidates {
        c.state.end_session(t_busy + 600);
    }
    println!("\nvectors after the sessions end (reminder from class 1 tightens):");
    for c in &mut candidates {
        let k = c.state.class();
        println!("  {}: {}", k, c.state.vector_at(t_busy + 600));
    }

    // Idle relaxation: after enough T_out periods everyone favors all.
    let later = t_busy + 600 + 10 * 1_200;
    println!("\nvectors after ten idle T_out periods (fully relaxed):");
    for c in &mut candidates {
        let k = c.state.class();
        println!("  {}: {}", k, c.state.vector_at(later));
    }
    Ok(())
}
