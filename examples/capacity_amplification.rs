//! The million-peer engine at example scale: a 100,000-peer flash crowd
//! through the compact sharded amplification engine, with the
//! time-to-N-fold capacity crossings the study headlines.
//!
//! One `u64` seed pins the run bit-for-bit — rerun with more threads and
//! the trace hash printed at the bottom of the table stays identical.
//!
//! Run with `cargo run --release --example capacity_amplification`.

use p2ps::sim::{AmpConfig, AmpEngine, ArrivalProcess};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = AmpConfig::builder();
    builder
        .requesting_peers(100_000)
        .seed_suppliers(128)
        .catalog_items(32)
        .process(ArrivalProcess::flash_crowd())
        .arrival_window_secs(3_600)
        .horizon_secs(6 * 3_600)
        .epoch_secs(60)
        .shards(16)
        .threads(4);
    let config = builder.build()?;

    let mut engine = AmpEngine::new(config, 42);
    let report = engine.run();
    println!(
        "simulated {} peers ({} events) in {:.2?}\n",
        report.peers,
        report.events,
        report.elapsed()
    );
    println!("{}", report.table());

    for factor in [2u64, 4, 8] {
        match report.time_to_fold(factor) {
            Some(secs) => println!(
                "capacity reached {factor}x the seeds after {:.2} h",
                f64::from(secs) / 3_600.0
            ),
            None => println!("capacity never reached {factor}x within the horizon"),
        }
    }
    Ok(())
}
