//! Quickstart: the paper's two algorithms in twenty lines each.
//!
//! Run with `cargo run --example quickstart`.

use p2ps::core::admission::{Protocol, RequestDecision, SupplierConfig, SupplierState};
use p2ps::core::assignment::{contiguous, otsp2p, SegmentDuration};
use p2ps::core::PeerClass;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. OTSp2p: optimal media data assignment (paper §3, Figure 1).
    //
    // A streaming session aggregates suppliers whose offers sum to the
    // playback rate R0. Here: R0/2 + R0/4 + R0/8 + R0/8.
    // ------------------------------------------------------------------
    let classes = [2u8, 3, 4, 4]
        .into_iter()
        .map(PeerClass::new)
        .collect::<Result<Vec<_>, _>>()?;

    let naive = contiguous(&classes)?;
    let optimal = otsp2p(&classes)?;
    let dt = SegmentDuration::from_secs(1);

    println!("Figure-1 session (supplier classes 2, 3, 4, 4):");
    println!(
        "  contiguous blocks (Assignment I):  buffering delay {}·δt = {:?}",
        naive.buffering_delay_slots(),
        naive.buffering_delay(dt)
    );
    println!(
        "  OTSp2p            (Assignment II): buffering delay {}·δt = {:?}",
        optimal.buffering_delay_slots(),
        optimal.buffering_delay(dt)
    );
    println!(
        "\nOTSp2p per-supplier segment lists (one period of {}):",
        optimal.period()
    );
    for (slot, class, segments) in optimal.iter() {
        println!("  slot {slot} ({class}): {segments:?}");
    }

    // ------------------------------------------------------------------
    // 2. DACp2p: a supplier's admission vector in action (paper §4.1).
    // ------------------------------------------------------------------
    let config = SupplierConfig::new(4, 20 * 60, Protocol::Dac)?;
    let mut supplier = SupplierState::new(PeerClass::new(2)?, config, 0)?;
    let mut rng = SmallRng::seed_from_u64(7);

    println!(
        "\nA class-2 supplier starts with vector {}",
        supplier.vector_at(0)
    );
    println!(
        "  class-2 request at t=0: {:?}",
        supplier.handle_request(0, PeerClass::new(2)?, &mut rng)
    );

    // Idle for two timeout periods: lower classes get doubled twice.
    println!(
        "  after 2·T_out idle, vector relaxes to {}",
        supplier.vector_at(2 * 20 * 60)
    );

    // A busy stretch with a reminder from a favored class-1 peer.
    let t = 2 * 20 * 60;
    supplier.begin_session(t);
    let d = supplier.handle_request(t + 60, PeerClass::new(1)?, &mut rng);
    assert_eq!(d, RequestDecision::Busy { favored: true });
    supplier.leave_reminder(PeerClass::new(1)?);
    supplier.end_session(t + 3_600);
    println!(
        "  after a busy session with a class-1 reminder, vector tightens to {}",
        supplier.vector_at(t + 3_600)
    );

    Ok(())
}
