//! Peer-selection policy shoot-out: `OTSp2p` vs the BitTorrent-style
//! baselines, in the simulator *and* over real sockets.
//!
//! ```text
//! cargo run --example policy_comparison
//! ```
//!
//! Part 1 runs the deterministic `ScenarioMatrix`: 4 policies × 5 VoD
//! scenarios (steady state, mid-stream seek, early departure,
//! partial-file suppliers, flash crowd) on identical session worlds, and
//! prints the in-time startup ratio table — the §3 optimal assignment
//! must dominate the random baseline in every scenario.
//!
//! Part 2 streams a real file through a loopback swarm once per policy:
//! the same `SelectionPolicy` object drives the live requester's wire
//! plans, and the Theorem-1 delay shows up (only) under `OTSp2p`.

use p2ps::core::assignment::SegmentDuration;
use p2ps::core::PeerClass;
use p2ps::media::MediaInfo;
use p2ps::node::Swarm;
use p2ps::policy::{Otsp2p, RandomBaseline, RarestFirst, SequentialWindow, SharedPolicy};
use p2ps::sim::{CellMetric, ScenarioConfig, ScenarioMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the scenario matrix --------------------------------
    let mut matrix = ScenarioMatrix::standard(42);
    matrix.config(ScenarioConfig {
        sessions: 64,
        total_segments: 64,
        startup_window: 8,
    });
    let report = matrix.run();
    println!("{}", report.table(CellMetric::InTimeStartupRatio));
    println!("{}", report.table(CellMetric::MeanStartupSlots));

    for scenario in report.scenarios() {
        let opt = report.cell("otsp2p", scenario).expect("cell exists");
        let rnd = report.cell("random", scenario).expect("cell exists");
        assert!(
            opt.in_time_startup_ratio() >= rnd.in_time_startup_ratio(),
            "{scenario}: OTSp2p must dominate the random baseline"
        );
    }
    println!("OTSp2p dominates the random baseline on in-time startup in every scenario.\n");

    // ---- Part 2: the same policies over real TCP --------------------
    let policies = [
        SharedPolicy::new(Otsp2p),
        SharedPolicy::new(SequentialWindow::default()),
        SharedPolicy::new(RarestFirst),
        SharedPolicy::new(RandomBaseline),
    ];
    for policy in policies {
        // Two class-2 seeds so every session is a genuine two-supplier
        // assignment; 16 segments of 5 ms.
        let info = MediaInfo::new("policy-demo", 16, SegmentDuration::from_millis(5), 512);
        let mut swarm = Swarm::start(info, 0)?;
        swarm.add_seed(PeerClass::new(2)?)?;
        swarm.add_seed(PeerClass::new(2)?)?;
        swarm.set_policy(policy.clone());
        let outcome = swarm.stream_one(PeerClass::new(3)?, 8)?;
        println!(
            "{:<18} {} suppliers, theoretical delay {:>3} ms, measured {:>3} ms",
            policy.name(),
            outcome.supplier_count,
            outcome.theoretical_delay_ms,
            outcome.measured_delay_ms
        );
        if policy.name() == "otsp2p" {
            assert_eq!(
                outcome.theoretical_delay_ms,
                outcome.supplier_count as u64 * 5,
                "the live OTSp2p session must hit the Theorem-1 floor n·δt"
            );
        }
        swarm.shutdown();
    }
    println!("\nEvery policy streamed a complete, byte-identical file over the same wire format.");
    Ok(())
}
