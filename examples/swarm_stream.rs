//! A real peer-to-peer streaming swarm on loopback TCP.
//!
//! Starts a directory server and two class-1 seed suppliers for a short
//! synthetic "video" (25 ms segments), then lets a wave of requesting
//! peers stream it. Each admitted peer measures its real buffering delay,
//! stores the file and becomes a supplier — watch the swarm's capacity
//! grow exactly as the paper describes.
//!
//! Run with `cargo run --example swarm_stream`.

use p2ps::core::assignment::SegmentDuration;
use p2ps::core::PeerClass;
use p2ps::media::MediaInfo;
use p2ps::node::Swarm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let info = MediaInfo::new(
        "icdcs-demo",
        120,                              // 120 segments …
        SegmentDuration::from_millis(25), // … of 25 ms each = a 3 s show
        2_048,                            // 2 KiB per segment
    );
    println!(
        "media item {:?}: {} segments × {} ms ({} KiB total)\n",
        info.name(),
        info.segment_count(),
        info.segment_duration().as_millis(),
        info.total_bytes() / 1024
    );

    let mut swarm = Swarm::start(info, 2)?;
    println!(
        "started directory + {} class-1 seeds",
        swarm.supplier_count()
    );

    // Two waves of requesting peers with the paper's class mix feel:
    // higher classes first benefit, then the low classes ride the grown
    // capacity.
    let waves: [&[u8]; 3] = [&[2, 2], &[3, 3, 4], &[4, 4, 3, 2]];
    for (i, wave) in waves.iter().enumerate() {
        println!("\n--- wave {} ({} requesters) ---", i + 1, wave.len());
        for &k in wave.iter() {
            let class = PeerClass::new(k)?;
            let outcome = swarm.stream_one(class, 8)?;
            println!(
                "class-{k} peer: {} supplier(s) {:?} — measured delay {} ms (Theorem 1: {} ms), session took {} ms",
                outcome.supplier_count,
                outcome
                    .supplier_classes
                    .iter()
                    .map(|c| c.get())
                    .collect::<Vec<_>>(),
                outcome.measured_delay_ms,
                outcome.theoretical_delay_ms,
                outcome.duration_ms,
            );
        }
        println!(
            "swarm now has {} suppliers of {} nodes",
            swarm.supplier_count(),
            swarm.node_count()
        );
    }

    println!("\nevery requester became a supplier — the system self-amplified.");
    swarm.shutdown();
    Ok(())
}
