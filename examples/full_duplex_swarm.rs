//! Full-duplex swarm: every node requests and supplies simultaneously.
//!
//! Phase 1 bootstraps a small swarm (two seeds, six requesters) the
//! usual way. Phase 2 is the point: **all eight nodes re-fetch the item
//! at the same time while serving each other** — every peer is requester
//! and supplier in the same instant, both halves hosted on one two-
//! thread reactor pool. No node owns a session thread: admission runs on
//! a worker, the paced reception lives on the pool (`begin_stream` /
//! `PendingStream`), and each node's listener keeps granting and
//! streaming to the others throughout.
//!
//! Run with `cargo run --example full_duplex_swarm`.

use std::time::Duration;

use p2ps::core::assignment::SegmentDuration;
use p2ps::core::{PeerClass, PeerId};
use p2ps::media::MediaInfo;
use p2ps::node::{query_candidates, Clock, DirectoryServer, NodeConfig, NodeReactor, PeerNode};

const NODES: u64 = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let info = MediaInfo::new(
        "full-duplex",
        80,                               // 80 segments …
        SegmentDuration::from_millis(10), // … of 10 ms each
        1_024,
    );
    let dir = DirectoryServer::start()?;
    let clock = Clock::new();
    // Two reactor threads carry all 8 nodes' listeners AND all their
    // receiving sessions, sharded by node tag / session id.
    let reactor = NodeReactor::with_threads(2)?;
    println!(
        "directory {} + {}-thread reactor pool",
        dir.addr(),
        reactor.thread_count()
    );

    // Phase 1: bootstrap. Two class-1 seeds, six peers stream to join.
    let mut nodes: Vec<PeerNode> = Vec::new();
    for i in 0..2 {
        let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
        nodes.push(PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor)?);
    }
    for i in 2..NODES {
        let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
        let node = PeerNode::spawn_on(cfg, clock.clone(), &reactor)?;
        let mut outcome = None;
        for _ in 0..10 {
            match node.request_stream(8) {
                Ok(o) => {
                    outcome = Some(o);
                    break;
                }
                Err(p2ps::node::NodeError::Rejected { .. }) => {
                    std::thread::sleep(Duration::from_millis(30));
                }
                Err(e) => return Err(e.into()),
            }
        }
        let outcome = outcome.ok_or("bootstrap admission kept getting rejected")?;
        println!(
            "bootstrap: node {i} joined via {} supplier(s), delay {} ms",
            outcome.supplier_count, outcome.measured_delay_ms
        );
        nodes.push(node);
    }

    // Phase 2: full duplex. Every node re-fetches the item concurrently —
    // while its own listener serves the others' sessions.
    println!("\nfull duplex: all {NODES} nodes request AND supply at once…");
    let mut pendings = Vec::new();
    for node in &nodes {
        let mut candidates = query_candidates(dir.addr(), info.name(), 16)?;
        candidates.retain(|c| c.id != node.id()); // don't stream from yourself
        let mut pending = None;
        // Late nodes may find every peer briefly busy serving the earlier
        // sessions; retry past one session length (~0.8 s).
        for _ in 0..50 {
            match node.begin_stream_from(candidates.clone()) {
                Ok(p) => {
                    pending = Some(p);
                    break;
                }
                Err(p2ps::node::NodeError::Rejected { .. }) => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e.into()),
            }
        }
        pendings.push(pending.ok_or("full-duplex admission kept getting rejected")?);
    }
    // All 8 sessions are now in flight simultaneously; every supplier of
    // those sessions is itself mid-download.
    for (i, pending) in pendings.into_iter().enumerate() {
        let outcome = pending.wait()?;
        println!(
            "node {i}: re-fetched from {} peer(s) in {} ms (measured delay {} ms) while serving",
            outcome.supplier_count, outcome.duration_ms, outcome.measured_delay_ms
        );
    }
    println!("\nevery node held its supplier role throughout — full duplex on one pool");

    for node in nodes {
        node.shutdown();
    }
    reactor.shutdown();
    dir.shutdown();
    Ok(())
}
