//! The paper's headline experiment (Figure 4) at example scale: capacity
//! amplification under `DACp2p` vs the non-differentiated `NDACp2p`.
//!
//! Runs two 5,000-peer simulations (48 h of simulated time, seconds of
//! wall time) and plots both capacity curves side by side.
//!
//! Run with `cargo run --release --example capacity_growth`.

use p2ps::core::admission::Protocol;
use p2ps::metrics::{AsciiPlot, TimeSeries};
use p2ps::sim::{ArrivalPattern, SimConfig, Simulation};

fn renamed(series: &TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    out.extend(series.iter());
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut reports = Vec::new();
    for protocol in [Protocol::Dac, Protocol::Ndac] {
        let config = SimConfig::builder()
            .seed_suppliers(10)
            .requesting_peers(5_000)
            .arrival_window_hours(24)
            .duration_hours(48)
            .pattern(ArrivalPattern::Ramp)
            .protocol(protocol)
            .build()?;
        let started = std::time::Instant::now();
        let report = Simulation::new(config, 42).run();
        println!(
            "{protocol}: simulated 48h of 5,010 peers in {:?} — final capacity {:.0}",
            started.elapsed(),
            report.final_capacity()
        );
        reports.push((protocol, report));
    }

    let dac = renamed(reports[0].1.capacity(), "DAC_p2p");
    let ndac = renamed(reports[1].1.capacity(), "NDAC_p2p");
    let plot = AsciiPlot::new(
        "Total system capacity over time (arrival pattern 2)",
        72,
        20,
    )
    .series(&dac)
    .series(&ndac);
    println!("\n{}", plot.render());

    for (protocol, report) in &reports {
        println!("--- {protocol} ---");
        for k in 1..=4u8 {
            println!(
                "  class {k}: admission {:.1}%, avg rejections {:.2}, avg buffering delay {:.2}·δt",
                report
                    .admission_rate()
                    .class(k)
                    .last()
                    .map(|(_, v)| v)
                    .unwrap_or(0.0),
                report.avg_rejections(k).unwrap_or(0.0),
                report.avg_delay_slots(k).unwrap_or(0.0),
            );
        }
    }
    println!(
        "\nThe differentiated protocol amplifies capacity faster *and* serves every class better —\nthe paper's central result."
    );
    Ok(())
}
