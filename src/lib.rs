//! Workspace root helper crate.
//!
//! The real public API lives in the [`p2ps`] facade crate; this package
//! exists so that the repository-level `examples/` and `tests/` directories
//! can exercise the whole workspace. Use `p2ps` (or the individual
//! `p2ps-*` crates) from downstream code.

pub use p2ps;
