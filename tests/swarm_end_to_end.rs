//! End-to-end tests of the runnable TCP node: streaming correctness,
//! capacity growth, concurrency and failure injection.

use std::time::Duration;

use p2ps::core::assignment::SegmentDuration;
use p2ps::core::{PeerClass, PeerId};
use p2ps::media::{MediaFile, MediaInfo};
use p2ps::node::{
    register_supplier, Clock, DirectoryServer, NodeConfig, NodeError, PeerNode, Swarm,
};

fn tiny_info(name: &str, segments: u64) -> MediaInfo {
    MediaInfo::new(name, segments, SegmentDuration::from_millis(10), 768)
}

#[test]
fn streamed_bytes_are_verbatim() {
    // The requester must end up with exactly the origin's bytes.
    let info = tiny_info("verbatim", 24);
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let seed = PeerNode::spawn_seed(
        NodeConfig::new(PeerId::new(0), PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
    )
    .unwrap();

    let requester = PeerNode::spawn(
        NodeConfig::new(
            PeerId::new(1),
            PeerClass::new(3).unwrap(),
            info.clone(),
            dir.addr(),
        ),
        clock,
    )
    .unwrap();
    let outcome = requester
        .request_stream_with_retry(8, 10, Duration::from_millis(30))
        .unwrap();
    assert_eq!(outcome.supplier_count, 1);
    assert!(requester.is_supplier(), "requester must now own the file");

    // Ask the *requester* (now a supplier) to serve a third node, proving
    // the stored copy is complete and correct.
    let reference = MediaFile::synthesize(info);
    assert!(reference.iter().all(|s| reference.verify(&s)));

    requester.shutdown();
    seed.shutdown();
    dir.shutdown();
}

#[test]
fn second_generation_suppliers_serve_correct_content() {
    let info = tiny_info("second-gen", 16);
    let mut swarm = Swarm::start(info, 1).unwrap();
    // First requester streams from the seed...
    swarm.stream_one(PeerClass::new(2).unwrap(), 8).unwrap();
    // ...and the wave after that can be served by either; run several so
    // a second-generation supplier almost surely serves someone.
    for k in [3u8, 3, 4, 4] {
        let outcome = swarm.stream_one(PeerClass::new(k).unwrap(), 8).unwrap();
        assert!(outcome.supplier_count >= 1);
        assert_eq!(
            outcome.theoretical_delay_ms,
            outcome.supplier_count as u64 * 10
        );
    }
    assert_eq!(swarm.supplier_count(), 6);
    swarm.shutdown();
}

#[test]
fn multi_supplier_sessions_assemble_the_rate() {
    // With only class-2 seeds (R0/2 each), every session needs exactly
    // two suppliers, and Theorem 1 gives a 2·δt delay.
    let info = tiny_info("multi", 32);
    let mut swarm = Swarm::start(info, 0).unwrap();
    swarm.add_seed(PeerClass::new(2).unwrap()).unwrap();
    swarm.add_seed(PeerClass::new(2).unwrap()).unwrap();
    let outcome = swarm.stream_one(PeerClass::new(4).unwrap(), 8).unwrap();
    assert_eq!(outcome.supplier_count, 2);
    assert_eq!(outcome.theoretical_delay_ms, 20);
    assert!(
        outcome.measured_delay_ms <= 70,
        "measured delay {} ms too far from the 20 ms optimum",
        outcome.measured_delay_ms
    );
    swarm.shutdown();
}

#[test]
fn rejection_when_no_suppliers_exist() {
    let info = tiny_info("nobody", 8);
    let dir = DirectoryServer::start().unwrap();
    let node = PeerNode::spawn(
        NodeConfig::new(PeerId::new(9), PeerClass::new(2).unwrap(), info, dir.addr()),
        Clock::new(),
    )
    .unwrap();
    match node.request_stream(8) {
        Err(NodeError::Rejected { .. }) => {}
        other => panic!("expected rejection, got {other:?}"),
    }
    node.shutdown();
    dir.shutdown();
}

#[test]
fn down_candidates_are_tolerated() {
    // A stale directory record pointing at a dead port must not break
    // admission: the live seed still carries the session.
    let info = tiny_info("stale", 16);
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    register_supplier(dir.addr(), "stale", PeerId::new(99), PeerClass::HIGHEST, 1).unwrap();
    let seed = PeerNode::spawn_seed(
        NodeConfig::new(PeerId::new(0), PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
    )
    .unwrap();
    let requester = PeerNode::spawn(
        NodeConfig::new(PeerId::new(1), PeerClass::new(4).unwrap(), info, dir.addr()),
        clock,
    )
    .unwrap();
    let outcome = requester
        .request_stream_with_retry(8, 10, Duration::from_millis(30))
        .unwrap();
    assert_eq!(outcome.supplier_count, 1);
    requester.shutdown();
    seed.shutdown();
    dir.shutdown();
}

#[test]
fn supplier_crash_mid_session_is_reported() {
    // Kill the only supplier while it is streaming: the requester must
    // surface an error instead of hanging or storing a truncated file.
    let info = MediaInfo::new(
        "crash",
        400, // 400 × 10 ms = a 4-second stream, plenty of time to kill it
        SegmentDuration::from_millis(10),
        512,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let seed = PeerNode::spawn_seed(
        NodeConfig::new(PeerId::new(0), PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
    )
    .unwrap();
    // A class-1 requester is favored by every reachable vector state, so
    // admission (and therefore the stream this test kills) is guaranteed
    // to start regardless of the supplier's RNG stream.
    let requester = PeerNode::spawn(
        NodeConfig::new(PeerId::new(1), PeerClass::HIGHEST, info, dir.addr()),
        clock,
    )
    .unwrap();

    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        // Shutdown aborts the in-flight streaming session — the crash.
        seed.shutdown();
    });
    let result = requester.request_stream(8);
    killer.join().unwrap();
    match result {
        // The sole supplier was lost with no survivor to replan onto:
        // the structured SuppliersLost is the expected verdict since the
        // reactor-hosted requester; Io/IncompleteStream cover shutdown
        // races in other phases.
        Err(NodeError::SuppliersLost { .. })
        | Err(NodeError::Io(_))
        | Err(NodeError::IncompleteStream { .. }) => {
            assert!(
                !requester.is_supplier(),
                "a truncated copy must not be re-served"
            );
        }
        Ok(outcome) => {
            // Shutdown raced the final segments; acceptable only if the
            // file really completed.
            assert_eq!(outcome.supplier_count, 1);
            assert!(requester.is_supplier());
        }
        Err(other) => panic!("unexpected error {other}"),
    }
    requester.shutdown();
    dir.shutdown();
}

#[test]
fn reminders_tighten_vectors_over_real_tcp() {
    // A busy class-4 seed that denies a favored class-1 requester and
    // receives its reminder must tighten its admission vector at session
    // end (paper §4.1(c)) — verified across real sockets.
    let info = MediaInfo::new(
        "reminder",
        200, // 2-second stream so the seed is reliably busy
        SegmentDuration::from_millis(10),
        512,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let seed = PeerNode::spawn_seed(
        NodeConfig::new(
            PeerId::new(0),
            PeerClass::new(4).unwrap(),
            info.clone(),
            dir.addr(),
        ),
        clock.clone(),
    )
    .unwrap();
    // A class-4 seed initially favors everyone.
    assert!(seed.admission_vector().is_fully_relaxed());

    // First requester occupies the seed.
    let streamer = PeerNode::spawn(
        NodeConfig::new(
            PeerId::new(1),
            PeerClass::new(4).unwrap(),
            info.clone(),
            dir.addr(),
        ),
        clock.clone(),
    )
    .unwrap();
    // The seed alone cannot cover R0 for anyone (class 4 = R0/8): build a
    // full supplier set of eight class-4 seeds so sessions can happen.
    let mut extra = Vec::new();
    for i in 2..9u64 {
        extra.push(
            PeerNode::spawn_seed(
                NodeConfig::new(
                    PeerId::new(i),
                    PeerClass::new(4).unwrap(),
                    info.clone(),
                    dir.addr(),
                ),
                clock.clone(),
            )
            .unwrap(),
        );
    }
    let handle = {
        std::thread::spawn(move || {
            let r = streamer.request_stream_with_retry(8, 20, Duration::from_millis(50));
            (streamer, r)
        })
    };
    // Wait until the seed is actually busy streaming.
    for _ in 0..100 {
        if seed.is_busy() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if seed.is_busy() {
        // A class-1 requester probes, gets a busy+favored denial and
        // leaves a reminder (it cannot be admitted: everyone is busy).
        let late = PeerNode::spawn(
            NodeConfig::new(
                PeerId::new(99),
                PeerClass::HIGHEST,
                info.clone(),
                dir.addr(),
            ),
            clock.clone(),
        )
        .unwrap();
        let _ = late.request_stream(8); // rejected, reminders left
        late.shutdown();
    }
    let (streamer, result) = handle.join().unwrap();
    result.unwrap();
    // After the session ends the seed either tightened to class 1 (it got
    // the reminder) or relaxed (the probe raced the session end). If the
    // reminder landed, the vector is exactly the class-1 initial vector.
    let v = seed.admission_vector();
    let tightened = !v.is_fully_relaxed();
    if tightened {
        assert_eq!(
            v,
            p2ps::core::admission::AdmissionVector::initial(PeerClass::HIGHEST, 4).unwrap()
        );
    }
    streamer.shutdown();
    for n in extra {
        n.shutdown();
    }
    seed.shutdown();
    dir.shutdown();
}

#[test]
fn concurrent_requesters_never_double_book_a_supplier() {
    // Two requesters race for one seed. The grant reservation must give
    // the session to exactly one; the other gets rejected (busy) and
    // succeeds on retry once the 640 ms session finishes.
    let info = tiny_info("race", 64);
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let seed = PeerNode::spawn_seed(
        NodeConfig::new(PeerId::new(0), PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
    )
    .unwrap();

    let mk = |id: u64, class: u8| {
        PeerNode::spawn(
            NodeConfig::new(
                PeerId::new(id),
                PeerClass::new(class).unwrap(),
                info.clone(),
                dir.addr(),
            ),
            clock.clone(),
        )
        .unwrap()
    };
    let a = mk(1, 2);
    let b = mk(2, 2);
    let ta = std::thread::spawn(move || {
        let r = a.request_stream_with_retry(8, 30, Duration::from_millis(100));
        (a, r)
    });
    let tb = std::thread::spawn(move || {
        let r = b.request_stream_with_retry(8, 30, Duration::from_millis(100));
        (b, r)
    });
    let (a, ra) = ta.join().unwrap();
    let (b, rb) = tb.join().unwrap();
    assert!(
        ra.is_ok(),
        "requester A failed: {:?}",
        ra.err().map(|e| e.to_string())
    );
    assert!(
        rb.is_ok(),
        "requester B failed: {:?}",
        rb.err().map(|e| e.to_string())
    );
    assert!(a.is_supplier() && b.is_supplier());
    a.shutdown();
    b.shutdown();
    seed.shutdown();
    dir.shutdown();
}
