//! Smoke tests of the `p2ps` facade: the documented entry points work as
//! a downstream user would call them, and **every** module the facade
//! re-exports is exercised, so a dropped re-export fails this suite (and
//! CI) instead of surfacing in downstream code.

use std::io::Cursor;

use bytes::{Bytes, BytesMut};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use p2ps::core::admission::{
    AdmissionVector, BackoffPolicy, Protocol, RequesterState, SupplierConfig, SupplierState,
};
use p2ps::core::assignment::{
    contiguous, edf, otsp2p, round_robin, schedule::TransmissionSchedule,
    verify::exhaustive_min_delay, SegmentDuration,
};
use p2ps::core::{Bandwidth, CapacityTracker, PeerClass, PeerId};
use p2ps::lookup::chord::{ChordId, ChordRing, LookupResult};
use p2ps::lookup::{CandidateInfo, Directory, Rendezvous, SharedDirectory};
use p2ps::media::{
    BufferEvent, MediaFile, MediaInfo, PlaybackBuffer, PlaybackReport, Segment, SegmentStore,
};
use p2ps::metrics::{
    AsciiPlot, CsvWriter, Histogram, OnlineStats, Reservoir, StepSeries, Table, TimeSeries,
    WindowedAverage,
};
use p2ps::node::{Args, Clock, DirectoryServer};
use p2ps::proto::{
    decode_frame, encode_frame, read_message, write_message, CandidateRecord, DecodeError, Message,
    SessionPlan, MAX_FRAME_LEN,
};
use p2ps::sim::{ArrivalPattern, PiecewiseRate, SimConfig, Simulation};

fn class(k: u8) -> PeerClass {
    PeerClass::new(k).unwrap()
}

#[test]
fn the_readme_quickstart_works() {
    let classes: Vec<PeerClass> = [2u8, 3, 4, 4].into_iter().map(class).collect();
    let assignment = otsp2p(&classes).unwrap();
    assert_eq!(assignment.buffering_delay_slots(), 4);
    assert_eq!(edf(&classes).unwrap().buffering_delay_slots(), 4);
}

#[test]
fn core_assignment_module_is_complete() {
    // All four strategies plus the schedule and brute-force verifier.
    let classes: Vec<PeerClass> = [2u8, 2].into_iter().map(class).collect();
    for a in [
        otsp2p(&classes).unwrap(),
        edf(&classes).unwrap(),
        contiguous(&classes).unwrap(),
        round_robin(&classes).unwrap(),
    ] {
        assert!(a.buffering_delay_slots() >= 2);
        let schedule = TransmissionSchedule::new(&a, u64::from(a.period()));
        assert_eq!(schedule.iter().count(), a.period() as usize);
    }
    assert_eq!(exhaustive_min_delay(&classes).unwrap(), 2);
    assert_eq!(SegmentDuration::from_millis(10).as_millis(), 10);
}

#[test]
fn core_admission_module_is_complete() {
    let v = AdmissionVector::initial(class(2), 4).unwrap();
    assert!(v.favors(class(1)));
    let mut cap = CapacityTracker::new();
    cap.add_supplier(PeerClass::HIGHEST);
    assert_eq!(cap.sessions(), 1.0);
    assert!(BackoffPolicy::new(100, 2).delay_after(2) >= 200);
    let cfg = SupplierConfig::new(4, 60_000, Protocol::Dac).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut supplier = SupplierState::new(class(1), cfg, 0).unwrap();
    assert!(!supplier.is_busy());
    let _ = supplier.handle_request(0, class(1), &mut rng);
    let _requester_type_is_exported: Option<RequesterState> = None;
    assert_eq!(Bandwidth::FULL_RATE.fraction_of_rate(), 1.0);
    assert_eq!(PeerId::new(7).get(), 7);
    let err: p2ps::core::Error = PeerClass::new(0).unwrap_err();
    assert!(!err.to_string().is_empty());
}

#[test]
fn media_module_is_complete() {
    let info = MediaInfo::new("facade", 4, SegmentDuration::from_millis(100), 64);
    let file = MediaFile::synthesize(info.clone());
    assert!(file.verify(&file.segment(0)));

    let mut store = SegmentStore::new(2);
    store.insert(Segment::new(0, Bytes::from_static(b"a")));
    store.insert(Segment::new(1, Bytes::from_static(b"b")));
    assert!(store.is_complete());

    let mut buf = PlaybackBuffer::new(2, SegmentDuration::from_millis(100));
    buf.record_arrival(0, 5);
    buf.record_arrival(1, 350);
    let report: PlaybackReport = buf.report(100);
    assert!(report.max_lateness_ms() > 0);
    let _event_type_is_exported: Option<BufferEvent> = None;
}

#[test]
fn lookup_module_is_complete() {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut dir = Directory::new();
    dir.register("facade", PeerId::new(1), PeerClass::HIGHEST);
    assert_eq!(dir.supplier_count("facade"), 1);
    assert_eq!(dir.sample("facade", 8, &mut rng).len(), 1);
    assert_eq!(
        dir.suppliers("facade"),
        vec![CandidateInfo::new(PeerId::new(1), PeerClass::HIGHEST)]
    );

    let shared = SharedDirectory::new();
    assert_eq!(shared.stripe_count(), 16);
    shared.with_item_mut("facade", |d| d.register("facade", PeerId::new(2), class(2)));
    assert_eq!(
        shared.with_item("facade", |d| d.supplier_count("facade")),
        1
    );
    assert_eq!(shared.items(), vec!["facade".to_owned()]);

    let mut ring = ChordRing::new();
    for i in 0..8 {
        ring.join(PeerId::new(100 + i));
    }
    ring.register("facade", PeerId::new(1), class(3));
    assert_eq!(ring.supplier_count("facade"), 1);
    let found: LookupResult = ring.lookup(ChordId::of_item("facade"));
    assert!(found.hops as usize <= ring.len());
    assert_eq!(ring.sample("facade", 4, &mut rng).len(), 1);
}

#[test]
fn proto_module_is_complete() {
    let msg = Message::StartSession {
        session: 9,
        plan: SessionPlan {
            item: "facade".into(),
            segments: vec![0, 1],
            period: 2,
            total_segments: 8,
            dt_ms: 100,
        },
    };
    let mut buf = BytesMut::new();
    encode_frame(&msg, &mut buf);
    assert!(buf.len() <= MAX_FRAME_LEN);
    assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), msg);

    let rec = CandidateRecord {
        id: PeerId::new(1),
        class: class(2),
        port: 9000,
    };
    let mut wire = Vec::new();
    write_message(&mut wire, &Message::Candidates { list: vec![rec] }).unwrap();
    let got = read_message(Cursor::new(wire)).unwrap();
    assert!(matches!(got, Message::Candidates { ref list } if list.len() == 1));

    let mut garbage = BytesMut::new();
    garbage.extend_from_slice(&[1, 0, 0, 0, 0x7f]);
    assert_eq!(
        decode_frame(&mut garbage),
        Err(DecodeError::UnknownTag(0x7f))
    );
}

#[test]
fn metrics_module_is_complete() {
    let stats: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
    assert_eq!(stats.mean(), 2.0);

    let mut series = TimeSeries::new("x");
    series.push(0.0, 1.0);
    series.push(1.0, 3.0);
    assert_eq!(series.len(), 2);

    let mut steps = StepSeries::new("cap", 0.0);
    steps.add(1.0, 2.5);
    assert_eq!(steps.current(), 2.5);

    let mut hist = Histogram::new(0.0, 10.0, 5);
    hist.record(4.0);
    assert_eq!(hist.count(), 1);

    let mut reservoir = Reservoir::new(8, 42);
    reservoir.record(1.0);
    assert_eq!(reservoir.observed(), 1);

    let mut window = WindowedAverage::new("w", 1.0);
    window.record(0.5, 2.0);
    assert_eq!(window.window_mean(0), Some(2.0));

    let mut table = Table::new(["a"]);
    table.row(["1"]);
    assert_eq!(table.row_count(), 1);

    let mut csv = CsvWriter::new(Vec::new());
    csv.write_row(["t", "v"]).unwrap();
    assert!(!csv.into_inner().is_empty());

    let plot = AsciiPlot::new("facade", 20, 5).series(&series).render();
    assert!(plot.contains("facade"));
}

#[test]
fn node_module_is_complete() {
    let clock = Clock::new();
    let t0 = clock.now_ms();
    assert!(clock.now_ms() >= t0);

    let args = Args::parse(["--m", "4", "video"], &["m"]).unwrap();
    assert_eq!(args.get_or("m", 0usize).unwrap(), 4);
    assert_eq!(args.positional(0), Some("video"));

    let dir = DirectoryServer::start().unwrap();
    p2ps::node::register_supplier(dir.addr(), "facade", PeerId::new(5), class(2), 9_999).unwrap();
    // Registration lands on its own reactor connection; retry the query
    // briefly instead of racing it.
    let mut candidates = Vec::new();
    for _ in 0..50 {
        candidates = p2ps::node::query_candidates(dir.addr(), "facade", 8).unwrap();
        if !candidates.is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(candidates.len(), 1);
    assert_eq!(candidates[0].id, PeerId::new(5));
    dir.shutdown();

    // The striped registry behind the directory is directly usable too.
    let reg = p2ps::node::ShardedRegistry::new(4);
    reg.register(
        "facade",
        p2ps::proto::CandidateRecord {
            id: PeerId::new(1),
            class: class(2),
            port: 1,
        },
    );
    let mut rng = SmallRng::seed_from_u64(5);
    assert_eq!(reg.sample("facade", 2, &mut rng).len(), 1);

    // The heavier PeerNode / Swarm / NodeError / StreamOutcome surface is
    // exercised end-to-end in tests/swarm_end_to_end.rs, and the shared
    // serving reactor in crates/node/tests/concurrent_sessions.rs.
    let _error_type_is_exported: Option<p2ps::node::NodeError> = None;
    let _outcome_type_is_exported: Option<p2ps::node::StreamOutcome> = None;
    let _node_type_is_exported: Option<p2ps::node::PeerNode> = None;
    let _swarm_type_is_exported: Option<p2ps::node::Swarm> = None;
    let _config_type_is_exported: Option<p2ps::node::NodeConfig> = None;
    let _reactor_type_is_exported: Option<p2ps::node::NodeReactor> = None;
}

#[test]
fn net_module_is_complete() {
    // The timer wheel is plain data structure surface.
    let mut wheel: p2ps::net::TimerWheel<u32> = p2ps::net::TimerWheel::new(2, 16);
    wheel.insert(4, 7);
    let mut fired = Vec::new();
    wheel.advance(10, &mut fired);
    assert_eq!(fired, vec![7]);

    // The confined-unsafe epoll wrapper works through the facade.
    use std::os::fd::AsRawFd;
    let mut ep = p2ps::net::sys::Epoll::new().unwrap();
    let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
    ep.add(b.as_raw_fd(), 9, p2ps::net::sys::EPOLLIN).unwrap();
    use std::io::Write;
    (&a).write_all(b"x").unwrap();
    let mut events = Vec::new();
    ep.wait(&mut events, 1_000).unwrap();
    assert_eq!(events[0].token, 9);
    assert!(events[0].is_readable());

    // Reactor + handle types are reachable; the full loop is exercised in
    // crates/net/tests/reactor.rs.
    let _cfg = p2ps::net::ReactorConfig::default();
    let _conn_id_type: Option<p2ps::net::ConnId> = None;
}

#[test]
fn sim_module_is_complete() {
    let mut rng = SmallRng::seed_from_u64(11);
    let custom = PiecewiseRate::new(vec![(0.0, 1.0, 1.0)]);
    let times = ArrivalPattern::Custom(custom).generate(10, 3_600, &mut rng);
    assert_eq!(times.len(), 10);
    let _builder_type_is_exported: Option<p2ps::sim::SimConfigBuilder> = None;
    let _series_type_is_exported: Option<&p2ps::sim::ClassSeries> = None;
    let _error_type_is_exported: Option<p2ps::sim::ConfigError> = None;
}

#[test]
fn a_small_simulation_runs_through_the_facade() {
    let config = SimConfig::builder()
        .requesting_peers(120)
        .seed_suppliers(4)
        .arrival_window_hours(4)
        .duration_hours(8)
        .session_minutes(30)
        .pattern(ArrivalPattern::InitialBurst)
        .protocol(Protocol::Dac)
        .build()
        .unwrap();
    let report: p2ps::sim::SimReport = Simulation::new(config, 1).run();
    assert!(report.final_capacity() > 2.0);
    assert!(report.final_overall_admission_rate() > 0.0);
}

#[test]
fn the_prelude_covers_the_common_names() {
    use p2ps::prelude::*;

    let classes = vec![PeerClass::new(2).unwrap(), PeerClass::new(2).unwrap()];
    let assignment: Assignment = otsp2p(&classes).unwrap();
    assert_eq!(assignment.buffering_delay_slots(), 2);
    assert_eq!(edf(&classes).unwrap().buffering_delay_slots(), 2);
    assert!(AdmissionVector::all_ones(4).unwrap().is_fully_relaxed());
    let _info = MediaInfo::new("p", 1, SegmentDuration::from_millis(10), 16);
    let _pattern = ArrivalPattern::Constant;
}
