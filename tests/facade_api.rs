//! Smoke tests of the `p2ps` facade: the documented entry points work as
//! a downstream user would call them.

use p2ps::core::admission::{AdmissionVector, Protocol};
use p2ps::core::assignment::{edf, otsp2p};
use p2ps::core::{CapacityTracker, PeerClass};
use p2ps::lookup::{Directory, Rendezvous};
use p2ps::media::{MediaFile, MediaInfo};
use p2ps::metrics::{OnlineStats, Table, TimeSeries};
use p2ps::sim::{ArrivalPattern, SimConfig, Simulation};

#[test]
fn the_readme_quickstart_works() {
    let classes: Vec<PeerClass> = [2u8, 3, 4, 4]
        .into_iter()
        .map(|k| PeerClass::new(k).unwrap())
        .collect();
    let assignment = otsp2p(&classes).unwrap();
    assert_eq!(assignment.buffering_delay_slots(), 4);
    assert_eq!(edf(&classes).unwrap().buffering_delay_slots(), 4);
}

#[test]
fn every_subsystem_is_reachable_through_the_facade() {
    // core
    let v = AdmissionVector::initial(PeerClass::new(2).unwrap(), 4).unwrap();
    assert!(v.favors(PeerClass::new(1).unwrap()));
    let mut cap = CapacityTracker::new();
    cap.add_supplier(PeerClass::HIGHEST);
    assert_eq!(cap.sessions(), 1.0);

    // media
    let info = MediaInfo::new(
        "facade",
        4,
        p2ps::core::assignment::SegmentDuration::from_millis(100),
        64,
    );
    let file = MediaFile::synthesize(info);
    assert!(file.verify(&file.segment(0)));

    // lookup
    let mut dir = Directory::new();
    dir.register("facade", p2ps::core::PeerId::new(1), PeerClass::HIGHEST);
    assert_eq!(dir.supplier_count("facade"), 1);

    // metrics
    let stats: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
    assert_eq!(stats.mean(), 2.0);
    let mut series = TimeSeries::new("x");
    series.push(0.0, 1.0);
    assert_eq!(series.len(), 1);
    let mut table = Table::new(["a"]);
    table.row(["1"]);
    assert_eq!(table.row_count(), 1);
}

#[test]
fn a_small_simulation_runs_through_the_facade() {
    let config = SimConfig::builder()
        .requesting_peers(120)
        .seed_suppliers(4)
        .arrival_window_hours(4)
        .duration_hours(8)
        .session_minutes(30)
        .pattern(ArrivalPattern::InitialBurst)
        .protocol(Protocol::Dac)
        .build()
        .unwrap();
    let report = Simulation::new(config, 1).run();
    assert!(report.final_capacity() > 2.0);
    assert!(report.final_overall_admission_rate() > 0.0);
}
