//! The two lookup services are interchangeable: a model-based test runs
//! identical register/unregister/sample sequences against the centralized
//! directory and the Chord ring and checks they expose identical supplier
//! *sets* (sampling order may differ — it is random — but membership,
//! counts and candidate metadata must agree).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use p2ps::core::{PeerClass, PeerId};
use p2ps::lookup::chord::ChordRing;
use p2ps::lookup::{Directory, Rendezvous};

fn class(k: u8) -> PeerClass {
    PeerClass::new(k).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Register { item: u8, peer: u64, class: u8 },
    Unregister { item: u8, peer: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u64..40, 1u8..=4).prop_map(|(item, peer, class)| Op::Register {
            item,
            peer,
            class
        }),
        (0u8..3, 0u64..40).prop_map(|(item, peer)| Op::Unregister { item, peer }),
    ]
}

fn item_name(i: u8) -> String {
    format!("item-{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn directory_and_chord_expose_identical_membership(
        ops in prop::collection::vec(op_strategy(), 0..60),
        ring_nodes in 1u64..24,
    ) {
        let mut dir = Directory::new();
        let mut ring = ChordRing::new();
        for i in 0..ring_nodes {
            ring.join(PeerId::new(100_000 + i));
        }

        for op in &ops {
            match *op {
                Op::Register { item, peer, class: k } => {
                    dir.register(&item_name(item), PeerId::new(peer), class(k));
                    ring.register(&item_name(item), PeerId::new(peer), class(k));
                }
                Op::Unregister { item, peer } => {
                    dir.unregister(&item_name(item), PeerId::new(peer));
                    ring.unregister(&item_name(item), PeerId::new(peer));
                }
            }
        }

        for item in 0..3u8 {
            let name = item_name(item);
            prop_assert_eq!(
                dir.supplier_count(&name),
                ring.supplier_count(&name),
                "count mismatch for {}",
                &name
            );
            // Exhaustive sample (m = population) must return the same set
            // with the same classes.
            let n = dir.supplier_count(&name);
            let mut rng_a = SmallRng::seed_from_u64(1);
            let mut rng_b = SmallRng::seed_from_u64(2);
            let mut a = dir.sample(&name, n, &mut rng_a);
            let mut b = ring.sample(&name, n, &mut rng_b);
            a.sort_by_key(|c| c.id);
            b.sort_by_key(|c| c.id);
            prop_assert_eq!(a, b, "membership mismatch for {}", &name);
        }
    }
}
