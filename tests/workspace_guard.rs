//! Guards the workspace manifest invariant that tier-1 coverage depends
//! on: `default-members` must mirror `members` (plus the root package
//! `"."`).
//!
//! The root `Cargo.toml` hosts a `[package]`, so bare `cargo build` /
//! `cargo test` — the tier-1 verify commands and every CI gate — operate
//! on `default-members`. A crate added only to `members` would silently
//! drop out of all of them: its tests would never run while CI stayed
//! green. That exact footgun nearly shipped with `crates/net`; this test
//! turns it into a loud failure.

use std::collections::BTreeSet;

/// Extracts the string entries of a top-level TOML array field, e.g.
/// `members = [ "a", "b" ]`, tolerating comments and multi-line layout.
fn toml_array(manifest: &str, key: &str) -> Vec<String> {
    let start = manifest
        .lines()
        .scan(0usize, |offset, line| {
            let this = *offset;
            *offset += line.len() + 1;
            Some((this, line))
        })
        .find(|(_, line)| {
            let trimmed = line.trim_start();
            trimmed.starts_with(key) && trimmed[key.len()..].trim_start().starts_with('=')
        })
        .map(|(offset, _)| offset)
        .unwrap_or_else(|| panic!("`{key}` not found in Cargo.toml"));
    let tail = &manifest[start..];
    let open = tail.find('[').expect("array opens");
    let close = tail[open..].find(']').expect("array closes") + open;
    tail[open + 1..close]
        .split(',')
        .map(str::trim)
        // Strip per-entry trailing comments, then the quotes.
        .map(|entry| entry.split('#').next().unwrap().trim())
        .filter(|entry| !entry.is_empty())
        .map(|entry| {
            entry
                .strip_prefix('"')
                .and_then(|e| e.strip_suffix('"'))
                .unwrap_or_else(|| panic!("unquoted entry {entry:?} in `{key}`"))
                .to_owned()
        })
        .collect()
}

#[test]
fn default_members_mirrors_members() {
    let manifest = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml"))
        .expect("workspace manifest readable");
    let members: BTreeSet<String> = toml_array(&manifest, "members").into_iter().collect();
    let mut default_members: BTreeSet<String> = toml_array(&manifest, "default-members")
        .into_iter()
        .collect();

    assert!(
        default_members.remove("."),
        "default-members must include \".\" so the root package's own \
         tests (like this one) stay in tier-1"
    );
    let missing: Vec<&String> = members.difference(&default_members).collect();
    let extra: Vec<&String> = default_members.difference(&members).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "Cargo.toml default-members must mirror members: every crate in \
         one list and not the other escapes `cargo build` / `cargo test` \
         and every CI gate.\n  in members but not default-members: \
         {missing:?}\n  in default-members but not members: {extra:?}"
    );
}

#[test]
fn every_crates_dir_is_a_member() {
    // Belt and braces: a crate directory that exists on disk but is in
    // neither list is invisible to the workspace entirely.
    let manifest = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml"))
        .expect("workspace manifest readable");
    let members: BTreeSet<String> = toml_array(&manifest, "members").into_iter().collect();
    let crates_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates");
    for entry in std::fs::read_dir(crates_dir).expect("crates/ listable") {
        let entry = entry.unwrap();
        if !entry.file_type().unwrap().is_dir() {
            continue;
        }
        let rel = format!("crates/{}", entry.file_name().to_string_lossy());
        if !std::path::Path::new(&entry.path())
            .join("Cargo.toml")
            .exists()
        {
            continue;
        }
        assert!(
            members.contains(&rel),
            "{rel} has a Cargo.toml but is not in workspace members"
        );
    }
}
