//! System-level invariants of the evaluation simulator, including
//! property-based checks over random small configurations.

use proptest::prelude::*;

use p2ps::core::admission::Protocol;
use p2ps::sim::{ArrivalPattern, SimConfig, Simulation};

fn mid_config(protocol: Protocol, pattern: ArrivalPattern) -> SimConfig {
    SimConfig::builder()
        .seed_suppliers(10)
        .requesting_peers(2_000)
        .arrival_window_hours(24)
        .duration_hours(48)
        .pattern(pattern)
        .protocol(protocol)
        .build()
        .expect("valid config")
}

#[test]
fn dac_amplifies_capacity_faster_than_ndac() {
    // The paper's central claim (Fig. 4) at reduced scale: DAC capacity
    // dominates NDAC through the growth phase.
    let dac = Simulation::new(mid_config(Protocol::Dac, ArrivalPattern::Ramp), 42).run();
    let ndac = Simulation::new(mid_config(Protocol::Ndac, ArrivalPattern::Ramp), 42).run();
    for hour in [12.0, 18.0, 24.0, 30.0] {
        let d = dac.capacity().value_at(hour).unwrap();
        let n = ndac.capacity().value_at(hour).unwrap();
        assert!(
            d >= n,
            "at {hour}h DAC capacity {d:.0} fell behind NDAC {n:.0}"
        );
    }
    assert!(
        dac.capacity().value_at(18.0).unwrap() > 1.2 * ndac.capacity().value_at(18.0).unwrap(),
        "DAC should lead by a clear margin mid-growth"
    );
}

#[test]
fn dac_differentiates_rejections_by_class_ndac_does_not() {
    // Table 1's structure: under DAC rejections grow with class number;
    // under NDAC all classes look alike.
    let dac = Simulation::new(mid_config(Protocol::Dac, ArrivalPattern::Ramp), 42).run();
    let ndac = Simulation::new(mid_config(Protocol::Ndac, ArrivalPattern::Ramp), 42).run();

    let d: Vec<f64> = (1..=4).map(|k| dac.avg_rejections(k).unwrap()).collect();
    assert!(
        d[0] < d[3],
        "DAC class 1 ({:.2}) must beat class 4 ({:.2})",
        d[0],
        d[3]
    );

    let n: Vec<f64> = (1..=4).map(|k| ndac.avg_rejections(k).unwrap()).collect();
    let spread = (n.iter().cloned().fold(f64::MIN, f64::max)
        - n.iter().cloned().fold(f64::MAX, f64::min))
        / n.iter().sum::<f64>()
        * 4.0;
    assert!(
        spread < 0.25,
        "NDAC per-class rejections should be nearly flat, spread {spread:.2}: {n:?}"
    );

    // The paper's "benefits all requesting peers" claim: at full paper
    // scale every class improves (verified by the fig4/table1 harness);
    // at this reduced scale the high classes improve strictly and the
    // lowest class stays within a small margin of NDAC.
    for k in 0..3 {
        assert!(
            d[k] < n[k],
            "class {} rejections: DAC {:.2} vs NDAC {:.2}",
            k + 1,
            d[k],
            n[k]
        );
    }
    assert!(
        d[3] <= n[3] * 1.15,
        "class 4 rejections under DAC ({:.2}) blew past NDAC ({:.2})",
        d[3],
        n[3]
    );
    let dac_total: f64 = d.iter().sum();
    let ndac_total: f64 = n.iter().sum();
    assert!(
        dac_total < ndac_total,
        "aggregate rejections: DAC {dac_total:.2} vs NDAC {ndac_total:.2}"
    );
}

#[test]
fn capacity_accounting_is_exact() {
    // Final capacity == seeds + contributions of exactly the peers whose
    // sessions *completed* within the horizon.
    let cfg = mid_config(Protocol::Dac, ArrivalPattern::Constant);
    let report = Simulation::new(cfg.clone(), 7).run();
    let initial = cfg.seed_suppliers() as f64
        * cfg
            .offer_of(p2ps::core::PeerClass::HIGHEST)
            .fraction_of_rate();
    assert!(report.final_capacity() >= initial);
    assert!(report.final_capacity() <= cfg.expected_max_capacity() * 1.05);
    assert!(report.sessions_completed() <= report.admitted().iter().sum::<u64>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small configurations: the run terminates and basic
    /// conservation laws hold.
    #[test]
    fn conservation_on_random_configs(
        seeds in 1u32..8,
        requesters in 1u32..150,
        window in 1u64..6,
        extra in 0u64..6,
        session_min in 5u64..90,
        m in 1usize..12,
        e_bkf in 1u32..4,
        pattern_no in 0usize..4,
        protocol_dac in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let pattern = [
            ArrivalPattern::Constant,
            ArrivalPattern::Ramp,
            ArrivalPattern::InitialBurst,
            ArrivalPattern::PeriodicBursts,
        ][pattern_no].clone();
        let cfg = SimConfig::builder()
            .seed_suppliers(seeds)
            .requesting_peers(requesters)
            .arrival_window_hours(window)
            .duration_hours(window + extra)
            .session_minutes(session_min)
            .m(m)
            .e_bkf(e_bkf)
            .pattern(pattern)
            .protocol(if protocol_dac { Protocol::Dac } else { Protocol::Ndac })
            .build()
            .unwrap();
        let report = Simulation::new(cfg.clone(), seed).run();

        let requested: u64 = report.first_requests().iter().sum();
        let admitted: u64 = report.admitted().iter().sum();
        prop_assert_eq!(requested, requesters as u64);
        prop_assert!(admitted <= requested);
        prop_assert!(report.sessions_completed() <= admitted);
        prop_assert!(report.attempts() >= requested);
        // capacity is monotone and bounded (the hard bound uses the best
        // possible class for every requester; expected_max_capacity is an
        // expectation over the mix, not a bound)
        let caps: Vec<f64> = report.capacity().iter().map(|(_, v)| v).collect();
        prop_assert!(caps.windows(2).all(|w| w[1] >= w[0]));
        let best_offer = cfg
            .offer_of(p2ps::core::PeerClass::HIGHEST)
            .fraction_of_rate();
        let hard_max = (seeds as f64 + requesters as f64) * best_offer;
        prop_assert!(report.final_capacity() <= hard_max + 1e-9);
        // per-class delay, when present, spans 1..=16 suppliers
        for k in 1..=4u8 {
            if let Some(d) = report.avg_delay_slots(k) {
                prop_assert!((1.0..=16.0).contains(&d));
            }
        }
    }

    /// Replays are bit-identical for any seed.
    #[test]
    fn determinism_on_random_seeds(seed in 0u64..500) {
        let cfg = SimConfig::builder()
            .seed_suppliers(3)
            .requesting_peers(60)
            .arrival_window_hours(3)
            .duration_hours(6)
            .session_minutes(20)
            .pattern(ArrivalPattern::PeriodicBursts)
            .build()
            .unwrap();
        let a = Simulation::new(cfg.clone(), seed).run();
        let b = Simulation::new(cfg, seed).run();
        prop_assert_eq!(a.attempts(), b.attempts());
        prop_assert_eq!(a.admitted(), b.admitted());
        prop_assert_eq!(a.final_capacity(), b.final_capacity());
        prop_assert_eq!(
            a.capacity().iter().collect::<Vec<_>>(),
            b.capacity().iter().collect::<Vec<_>>()
        );
    }
}
