//! Property-based wire-codec verification: every representable message
//! survives an encode/decode round trip, and adversarial byte streams
//! never panic the decoder.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

use p2ps::core::{PeerClass, PeerId};
use p2ps::proto::{decode_frame, encode_frame, Message, SessionPlan};

fn class_strategy() -> impl Strategy<Value = PeerClass> {
    (1u8..=16).prop_map(|k| PeerClass::new(k).unwrap())
}

fn message_strategy() -> impl Strategy<Value = Message> {
    let item = "[a-z0-9 /_.-]{0,40}";
    prop_oneof![
        (item, any::<u64>(), class_strategy(), any::<u16>()).prop_map(
            |(item, peer, class, port)| Message::Register {
                item,
                peer: PeerId::new(peer),
                class,
                port,
            }
        ),
        (item, any::<u16>()).prop_map(|(item, m)| Message::QueryCandidates { item, m }),
        prop::collection::vec((any::<u64>(), class_strategy(), any::<u16>()), 0..20).prop_map(
            |list| Message::Candidates {
                list: list
                    .into_iter()
                    .map(|(id, class, port)| p2ps::proto::CandidateRecord {
                        id: PeerId::new(id),
                        class,
                        port,
                    })
                    .collect(),
            }
        ),
        (any::<u64>(), class_strategy())
            .prop_map(|(session, class)| Message::StreamRequest { session, class }),
        (any::<u64>(), class_strategy())
            .prop_map(|(session, class)| Message::Grant { session, class }),
        (any::<u64>(), any::<bool>(), any::<bool>()).prop_map(|(session, busy, favored)| {
            Message::Deny {
                session,
                busy,
                favored,
            }
        }),
        any::<u64>().prop_map(|session| Message::Release { session }),
        (any::<u64>(), class_strategy())
            .prop_map(|(session, class)| Message::Reminder { session, class }),
        (
            any::<u64>(),
            item,
            prop::collection::vec(any::<u32>(), 0..64),
            1u32..1024,
            any::<u64>(),
            1u32..100_000,
        )
            .prop_map(|(session, item, segments, period, total, dt)| {
                Message::StartSession {
                    session,
                    plan: SessionPlan {
                        item,
                        segments,
                        period,
                        total_segments: total,
                        dt_ms: dt,
                    },
                }
            }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..4096)
        )
            .prop_map(|(session, index, payload)| Message::SegmentData {
                session,
                index,
                payload: Bytes::from(payload),
            }),
        any::<u64>().prop_map(|session| Message::EndSession { session }),
    ]
}

proptest! {
    #[test]
    fn round_trip(msg in message_strategy()) {
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn pipelined_messages_round_trip(msgs in prop::collection::vec(message_strategy(), 1..8)) {
        let mut buf = BytesMut::new();
        for m in &msgs {
            encode_frame(m, &mut buf);
        }
        for expected in &msgs {
            let got = decode_frame(&mut buf).unwrap().unwrap();
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(decode_frame(&mut buf).unwrap().is_none());
    }

    /// Truncating a valid frame anywhere yields "need more bytes", never a
    /// panic or a bogus message.
    #[test]
    fn truncation_is_detected(msg in message_strategy(), cut_ratio in 0.0f64..1.0) {
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        let cut = ((buf.len() as f64) * cut_ratio) as usize;
        if cut < buf.len() {
            let mut partial = BytesMut::from(&buf[..cut]);
            prop_assert_eq!(decode_frame(&mut partial).unwrap(), None);
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = decode_frame(&mut buf); // any Result is fine; no panic
    }

    /// Corrupting one byte of a valid frame either still decodes (the
    /// byte was payload-like) or errors out — but never panics and never
    /// loops forever.
    #[test]
    fn single_byte_corruption_is_safe(msg in message_strategy(), pos_ratio in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf);
        // Skip the 4-byte length prefix so the frame is still "complete".
        if buf.len() > 5 {
            let pos = 4 + ((buf.len() - 5) as f64 * pos_ratio) as usize;
            buf[pos] ^= 1 << bit;
            let _ = decode_frame(&mut buf);
        }
    }
}
