//! Property tests for the Arc-backed zero-copy `Bytes`.
//!
//! Two families of guarantees:
//!
//! 1. **View/copy equivalence** — every O(1) view operation (`clone`,
//!    `slice`, `split_to`, `split_off`, `advance`) yields bytes
//!    bit-identical to what the old deep-copying implementation produced
//!    (modelled here with plain `Vec<u8>` arithmetic).
//! 2. **No-copy** — views alias the original allocation, asserted through
//!    pointer equality.

use bytes::{Buf, Bytes};
use proptest::prelude::*;
use rand::Rng;

use p2ps::core::assignment::SegmentDuration;
use p2ps::media::{MediaFile, MediaInfo};

proptest! {
    /// `slice` is bit-identical to copying the same range out of a Vec.
    #[test]
    fn slice_matches_vec_model(
        data in prop::collection::vec(any::<u8>(), 0..512),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        let (mut lo, mut hi) = (a.index(data.len() + 1), b.index(data.len() + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let bytes = Bytes::from(data.clone());
        let view = bytes.slice(lo..hi);
        prop_assert_eq!(&view[..], &data[lo..hi]);
        // And the view is a view: it starts where the model range starts.
        if lo < hi {
            prop_assert_eq!(view.as_ptr(), bytes[lo..].as_ptr());
        }
    }

    /// `split_to` + remainder partition the bytes exactly like draining a
    /// Vec's front, and both halves alias the one allocation.
    #[test]
    fn split_to_matches_vec_model(
        data in prop::collection::vec(any::<u8>(), 1..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let n = cut.index(data.len() + 1);
        let mut bytes = Bytes::from(data.clone());
        let base = bytes.as_ptr();
        let head = bytes.split_to(n);
        prop_assert_eq!(&head[..], &data[..n]);
        prop_assert_eq!(&bytes[..], &data[n..]);
        if n > 0 {
            prop_assert_eq!(head.as_ptr(), base);
        }
        if n < data.len() {
            prop_assert_eq!(bytes.as_ptr(), base.wrapping_add(n));
        }
    }

    /// `split_off` mirrors `split_to`.
    #[test]
    fn split_off_matches_vec_model(
        data in prop::collection::vec(any::<u8>(), 1..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let n = cut.index(data.len() + 1);
        let mut bytes = Bytes::from(data.clone());
        let tail = bytes.split_off(n);
        prop_assert_eq!(&bytes[..], &data[..n]);
        prop_assert_eq!(&tail[..], &data[n..]);
    }

    /// A random walk of view operations stays bit-identical to the same
    /// walk over an offset/length model into the original Vec.
    #[test]
    fn random_view_walk_matches_model(
        data in prop::collection::vec(any::<u8>(), 1..768),
        seed in any::<u64>(),
    ) {
        let mut bytes = Bytes::from(data.clone());
        // Model: the view is always data[lo..hi].
        let (mut lo, mut hi) = (0usize, data.len());
        let mut rng: rand::rngs::SmallRng = rand::SeedableRng::seed_from_u64(seed);
        for _ in 0..24 {
            let len = hi - lo;
            match rng.gen_range(0u8..4) {
                0 => {
                    let n = rng.gen_range(0..=len);
                    let head = bytes.split_to(n);
                    prop_assert_eq!(&head[..], &data[lo..lo + n]);
                    lo += n;
                }
                1 => {
                    let n = rng.gen_range(0..=len);
                    let tail = bytes.split_off(n);
                    prop_assert_eq!(&tail[..], &data[lo + n..hi]);
                    hi = lo + n;
                }
                2 => {
                    let a = rng.gen_range(0..=len);
                    let b = rng.gen_range(a..=len);
                    bytes = bytes.slice(a..b);
                    hi = lo + b;
                    lo += a;
                }
                _ => {
                    let n = rng.gen_range(0..=len);
                    bytes.advance(n);
                    lo += n;
                }
            }
            prop_assert_eq!(&bytes[..], &data[lo..hi]);
            prop_assert_eq!(bytes.len(), hi - lo);
        }
    }

    /// Every segment view of a synthesized file is bit-identical to the
    /// payload the old per-segment-Vec implementation produced, and all
    /// segments alias the file's single allocation.
    #[test]
    fn media_segments_are_identical_views(
        name in "[a-z]{1,10}",
        segments in 1u64..24,
        seg_bytes in 1u32..1_024,
    ) {
        let info = MediaInfo::new(&name, segments, SegmentDuration::from_millis(10), seg_bytes);
        let file = MediaFile::synthesize(info.clone());
        let base = file.segment(0).payload().as_ptr();
        for i in 0..segments {
            let s = file.segment(i);
            // Bit-identical to an independently synthesized copy.
            let fresh = MediaFile::synthesize(info.clone());
            prop_assert_eq!(s.payload(), fresh.segment(i).payload());
            // And a view: offset i·seg_bytes into the one allocation.
            prop_assert_eq!(
                s.payload().as_ptr(),
                base.wrapping_add((i * seg_bytes as u64) as usize)
            );
            // Cloning the view shares the pointer (no copy).
            prop_assert_eq!(s.payload().clone().as_ptr(), s.payload().as_ptr());
        }
    }
}

/// The headline acceptance check: cloning a payload — the per-request
/// operation of a serving supplier — never copies, whatever the size.
#[test]
fn clone_is_a_shared_pointer_at_any_size() {
    for size in [1usize, 4 * 1024, 1024 * 1024, 16 * 1024 * 1024] {
        let payload = Bytes::from(vec![0x5au8; size]);
        let clone = payload.clone();
        assert_eq!(
            payload.as_ptr(),
            clone.as_ptr(),
            "clone of {size} B payload must alias the allocation"
        );
        assert_eq!(&payload[..], &clone[..]);
    }
}
