//! Every relative markdown link in the repo's documentation must point
//! at a file that exists — READMEs and the docs/ handbook rot silently
//! otherwise (CI runs this as its link check).

use std::path::{Path, PathBuf};

/// The markdown files under the link check: the repo root, `docs/`, and
/// every crate README.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut push_dir = |dir: &Path| {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                out.push(path);
            }
        }
    };
    push_dir(root);
    push_dir(&root.join("docs"));
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for entry in crates.flatten() {
            push_dir(&entry.path());
        }
    }
    out
}

/// Extracts inline markdown link targets: the `(target)` of `](target)`.
fn link_targets(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("](") {
        rest = &rest[pos + 2..];
        if let Some(end) = rest.find(')') {
            out.push(&rest[..end]);
            rest = &rest[end + 1..];
        }
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = doc_files(root);
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "the link check found no README — wrong root?"
    );
    let mut broken = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        for target in link_targets(&text) {
            // External links, intra-page anchors and mail addresses are
            // out of scope; so are rustdoc-style `[x](y)` shorthand hits
            // inside code spans, which never contain a path separator or
            // .md suffix.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.starts_with("mailto:")
            {
                continue;
            }
            if !(target.contains('/') || target.ends_with(".md")) {
                continue;
            }
            let path = target.split('#').next().unwrap();
            let resolved = file.parent().unwrap().join(path);
            if !resolved.exists() {
                broken.push(format!("{}: {target}", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
}
