//! The introspection tree: scoped nodes, atomic metric primitives, and
//! live-handle snapshots.
//!
//! A [`Monitor`] is a cheap clonable handle to one node in the tree.
//! Components create child scopes with [`Monitor::child`] and register
//! metrics with [`Monitor::counter`] / [`Monitor::gauge`] /
//! [`Monitor::state`]; parents hold only weak references to children,
//! so dropping every handle to a scope (a session ending, a reactor
//! shutting down) removes its whole subtree from subsequent snapshots
//! without any explicit deregistration call.
//!
//! Locking discipline: each node guards its metric and child lists with
//! a mutex taken only during registration and snapshotting. Metric
//! *updates* never touch those locks — every [`Counter`], [`Gauge`] and
//! [`StateCell`] operation is a single relaxed atomic instruction.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use p2ps_metrics::prometheus::{MetricKind, PrometheusText};
use parking_lot::Mutex;

use crate::recorder::{EventRing, Recorder, DEFAULT_EVENT_CAPACITY};

/// A handle to one scope (node) in the introspection tree.
///
/// Clones share the same underlying node. The node stays visible in
/// snapshots for as long as at least one `Monitor` handle (or an `Arc`
/// inside a snapshot) keeps it alive; its parent only holds a weak
/// reference.
#[derive(Clone)]
pub struct Monitor {
    inner: Arc<Node>,
}

pub(crate) struct Node {
    /// Label key for this scope ("reactor", "session", …); empty for a
    /// root created by [`Monitor::root`].
    kind: String,
    /// Label value ("0", "42", …); empty for a root.
    id: String,
    /// Strong upward ref: holding a leaf handle keeps the whole path to
    /// the root reachable from snapshots. Downward refs are weak, so
    /// there is no cycle.
    _parent: Option<Arc<Node>>,
    metrics: Mutex<Vec<MetricEntry>>,
    children: Mutex<Vec<Weak<Node>>>,
}

struct MetricEntry {
    name: String,
    help: String,
    handle: MetricHandle,
}

impl Monitor {
    /// Creates a new, empty tree root.
    pub fn root() -> Monitor {
        Monitor {
            inner: Arc::new(Node {
                kind: String::new(),
                id: String::new(),
                _parent: None,
                metrics: Mutex::new(Vec::new()),
                children: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Returns the child scope labeled `{kind}={id}`, creating it if no
    /// live handle to it exists. Two callers asking for the same
    /// `(kind, id)` under the same parent share one node, so e.g. the
    /// reactor's own shard scope and a session registering under that
    /// shard merge in the rendered tree.
    ///
    /// Takes the parent's registration lock; call at attach/session
    /// boundaries, not on per-segment paths.
    pub fn child(&self, kind: &str, id: impl fmt::Display) -> Monitor {
        let id = id.to_string();
        let mut children = self.inner.children.lock();
        children.retain(|w| w.strong_count() > 0);
        for weak in children.iter() {
            if let Some(node) = weak.upgrade() {
                if node.kind == kind && node.id == id {
                    return Monitor { inner: node };
                }
            }
        }
        let node = Arc::new(Node {
            kind: kind.to_string(),
            id,
            _parent: Some(self.inner.clone()),
            metrics: Mutex::new(Vec::new()),
            children: Mutex::new(Vec::new()),
        });
        children.push(Arc::downgrade(&node));
        Monitor { inner: node }
    }

    /// Registers (or retrieves) a monotone counter named `name` on this
    /// scope. Registering the same name twice returns a handle to the
    /// same underlying atomic.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered on this scope as a
    /// different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, || MetricHandle::Counter(Counter::new())) {
            MetricHandle::Counter(c) => c,
            other => panic!(
                "metric `{name}` already registered as a {}",
                other.kind_name()
            ),
        }
    }

    /// Registers (or retrieves) a signed gauge named `name` on this
    /// scope.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered on this scope as a
    /// different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, || MetricHandle::Gauge(Gauge::new())) {
            MetricHandle::Gauge(g) => g,
            other => panic!(
                "metric `{name}` already registered as a {}",
                other.kind_name()
            ),
        }
    }

    /// Registers (or retrieves) a state cell named `name` on this
    /// scope, holding one of the given state `names` (initially the
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty, or if `name` is already registered
    /// on this scope as a different metric kind.
    pub fn state(&self, name: &str, help: &str, names: &'static [&'static str]) -> StateCell {
        assert!(!names.is_empty(), "state cell needs at least one state");
        match self.register(name, help, || MetricHandle::State(StateCell::new(names))) {
            MetricHandle::State(s) => s,
            other => panic!(
                "metric `{name}` already registered as a {}",
                other.kind_name()
            ),
        }
    }

    /// Registers (or retrieves) a flight-recorder event ring named
    /// `name` on this scope, with the default capacity
    /// ([`DEFAULT_EVENT_CAPACITY`] events; the ring overwrites its
    /// oldest events once full). Renders into the Prometheus exposition
    /// as a counter of events ever recorded; the retained timeline is
    /// read through [`Recorder::events`] (e.g. via a snapshot row's
    /// [`MetricHandle::as_recorder`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered on this scope as a
    /// different metric kind.
    pub fn events(&self, name: &str, help: &str) -> Recorder {
        match self.register(name, help, || {
            MetricHandle::Events(Recorder::with_ring(Arc::new(EventRing::new(
                DEFAULT_EVENT_CAPACITY,
            ))))
        }) {
            MetricHandle::Events(r) => r,
            other => panic!(
                "metric `{name}` already registered as a {}",
                other.kind_name()
            ),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        let mut metrics = self.inner.metrics.lock();
        if let Some(entry) = metrics.iter().find(|e| e.name == name) {
            return entry.handle.attached(&self.inner);
        }
        // The copy stored in the node stays scope-detached — a handle
        // retaining its own node would be a reference cycle and the
        // scope would never leave the tree.
        let handle = make();
        metrics.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle.attached(&self.inner)
    }

    /// Walks the live tree rooted here into a [`Snapshot`]. Rows carry
    /// *live* handles: reading a row later re-reads the atomic, and a
    /// watchdog can flip a [`StateCell`] through the row it found.
    pub fn snapshot(&self) -> Snapshot {
        let mut nodes = Vec::new();
        let mut path = Vec::new();
        collect(&self.inner, &mut path, &mut nodes);
        Snapshot {
            nodes,
            taken_ms: crate::monotonic_ms(),
        }
    }
}

fn collect(node: &Arc<Node>, path: &mut Vec<(String, String)>, out: &mut Vec<SnapshotNode>) {
    let scoped = !node.kind.is_empty();
    if scoped {
        path.push((node.kind.clone(), node.id.clone()));
    }
    let metrics: Vec<SnapshotMetric> = node
        .metrics
        .lock()
        .iter()
        .map(|e| SnapshotMetric {
            name: e.name.clone(),
            help: e.help.clone(),
            handle: e.handle.attached(node),
        })
        .collect();
    out.push(SnapshotNode {
        labels: path.clone(),
        metrics,
    });
    let live: Vec<Arc<Node>> = node
        .children
        .lock()
        .iter()
        .filter_map(Weak::upgrade)
        .collect();
    for child in &live {
        collect(child, path, out);
    }
    if scoped {
        path.pop();
    }
}

impl Default for Monitor {
    /// A detached root: metrics registered on it work normally but are
    /// only visible to snapshots taken from this root. Lets config
    /// structs embed a `Monitor` without requiring every caller to wire
    /// one up.
    fn default() -> Self {
        Monitor::root()
    }
}

impl fmt::Debug for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Monitor")
            .field("kind", &self.inner.kind)
            .field("id", &self.inner.id)
            .finish_non_exhaustive()
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("kind", &self.kind)
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// Monotone `u64` counter; all operations are relaxed atomics.
///
/// A handed-out counter keeps its scope alive: a component may retain
/// only the handle and its row stays visible in snapshots.
#[derive(Clone, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
    _scope: Option<Arc<Node>>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
            _scope: None,
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Signed level gauge; all operations are relaxed atomics.
///
/// A handed-out gauge keeps its scope alive: a component may retain
/// only the handle and its row stays visible in snapshots.
#[derive(Clone, Debug)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    _scope: Option<Arc<Node>>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: Arc::new(AtomicI64::new(0)),
            _scope: None,
        }
    }

    /// Sets the level to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds the (possibly negative) delta `d`.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Holds exactly one of a fixed set of named states (e.g. a session's
/// `probing` → `streaming` → … lifecycle); all operations are relaxed
/// atomics.
#[derive(Clone, Debug)]
pub struct StateCell {
    cell: Arc<AtomicUsize>,
    names: &'static [&'static str],
    _scope: Option<Arc<Node>>,
}

impl StateCell {
    fn new(names: &'static [&'static str]) -> Self {
        StateCell {
            cell: Arc::new(AtomicUsize::new(0)),
            names,
            _scope: None,
        }
    }

    /// Switches to the state called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of this cell's states.
    pub fn set(&self, name: &str) {
        let idx = self
            .names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown state `{name}` (states: {:?})", self.names));
        self.cell.store(idx, Ordering::Relaxed);
    }

    /// Index of the current state within [`StateCell::names`].
    pub fn index(&self) -> usize {
        self.cell.load(Ordering::Relaxed).min(self.names.len() - 1)
    }

    /// Name of the current state.
    pub fn name(&self) -> &'static str {
        self.names[self.index()]
    }

    /// `true` if the current state is called `name`.
    pub fn is(&self, name: &str) -> bool {
        self.name() == name
    }

    /// The full set of states this cell can hold.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }
}

/// A live handle to one registered metric, as stored in snapshots.
#[derive(Clone, Debug)]
pub enum MetricHandle {
    /// A monotone counter.
    Counter(Counter),
    /// A signed gauge.
    Gauge(Gauge),
    /// A named-state cell.
    State(StateCell),
    /// A flight-recorder event ring.
    Events(Recorder),
}

impl MetricHandle {
    /// Clone with the scope node attached, so the returned handle keeps
    /// the scope alive in snapshots.
    fn attached(&self, node: &Arc<Node>) -> MetricHandle {
        match self {
            MetricHandle::Counter(c) => MetricHandle::Counter(Counter {
                value: c.value.clone(),
                _scope: Some(node.clone()),
            }),
            MetricHandle::Gauge(g) => MetricHandle::Gauge(Gauge {
                value: g.value.clone(),
                _scope: Some(node.clone()),
            }),
            MetricHandle::State(s) => MetricHandle::State(StateCell {
                cell: s.cell.clone(),
                names: s.names,
                _scope: Some(node.clone()),
            }),
            MetricHandle::Events(r) => MetricHandle::Events(r.attached_to(node)),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::State(_) => "state",
            MetricHandle::Events(_) => "event ring",
        }
    }

    /// The counter behind this handle, if it is one.
    pub fn as_counter(&self) -> Option<&Counter> {
        match self {
            MetricHandle::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// The gauge behind this handle, if it is one.
    pub fn as_gauge(&self) -> Option<&Gauge> {
        match self {
            MetricHandle::Gauge(g) => Some(g),
            _ => None,
        }
    }

    /// The state cell behind this handle, if it is one.
    pub fn as_state(&self) -> Option<&StateCell> {
        match self {
            MetricHandle::State(s) => Some(s),
            _ => None,
        }
    }

    /// The flight recorder behind this handle, if it is one.
    pub fn as_recorder(&self) -> Option<&Recorder> {
        match self {
            MetricHandle::Events(r) => Some(r),
            _ => None,
        }
    }

    /// Reads the current value through the handle. An event ring reads
    /// as a counter of events ever recorded.
    pub fn value(&self) -> SampleValue {
        match self {
            MetricHandle::Counter(c) => SampleValue::Counter(c.get()),
            MetricHandle::Gauge(g) => SampleValue::Gauge(g.get()),
            MetricHandle::State(s) => SampleValue::State {
                index: s.index(),
                names: s.names,
            },
            MetricHandle::Events(r) => SampleValue::Counter(r.count()),
        }
    }
}

/// One value read from a metric at a point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A state-cell reading: the active index into `names`.
    State {
        /// Index of the active state.
        index: usize,
        /// The cell's full state set.
        names: &'static [&'static str],
    },
}

impl SampleValue {
    /// The value as a signed integer (state cells yield their index).
    pub fn as_i64(&self) -> i64 {
        match self {
            SampleValue::Counter(c) => *c as i64,
            SampleValue::Gauge(g) => *g,
            SampleValue::State { index, .. } => *index as i64,
        }
    }

    /// The active state name, for state-cell readings.
    pub fn state_name(&self) -> Option<&'static str> {
        match self {
            SampleValue::State { index, names } => names.get(*index).copied(),
            _ => None,
        }
    }
}

/// A flattened walk of the tree at one instant. Node rows hold live
/// metric handles, so values read through a snapshot are always fresh;
/// only the *structure* (which scopes and metrics exist) is frozen.
#[derive(Clone, Debug)]
pub struct Snapshot {
    nodes: Vec<SnapshotNode>,
    taken_ms: u64,
}

impl Snapshot {
    /// All scope rows, depth-first from the snapshot root.
    pub fn nodes(&self) -> &[SnapshotNode] {
        &self.nodes
    }

    /// [`crate::monotonic_ms`] at the moment the walk ran — exported in
    /// the exposition as `{prefix}_snapshot_now_ms` so remote consumers
    /// can compute lags against progress timestamps.
    pub fn taken_ms(&self) -> u64 {
        self.taken_ms
    }

    /// Finds the metric called `metric` on the scope whose label path
    /// is exactly `labels` (in order).
    pub fn find(&self, labels: &[(&str, &str)], metric: &str) -> Option<&SnapshotMetric> {
        self.nodes
            .iter()
            .find(|n| n.matches(labels))
            .and_then(|n| n.metric(metric))
    }

    /// Renders the whole snapshot in the Prometheus text exposition
    /// format. A metric `name` on a scope of kind `k` becomes the
    /// family `{prefix}_{k}_{name}` with the scope's full label path;
    /// root-level metrics become `{prefix}_{name}`. State cells emit
    /// one 0/1 sample per possible state with a `state="…"` label.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = PrometheusText::new();
        out.sample(
            &format!("{prefix}_snapshot_now_ms"),
            MetricKind::Gauge,
            "monotonic milliseconds at snapshot time",
            &[],
            self.taken_ms as f64,
        );
        for node in &self.nodes {
            let kind = node.labels.last().map(|(k, _)| k.as_str());
            let labels: Vec<(&str, &str)> = node
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            for m in &node.metrics {
                let family = match kind {
                    Some(k) => format!("{prefix}_{k}_{}", m.name),
                    None => format!("{prefix}_{}", m.name),
                };
                match m.value() {
                    SampleValue::Counter(v) => {
                        out.sample(&family, MetricKind::Counter, &m.help, &labels, v as f64);
                    }
                    SampleValue::Gauge(v) => {
                        out.sample(&family, MetricKind::Gauge, &m.help, &labels, v as f64);
                    }
                    SampleValue::State { index, names } => {
                        for (i, state) in names.iter().enumerate() {
                            let mut with_state = labels.clone();
                            with_state.push(("state", state));
                            out.sample(
                                &family,
                                MetricKind::Gauge,
                                &m.help,
                                &with_state,
                                (i == index) as u8 as f64,
                            );
                        }
                    }
                }
            }
        }
        out.render()
    }
}

/// One scope row in a [`Snapshot`]: its accumulated label path and the
/// metrics registered on it.
#[derive(Clone, Debug)]
pub struct SnapshotNode {
    labels: Vec<(String, String)>,
    metrics: Vec<SnapshotMetric>,
}

impl SnapshotNode {
    /// The `(kind, id)` label pairs from the snapshot root down to this
    /// scope. Empty for the root row itself.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The value of label `key` on this scope's path, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The innermost label key — this scope's own kind.
    pub fn kind(&self) -> Option<&str> {
        self.labels.last().map(|(k, _)| k.as_str())
    }

    /// Metrics registered on this scope (not on its children).
    pub fn metrics(&self) -> &[SnapshotMetric] {
        &self.metrics
    }

    /// The metric called `name` on this scope, if registered.
    pub fn metric(&self, name: &str) -> Option<&SnapshotMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    fn matches(&self, labels: &[(&str, &str)]) -> bool {
        self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((k, v), (wk, wv))| k == wk && v == wv)
    }
}

/// One metric row in a [`Snapshot`] — name, help text, and a live
/// handle to the underlying atomic.
#[derive(Clone, Debug)]
pub struct SnapshotMetric {
    name: String,
    help: String,
    handle: MetricHandle,
}

impl SnapshotMetric {
    /// Metric name as registered (without family prefix or scope kind).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Help text as registered.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// The live handle; lets observers (the stall watchdog) write state
    /// cells through a snapshot row.
    pub fn handle(&self) -> &MetricHandle {
        &self.handle
    }

    /// Reads the current value through the live handle.
    pub fn value(&self) -> SampleValue {
        self.handle.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_scopes_are_shared_by_kind_and_id() {
        let root = Monitor::root();
        let a = root.child("reactor", 3);
        let b = root.child("reactor", "3");
        a.counter("accepts", "accepted connections").add(2);
        let c = b.counter("accepts", "accepted connections");
        assert_eq!(c.get(), 2, "same scope, same atomic");
        let snap = root.snapshot();
        // Root row + exactly one reactor row.
        assert_eq!(snap.nodes().len(), 2);
    }

    #[test]
    fn dropping_all_handles_removes_the_subtree() {
        let root = Monitor::root();
        {
            let session = root.child("reactor", 0).child("session", 42);
            session.gauge("owed", "segments owed").set(7);
            let snap = root.snapshot();
            assert!(snap
                .find(&[("reactor", "0"), ("session", "42")], "owed")
                .is_some());
        }
        // The session handle — and the intermediate reactor handle — are
        // gone; the next snapshot no longer shows them.
        let snap = root.snapshot();
        assert!(snap
            .find(&[("reactor", "0"), ("session", "42")], "owed")
            .is_none());
        assert_eq!(snap.nodes().len(), 1, "only the root row remains");
    }

    #[test]
    fn snapshot_rows_read_fresh_values() {
        let root = Monitor::root();
        let bytes = root.child("reactor", 0).counter("bytes_read", "bytes");
        bytes.add(10);
        let snap = root.snapshot();
        let row = snap.find(&[("reactor", "0")], "bytes_read").unwrap();
        assert_eq!(row.value(), SampleValue::Counter(10));
        bytes.add(5);
        assert_eq!(
            row.value(),
            SampleValue::Counter(15),
            "handles are live, not frozen"
        );
    }

    #[test]
    fn state_cell_reads_and_writes_through_snapshot() {
        const STATES: &[&str] = &["probing", "streaming", "stalled"];
        let root = Monitor::root();
        let scope = root.child("session", 1);
        let state = scope.state("state", "lifecycle", STATES);
        assert_eq!(state.name(), "probing");
        state.set("streaming");
        let snap = root.snapshot();
        let row = snap.find(&[("session", "1")], "state").unwrap();
        assert_eq!(row.value().state_name(), Some("streaming"));
        row.handle().as_state().unwrap().set("stalled");
        assert!(state.is("stalled"), "observer write visible to owner");
    }

    #[test]
    fn prometheus_rendering_expands_states_and_paths() {
        const STATES: &[&str] = &["probing", "streaming"];
        let root = Monitor::root();
        root.counter("watchdog_stalls_total", "stall events").add(1);
        let session = root.child("reactor", 1).child("session", 9);
        session.state("state", "lifecycle", STATES).set("streaming");
        session.gauge("owed", "segments owed").set(-3);
        let text = root.snapshot().to_prometheus("p2ps");
        assert!(text.contains("p2ps_watchdog_stalls_total 1"));
        assert!(
            text.contains("p2ps_session_owed{reactor=\"1\",session=\"9\"} -3"),
            "{text}"
        );
        assert!(
            text.contains("p2ps_session_state{reactor=\"1\",session=\"9\",state=\"probing\"} 0")
        );
        assert!(
            text.contains("p2ps_session_state{reactor=\"1\",session=\"9\",state=\"streaming\"} 1")
        );
        assert!(text.contains("# TYPE p2ps_snapshot_now_ms gauge"));
    }

    #[test]
    fn event_rings_register_and_read_through_snapshots() {
        let root = Monitor::root();
        let session = root.child("reactor", 0).child("session", 7);
        let rec = session.events("events", "protocol timeline");
        rec.record_at(5, 6, 0, 3);
        rec.record_at(9, 6, 1, 4);

        let snap = root.snapshot();
        let row = snap
            .find(&[("reactor", "0"), ("session", "7")], "events")
            .unwrap();
        assert_eq!(row.value(), SampleValue::Counter(2));
        let through = row.handle().as_recorder().unwrap();
        let evs = through.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            (evs[1].at_ms, evs[1].code, evs[1].a, evs[1].b),
            (9, 6, 1, 4)
        );

        // The exposition renders the ring as an event counter.
        let text = snap.to_prometheus("p2ps");
        assert!(
            text.contains("p2ps_session_events{reactor=\"0\",session=\"7\"} 2"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let root = Monitor::root();
        root.counter("x", "a counter");
        root.gauge("x", "now a gauge?");
    }

    #[test]
    fn concurrent_updates_and_snapshots_do_not_interfere() {
        let root = Monitor::root();
        let counter = root.child("reactor", 0).counter("events", "events");
        let mut threads = Vec::new();
        for _ in 0..4 {
            let c = counter.clone();
            threads.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            }));
        }
        let r = root.clone();
        let snapper = std::thread::spawn(move || {
            for _ in 0..50 {
                let _ = r.snapshot().to_prometheus("p2ps");
            }
        });
        for t in threads {
            t.join().unwrap();
        }
        snapper.join().unwrap();
        assert_eq!(counter.get(), 40_000);
    }
}
