//! The flight recorder: a fixed-capacity, lock-free ring of structured
//! events per session.
//!
//! A [`Recorder`] is a cheap clonable handle, either *disabled* (no ring
//! attached — [`Recorder::record`] is a single branch on an `Option`,
//! costing low single-digit nanoseconds and zero allocations) or backed
//! by an [`EventRing`] registered on a monitor scope via
//! [`Monitor::events`](crate::Monitor::events). Events are opaque
//! `(at_ms, code, a, b)` tuples; the protocol-level vocabulary lives in
//! `p2ps_proto::SessionEvent` so this crate stays protocol-free.
//!
//! The ring is a per-slot seqlock over plain atomics — no locks, no
//! unsafe code. Writers allocate a global index with one `fetch_add`,
//! invalidate the slot, store the fields, then publish the slot with a
//! release store of `index + 1`. Readers accept a slot only when its
//! sequence word reads `index + 1` both before and after the field
//! loads, so a torn slot (overwritten mid-read) is skipped rather than
//! misreported. With multiple writers a slot can in principle publish
//! mixed fields if one writer sleeps through a *full ring wrap* of
//! another's events — with the default capacity of 256 that window is
//! hundreds of recorded protocol events wide, and the payload is
//! telemetry, not state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity used by [`Monitor::events`](crate::Monitor::events).
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// One recorded event, as drained from a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Recording timestamp: [`crate::monotonic_ms`] on the live node, a
    /// virtual clock in deterministic harnesses.
    pub at_ms: u64,
    /// Event discriminant (`p2ps_proto::SessionEvent::code`).
    pub code: u8,
    /// First payload word (meaning depends on `code`).
    pub a: u64,
    /// Second payload word (meaning depends on `code`).
    pub b: u64,
}

/// One ring slot: a sequence word plus the event fields, all atomics.
#[derive(Debug)]
struct Slot {
    /// `0` while a write is in flight; `index + 1` once event `index`
    /// is fully published here.
    seq: AtomicU64,
    at_ms: AtomicU64,
    code: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            at_ms: AtomicU64::new(0),
            code: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// The shared ring. Capacity is fixed at construction; recording never
/// allocates or blocks, old events are overwritten once the ring wraps.
#[derive(Debug)]
pub(crate) struct EventRing {
    /// Total events ever recorded; slot for event `i` is `i % capacity`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
        }
    }

    fn push(&self, at_ms: u64, code: u8, a: u64, b: u64) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        // Invalidate, fill, publish. The release fence keeps the field
        // stores after the invalidation; the release store of `idx + 1`
        // keeps them before the publication.
        slot.seq.store(0, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.at_ms.store(at_ms, Ordering::Relaxed);
        slot.code.store(u64::from(code), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(idx + 1, Ordering::Release);
    }

    fn drain(&self) -> Vec<RawEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != i + 1 {
                continue; // being overwritten, or not yet published
            }
            let ev = RawEvent {
                at_ms: slot.at_ms.load(Ordering::Relaxed),
                code: slot.code.load(Ordering::Relaxed) as u8,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            // The acquire fence keeps the field loads before the
            // re-check, completing the seqlock read protocol.
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != i + 1 {
                continue; // torn: a writer lapped us mid-read
            }
            out.push(ev);
        }
        out
    }

    fn count(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}

/// Handle to a session's flight-recorder ring — or to nothing at all.
///
/// The disabled form ([`Recorder::disabled`]) is the default for every
/// call site that has no monitor scope: recording through it is one
/// `Option` branch, no atomics, no allocation. Clones share the ring.
/// Like the other metric handles, a recorder handed out by
/// [`Monitor::events`](crate::Monitor::events) keeps its scope alive in
/// snapshots.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    ring: Option<Arc<EventRing>>,
    _scope: Option<Arc<crate::tree::Node>>,
}

impl Recorder {
    /// A recorder with no sink attached: every `record` call is a
    /// near-free no-op. This is what hot paths hold when observability
    /// is off.
    pub fn disabled() -> Recorder {
        Recorder {
            ring: None,
            _scope: None,
        }
    }

    pub(crate) fn with_ring(ring: Arc<EventRing>) -> Recorder {
        Recorder {
            ring: Some(ring),
            _scope: None,
        }
    }

    /// An enabled recorder outside any monitor tree: a private ring of
    /// `capacity` slots. For harnesses (the deterministic simulator)
    /// that want the flight-recorder timeline without a live tree.
    pub fn standalone(capacity: usize) -> Recorder {
        Recorder::with_ring(Arc::new(EventRing::new(capacity)))
    }

    /// Clone with the scope node attached (see `MetricHandle::attached`).
    pub(crate) fn attached_to(&self, scope: &Arc<crate::tree::Node>) -> Recorder {
        Recorder {
            ring: self.ring.clone(),
            _scope: Some(scope.clone()),
        }
    }

    /// Whether a ring is attached (events recorded are retrievable).
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Records `(code, a, b)` stamped with [`crate::monotonic_ms`].
    #[inline]
    pub fn record(&self, code: u8, a: u64, b: u64) {
        if let Some(ring) = &self.ring {
            ring.push(crate::monotonic_ms(), code, a, b);
        }
    }

    /// Records `(code, a, b)` with an explicit timestamp — for
    /// deterministic harnesses driving a virtual clock.
    #[inline]
    pub fn record_at(&self, at_ms: u64, code: u8, a: u64, b: u64) {
        if let Some(ring) = &self.ring {
            ring.push(at_ms, code, a, b);
        }
    }

    /// Total events ever recorded (including any the ring has since
    /// overwritten). Zero for a disabled recorder.
    pub fn count(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.count())
    }

    /// The retained tail of the timeline, oldest first. Torn slots
    /// (concurrently overwritten during the read) are skipped. Empty for
    /// a disabled recorder.
    pub fn events(&self) -> Vec<RawEvent> {
        self.ring.as_ref().map_or_else(Vec::new, |r| r.drain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(1, 2, 3);
        assert_eq!(r.count(), 0);
        assert!(r.events().is_empty());
    }

    #[test]
    fn records_in_order_and_wraps() {
        let r = Recorder::with_ring(Arc::new(EventRing::new(4)));
        for i in 0..6u64 {
            r.record_at(i * 10, 1, i, 100 + i);
        }
        assert_eq!(r.count(), 6);
        let evs = r.events();
        // Capacity 4: events 2..6 retained, oldest first.
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(evs[0].at_ms, 20);
        assert_eq!(evs[3].b, 105);
    }

    #[test]
    fn clones_share_the_ring() {
        let r = Recorder::with_ring(Arc::new(EventRing::new(8)));
        let c = r.clone();
        c.record_at(1, 7, 0, 0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.events()[0].code, 7);
    }

    #[test]
    fn a_racing_reader_never_sees_a_torn_slot() {
        // Single writer: the per-slot seqlock double-check is airtight
        // (a lapped slot's sequence word can never read `i + 1` again),
        // so every drained event must be internally consistent.
        let r = Recorder::with_ring(Arc::new(EventRing::new(32)));
        let writer = {
            let rc = r.clone();
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    // A self-consistent payload: b must always equal a + 1.
                    rc.record_at(i, 1, i, i + 1);
                }
            })
        };
        let reader = {
            let rc = r.clone();
            std::thread::spawn(move || {
                for _ in 0..500 {
                    for ev in rc.events() {
                        assert_eq!(ev.b, ev.a + 1, "torn slot surfaced");
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(r.count(), 50_000);
        assert_eq!(r.events().len(), 32);
    }

    #[test]
    fn concurrent_writers_lose_nothing_from_the_head_count() {
        let r = Recorder::with_ring(Arc::new(EventRing::new(64)));
        let mut writers = Vec::new();
        for w in 0..4u64 {
            let rc = r.clone();
            writers.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    rc.record_at(i, 1, w, i);
                }
            }));
        }
        for t in writers {
            t.join().unwrap();
        }
        assert_eq!(r.count(), 20_000);
        assert_eq!(r.events().len(), 64);
    }
}
