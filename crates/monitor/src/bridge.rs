//! The monitor → timeseries bridge: a sampler thread that periodically
//! snapshots the introspection tree into `p2ps_metrics::TimeSeries`
//! windows, so a live node answers "what happened over the last five
//! minutes" and not just "what is true right now".
//!
//! Every sample walks the tree once, renders it through the same
//! Prometheus naming as `/metrics` (one series per family + label set,
//! keyed by the exposition sample key), appends the values at one shared
//! monotone timestamp, and trims each series to the retention window.
//! Scopes that vanish from the tree (a finished session) simply stop
//! receiving samples; their series age out of the window and are
//! dropped. The store is shared with the [`StatusServer`] via a
//! [`BridgeHandle`], which renders it as CSV for the `/timeseries`
//! route.
//!
//! [`StatusServer`]: crate::StatusServer

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use p2ps_metrics::TimeSeries;
use parking_lot::Mutex;

use crate::{monotonic_ms, Monitor};

/// Sampler cadence and retention for a [`TimeseriesBridge`].
#[derive(Debug, Clone, Copy)]
pub struct BridgeConfig {
    /// Milliseconds between samples (default 1 s).
    pub interval_ms: u64,
    /// Sliding retention window per series in milliseconds (default
    /// 5 min). Samples older than this are trimmed on every pass.
    pub retention_ms: u64,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            interval_ms: 1_000,
            retention_ms: 300_000,
        }
    }
}

/// Shared view of the bridge's series store; cheap to clone, readable
/// while the sampler runs.
#[derive(Debug, Clone, Default)]
pub struct BridgeHandle {
    store: Arc<Mutex<BTreeMap<String, TimeSeries>>>,
}

impl BridgeHandle {
    /// A handle with an empty store and no sampler attached — sample it
    /// explicitly with [`BridgeHandle::sample`] (tests, deterministic
    /// harnesses).
    pub fn new() -> BridgeHandle {
        BridgeHandle::default()
    }

    /// Takes one sample of `monitor` at time `at_ms`: every Prometheus
    /// sample in the tree (family + label set, exactly as `/metrics`
    /// renders it) is appended to its series, then each series is
    /// trimmed to `[at_ms - retention_ms, at_ms]` and empty series are
    /// dropped.
    ///
    /// Timestamps must not go backwards across calls — the sampler
    /// thread owns one monotone clock; external callers must do the
    /// same.
    pub fn sample(&self, monitor: &Monitor, prefix: &str, at_ms: u64, retention_ms: u64) {
        let text = monitor.snapshot().to_prometheus(prefix);
        let t = at_ms as f64;
        let cutoff = t - retention_ms as f64;
        let mut store = self.store.lock();
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(v) = value.parse::<f64>() else {
                continue;
            };
            store
                .entry(key.to_string())
                .or_insert_with(|| TimeSeries::new(key))
                .push(t, v);
        }
        store.retain(|_, series| {
            series.trim_before(cutoff);
            !series.is_empty()
        });
    }

    /// Names of every retained series, in sorted order.
    pub fn series_names(&self) -> Vec<String> {
        self.store.lock().keys().cloned().collect()
    }

    /// A point-in-time copy of one series, if retained.
    pub fn series(&self, name: &str) -> Option<TimeSeries> {
        self.store.lock().get(name).cloned()
    }

    /// Renders the whole store as CSV: `series,time_ms,value`, one row
    /// per sample, series in sorted order, times ascending within each.
    /// This is the `/timeseries` HTTP body.
    pub fn to_csv(&self) -> String {
        let store = self.store.lock();
        let mut out = String::from("series,time_ms,value\n");
        for (name, series) in store.iter() {
            for (t, v) in series.iter() {
                out.push_str(&format!("{name},{t},{v}\n"));
            }
        }
        out
    }
}

/// Owns the sampler thread bridging a [`Monitor`] tree into bounded
/// [`TimeSeries`] windows. Dropping the bridge (or calling
/// [`TimeseriesBridge::shutdown`]) stops the thread; the handle and its
/// collected series outlive it.
#[derive(Debug)]
pub struct TimeseriesBridge {
    handle: BridgeHandle,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl TimeseriesBridge {
    /// Starts sampling `monitor` (prefix as in
    /// [`Snapshot::to_prometheus`](crate::Snapshot::to_prometheus))
    /// every `cfg.interval_ms` on a background thread.
    pub fn start(monitor: Monitor, prefix: &str, cfg: BridgeConfig) -> TimeseriesBridge {
        let handle = BridgeHandle::new();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let handle = handle.clone();
            let stop = stop.clone();
            let prefix = prefix.to_string();
            thread::Builder::new()
                .name("p2ps-ts-bridge".to_string())
                .spawn(move || {
                    let interval = cfg.interval_ms.max(1);
                    while !stop.load(Ordering::Relaxed) {
                        handle.sample(&monitor, &prefix, monotonic_ms(), cfg.retention_ms);
                        // Chunked sleep so shutdown stays prompt at
                        // multi-second intervals.
                        let mut slept = 0;
                        while slept < interval && !stop.load(Ordering::Relaxed) {
                            let step = (interval - slept).min(25);
                            thread::sleep(Duration::from_millis(step));
                            slept += step;
                        }
                    }
                })
                .expect("spawning the bridge sampler thread")
        };
        TimeseriesBridge {
            handle,
            stop,
            thread: Some(thread),
        }
    }

    /// The shared series store (give this to a
    /// [`StatusServer`](crate::StatusServer) to expose `/timeseries`).
    pub fn handle(&self) -> BridgeHandle {
        self.handle.clone()
    }

    /// Stops the sampler thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TimeseriesBridge {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_accumulate_and_age_out() {
        let root = Monitor::root();
        let gauge = root.child("reactor", 0).gauge("depth", "queued bytes");
        let handle = BridgeHandle::new();

        gauge.set(10);
        handle.sample(&root, "p2ps", 1_000, 5_000);
        gauge.set(20);
        handle.sample(&root, "p2ps", 2_000, 5_000);

        let series = handle.series("p2ps_reactor_depth{reactor=\"0\"}").unwrap();
        assert_eq!(
            series.iter().collect::<Vec<_>>(),
            vec![(1_000.0, 10.0), (2_000.0, 20.0)]
        );

        // A sample far in the future trims the old window away.
        gauge.set(30);
        handle.sample(&root, "p2ps", 10_000, 5_000);
        let series = handle.series("p2ps_reactor_depth{reactor=\"0\"}").unwrap();
        assert_eq!(series.iter().collect::<Vec<_>>(), vec![(10_000.0, 30.0)]);
    }

    #[test]
    fn vanished_scopes_age_out_of_the_store() {
        let root = Monitor::root();
        let handle = BridgeHandle::new();
        {
            let session = root.child("reactor", 0).child("session", 9);
            let owed = session.gauge("owed", "segments owed");
            owed.set(4);
            handle.sample(&root, "p2ps", 0, 1_000);
        }
        assert!(handle
            .series_names()
            .iter()
            .any(|n| n.contains("session=\"9\"")));
        // The scope is gone; after the window passes, so is the series.
        handle.sample(&root, "p2ps", 5_000, 1_000);
        assert!(!handle
            .series_names()
            .iter()
            .any(|n| n.contains("session=\"9\"")));
    }

    #[test]
    fn csv_rows_carry_series_time_value() {
        let root = Monitor::root();
        root.counter("ticks_total", "ticks").add(3);
        let handle = BridgeHandle::new();
        handle.sample(&root, "p2ps", 250, 60_000);
        let csv = handle.to_csv();
        assert!(csv.starts_with("series,time_ms,value\n"), "{csv}");
        assert!(csv.contains("p2ps_ticks_total,250,3\n"), "{csv}");
    }

    #[test]
    fn sampler_thread_collects_and_stops() {
        let root = Monitor::root();
        let gauge = root.child("reactor", 1).gauge("depth", "queued");
        gauge.set(7);
        let mut bridge = TimeseriesBridge::start(
            root.clone(),
            "p2ps",
            BridgeConfig {
                interval_ms: 5,
                retention_ms: 60_000,
            },
        );
        let handle = bridge.handle();
        for _ in 0..200 {
            if handle.series("p2ps_reactor_depth{reactor=\"1\"}").is_some() {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        bridge.shutdown();
        let series = handle.series("p2ps_reactor_depth{reactor=\"1\"}").unwrap();
        assert!(series.last().unwrap().1 == 7.0);
    }
}
