//! Live introspection for a running `p2ps` process: a tree of atomic
//! gauges, counters and state cells that the hot paths update without
//! taking any lock, snapshotable at any moment from any thread.
//!
//! At 256+ reactor-hosted sessions per process (see `p2ps-node`) nothing
//! can be debugged with printlns: the question "what is this node doing
//! *right now*" needs a data structure the data path can feed for
//! nanoseconds per event and an observer can walk without perturbing it.
//! This crate is that structure, in three layers:
//!
//! * **Primitives** — [`Counter`] (monotone `u64`), [`Gauge`] (signed
//!   level), [`StateCell`] (one of a fixed set of named states). All are
//!   cloneable handles to one shared atomic; every update and read is a
//!   single relaxed atomic operation. No update path ever blocks.
//! * **The tree** — a [`Monitor`] is a node in a forest of labeled
//!   scopes (`reactor=0` → `session=42` → …). Components register their
//!   metrics on the node describing them and keep the handles; when the
//!   owner drops its node (a session ends, a reactor stops), the whole
//!   subtree vanishes from subsequent snapshots automatically. Creating
//!   nodes and registering metrics takes a short registration lock —
//!   but registration happens at attach/session boundaries, never on
//!   the per-segment serving path.
//! * **Consumers** — [`Monitor::snapshot`] walks the live tree into a
//!   [`Snapshot`] whose rows keep *handles* (an observer like a stall
//!   watchdog can both read fresh values and flip a state cell), and
//!   renders as Prometheus text exposition
//!   ([`Snapshot::to_prometheus`]) or feeds human tables
//!   (`p2psd status`). [`StatusServer`] serves the exposition over a
//!   loopback HTTP endpoint. A [`Recorder`] is the same idea for
//!   *timelines*: a lock-free flight-recorder ring of structured events
//!   per session, dumpable as `/trace/<session>`. The
//!   [`TimeseriesBridge`] samples the tree on a cadence into bounded
//!   `p2ps_metrics::TimeSeries` windows served as `/timeseries` CSV.
//!
//! The shape follows ouisync's `state_monitor`/`deadlock` packages
//! (observe the real system, not a model of it) with the registration
//! idiom kept swappable the way MoosicBox wraps its instrumentation.
//!
//! # Examples
//!
//! Registering a custom gauge and reading it back through a snapshot:
//!
//! ```
//! use p2ps_monitor::Monitor;
//!
//! let root = Monitor::root();
//! let shard = root.child("reactor", 0);
//! let depth = shard.gauge("queue_depth", "bytes queued for write");
//!
//! depth.set(4096);          // hot path: one relaxed atomic store
//! depth.add(-1024);
//!
//! let snap = root.snapshot();
//! let row = snap.find(&[("reactor", "0")], "queue_depth").unwrap();
//! assert_eq!(row.value().as_i64(), 3072);
//! let text = snap.to_prometheus("p2ps");
//! assert!(text.contains("p2ps_reactor_queue_depth{reactor=\"0\"} 3072"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bridge;
mod expose;
mod recorder;
mod tree;

pub use bridge::{BridgeConfig, BridgeHandle, TimeseriesBridge};
pub use expose::{fetch_path, fetch_status, StatusServer};
pub use recorder::{RawEvent, Recorder, DEFAULT_EVENT_CAPACITY};
pub use tree::{
    Counter, Gauge, MetricHandle, Monitor, SampleValue, Snapshot, SnapshotMetric, SnapshotNode,
    StateCell,
};

use std::sync::OnceLock;
use std::time::Instant;

/// Milliseconds since the first call in this process — one shared
/// monotone timescale for progress timestamps, comparable across
/// reactor shards and observer threads (each reactor's own `now_ms`
/// counts from its private start instant and cannot be compared).
pub fn monotonic_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

#[cfg(test)]
mod clock_tests {
    use super::monotonic_ms;

    #[test]
    fn monotone_and_shared() {
        let a = monotonic_ms();
        std::thread::sleep(std::time::Duration::from_millis(3));
        let b = monotonic_ms();
        assert!(b >= a + 2, "{a} -> {b}");
    }
}
