//! Loopback HTTP endpoint serving the Prometheus text exposition, plus
//! a tiny client used by `p2psd status` and tests.
//!
//! The server is deliberately minimal: one thread, a nonblocking accept
//! loop, one snapshot rendered per request, `Connection: close`. Every
//! request path gets the same exposition body — there is exactly one
//! resource. It binds loopback only; metric exposure to a wider network
//! is a deployment decision this crate does not make.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::Monitor;

/// Serves `Monitor` snapshots as Prometheus text over loopback HTTP.
///
/// Dropping the server (or calling [`StatusServer::shutdown`]) stops
/// the accept thread.
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `127.0.0.1:port` (`0` picks an ephemeral port — read it
    /// back with [`StatusServer::addr`]) and starts serving snapshots
    /// of `monitor` with metric families prefixed `{prefix}_`.
    pub fn start(port: u16, monitor: Monitor, prefix: &str) -> io::Result<StatusServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let prefix = prefix.to_string();
        let thread = thread::Builder::new()
            .name("p2ps-status".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = serve_one(stream, &monitor, &prefix);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .map_err(io::Error::other)?;
        Ok(StatusServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: TcpStream, monitor: &Monitor, prefix: &str) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Drain the request head; the path is irrelevant (one resource).
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = monitor.snapshot().to_prometheus(prefix);
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())
}

/// Fetches the exposition body from a [`StatusServer`] at `addr`
/// (`host:port`). Blocks until the server closes the connection.
pub fn fetch_status(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.find("\r\n\r\n") {
        Some(i) => Ok(raw[i + 4..].to_string()),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response from status endpoint",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_snapshot_over_http() {
        let root = Monitor::root();
        let depth = root
            .child("reactor", 0)
            .gauge("queue_depth", "queued bytes");
        depth.set(512);
        let mut server = StatusServer::start(0, root.clone(), "p2ps").unwrap();
        let addr = server.addr().to_string();

        let body = fetch_status(&addr).unwrap();
        assert!(
            body.contains("p2ps_reactor_queue_depth{reactor=\"0\"} 512"),
            "{body}"
        );

        // A second fetch sees updated values.
        depth.set(1024);
        let body = fetch_status(&addr).unwrap();
        assert!(body.contains("p2ps_reactor_queue_depth{reactor=\"0\"} 1024"));

        server.shutdown();
        assert!(fetch_status(&addr).is_err(), "endpoint gone after shutdown");
    }
}
