//! Loopback HTTP endpoint serving the Prometheus text exposition, the
//! timeseries bridge's CSV window, and per-session flight-recorder
//! timelines — plus a tiny client used by `p2psd status` and tests.
//!
//! The server is deliberately minimal: one thread, a nonblocking accept
//! loop, one snapshot rendered per request, `Connection: close`. Three
//! resources exist:
//!
//! * `GET /metrics` (also `/`) — the Prometheus text exposition.
//! * `GET /timeseries` — the [`BridgeHandle`]'s retained window as CSV
//!   (`series,time_ms,value`); 404 unless a bridge is attached.
//! * `GET /trace/<session>` — the session's flight-recorder ring as
//!   one `at_ms code a b` line per event; 404 when the session (or its
//!   `events` ring) is not in the tree.
//!
//! It binds loopback only; metric exposure to a wider network is a
//! deployment decision this crate does not make.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::bridge::BridgeHandle;
use crate::Monitor;

/// Serves `Monitor` snapshots (and optionally a timeseries window and
/// flight-recorder traces) over loopback HTTP.
///
/// Dropping the server (or calling [`StatusServer::shutdown`]) stops
/// the accept thread.
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `127.0.0.1:port` (`0` picks an ephemeral port — read it
    /// back with [`StatusServer::addr`]) and starts serving snapshots
    /// of `monitor` with metric families prefixed `{prefix}_`. Without
    /// a bridge, `/timeseries` answers 404.
    pub fn start(port: u16, monitor: Monitor, prefix: &str) -> io::Result<StatusServer> {
        Self::spawn(port, monitor, prefix, None)
    }

    /// Like [`StatusServer::start`], additionally serving `bridge`'s
    /// retained series window on `/timeseries`.
    pub fn start_with_bridge(
        port: u16,
        monitor: Monitor,
        prefix: &str,
        bridge: BridgeHandle,
    ) -> io::Result<StatusServer> {
        Self::spawn(port, monitor, prefix, Some(bridge))
    }

    fn spawn(
        port: u16,
        monitor: Monitor,
        prefix: &str,
        bridge: Option<BridgeHandle>,
    ) -> io::Result<StatusServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let prefix = prefix.to_string();
        let thread = thread::Builder::new()
            .name("p2ps-status".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = serve_one(stream, &monitor, &prefix, bridge.as_ref());
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .map_err(io::Error::other)?;
        Ok(StatusServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Renders a session's flight-recorder ring as the `/trace/<id>` body:
/// one `at_ms code a b` line per retained event, oldest first. `None`
/// when no session scope with that id carries an `events` ring.
fn render_trace(monitor: &Monitor, session: &str) -> Option<String> {
    let snap = monitor.snapshot();
    for node in snap.nodes() {
        if node.kind() != Some("session") || node.label("session") != Some(session) {
            continue;
        }
        let Some(recorder) = node.metric("events").and_then(|m| m.handle().as_recorder()) else {
            continue;
        };
        let mut out = String::new();
        for ev in recorder.events() {
            out.push_str(&format!("{} {} {} {}\n", ev.at_ms, ev.code, ev.a, ev.b));
        }
        return Some(out);
    }
    None
}

fn serve_one(
    mut stream: TcpStream,
    monitor: &Monitor,
    prefix: &str,
    bridge: Option<&BridgeHandle>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // "GET <path> HTTP/1.1" — everything we need is the path.
    let request_line = String::from_utf8_lossy(&head);
    let path = request_line
        .split_whitespace()
        .nth(1)
        .unwrap_or("/")
        .to_string();
    let response = match path.as_str() {
        "/" | "/metrics" => ok_response(
            "text/plain; version=0.0.4; charset=utf-8",
            &monitor.snapshot().to_prometheus(prefix),
        ),
        "/timeseries" => match bridge {
            Some(handle) => ok_response("text/csv; charset=utf-8", &handle.to_csv()),
            None => not_found("no timeseries bridge attached\n"),
        },
        p => match p.strip_prefix("/trace/") {
            Some(session) => match render_trace(monitor, session) {
                Some(body) => ok_response("text/plain; charset=utf-8", &body),
                None => not_found("no such session trace\n"),
            },
            None => not_found("unknown path\n"),
        },
    };
    stream.write_all(response.as_bytes())
}

fn ok_response(content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    )
}

fn not_found(body: &str) -> String {
    format!(
        "HTTP/1.1 404 Not Found\r\n\
         Content-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    )
}

/// Fetches `path` from a [`StatusServer`] at `addr` (`host:port`).
/// Blocks until the server closes the connection; non-200 statuses
/// (e.g. 404 for an unknown trace) surface as [`io::ErrorKind::NotFound`].
pub fn fetch_path(addr: &str, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let Some(i) = raw.find("\r\n\r\n") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response from status endpoint",
        ));
    };
    let body = raw[i + 4..].to_string();
    if !raw.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("status endpoint: {}", raw.lines().next().unwrap_or("")),
        ));
    }
    Ok(body)
}

/// Fetches the Prometheus exposition body from a [`StatusServer`] at
/// `addr` (`host:port`).
pub fn fetch_status(addr: &str) -> io::Result<String> {
    fetch_path(addr, "/metrics")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::BridgeHandle;

    #[test]
    fn serves_snapshot_over_http() {
        let root = Monitor::root();
        let depth = root
            .child("reactor", 0)
            .gauge("queue_depth", "queued bytes");
        depth.set(512);
        let mut server = StatusServer::start(0, root.clone(), "p2ps").unwrap();
        let addr = server.addr().to_string();

        let body = fetch_status(&addr).unwrap();
        assert!(
            body.contains("p2ps_reactor_queue_depth{reactor=\"0\"} 512"),
            "{body}"
        );

        // A second fetch sees updated values.
        depth.set(1024);
        let body = fetch_status(&addr).unwrap();
        assert!(body.contains("p2ps_reactor_queue_depth{reactor=\"0\"} 1024"));

        server.shutdown();
        assert!(fetch_status(&addr).is_err(), "endpoint gone after shutdown");
    }

    #[test]
    fn timeseries_route_serves_the_bridge_window() {
        let root = Monitor::root();
        root.counter("ticks_total", "ticks").add(2);
        let handle = BridgeHandle::new();
        handle.sample(&root, "p2ps", 100, 60_000);
        let server =
            StatusServer::start_with_bridge(0, root.clone(), "p2ps", handle.clone()).unwrap();
        let addr = server.addr().to_string();

        let csv = fetch_path(&addr, "/timeseries").unwrap();
        assert!(csv.starts_with("series,time_ms,value\n"), "{csv}");
        assert!(csv.contains("p2ps_ticks_total,100,2\n"), "{csv}");

        // Without a bridge the route answers 404.
        let bare = StatusServer::start(0, root, "p2ps").unwrap();
        let err = fetch_path(&bare.addr().to_string(), "/timeseries").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn trace_route_dumps_a_session_ring() {
        let root = Monitor::root();
        let session = root.child("reactor", 1).child("session", 42);
        let rec = session.events("events", "protocol timeline");
        rec.record_at(10, 6, 0, 3);
        rec.record_at(20, 6, 1, 4);
        let server = StatusServer::start(0, root.clone(), "p2ps").unwrap();
        let addr = server.addr().to_string();

        let body = fetch_path(&addr, "/trace/42").unwrap();
        assert_eq!(body, "10 6 0 3\n20 6 1 4\n");

        let err = fetch_path(&addr, "/trace/41").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound, "unknown session");
        let err = fetch_path(&addr, "/bogus").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound, "unknown path");
    }

    #[test]
    fn hostile_state_labels_are_escaped_in_the_exposition() {
        // Satellite guard: label values containing backslashes, quotes
        // and newlines must render escaped, keeping the exposition
        // parseable line-by-line.
        const STATES: &[&str] = &["ok", "hos\"tile\\state\nnewline"];
        let root = Monitor::root();
        let scope = root.child("path", "a\\b\"c\nd");
        scope
            .state("state", "hostile states", STATES)
            .set(STATES[1]);
        let server = StatusServer::start(0, root.clone(), "p2ps").unwrap();

        let body = fetch_status(&server.addr().to_string()).unwrap();
        assert!(
            body.contains(r#"path="a\\b\"c\nd""#),
            "scope label must be escaped: {body}"
        );
        assert!(
            body.contains(r#"state="hos\"tile\\state\nnewline""#),
            "state label must be escaped: {body}"
        );
        // No raw (unescaped) newline may survive inside a sample line:
        // every line is either a comment or ends in a numeric value.
        for line in body.lines() {
            assert!(
                line.starts_with('#') || line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(),
                "unparseable exposition line (broken escaping?): {line:?}"
            );
        }
    }
}
