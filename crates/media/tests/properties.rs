//! Property-based tests for the media substrate.

use bytes::Bytes;
use proptest::prelude::*;

use p2ps_core::assignment::SegmentDuration;
use p2ps_media::{MediaFile, MediaInfo, PlaybackBuffer, Segment, SegmentStore};

proptest! {
    /// Synthesized files are deterministic, size-exact and self-verifying.
    #[test]
    fn synthesis_is_reproducible(
        name in "[a-z]{1,12}",
        segments in 1u64..64,
        bytes in 1u32..2_048,
    ) {
        let info = MediaInfo::new(&name, segments, SegmentDuration::from_millis(10), bytes);
        let a = MediaFile::synthesize(info.clone());
        let b = MediaFile::synthesize(info);
        prop_assert_eq!(&a, &b);
        for s in a.iter() {
            prop_assert_eq!(s.payload().len(), bytes as usize);
            prop_assert!(a.verify(&s));
        }
    }

    /// Any permutation of delivery fills the store; completeness and the
    /// contiguous prefix behave like their definitions.
    #[test]
    fn store_completeness_under_any_delivery_order(
        n in 1u64..40,
        order in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
    ) {
        let mut indices: Vec<u64> = (0..n).collect();
        // Derive a permutation prefix from the random indices.
        let mut delivered: Vec<u64> = Vec::new();
        for idx in order {
            if indices.is_empty() { break; }
            delivered.push(indices.swap_remove(idx.index(indices.len())));
        }
        let mut store = SegmentStore::new(n);
        for &i in &delivered {
            store.insert(Segment::new(i, Bytes::from(vec![i as u8; 4])));
        }
        prop_assert_eq!(store.len(), delivered.len());
        prop_assert_eq!(store.is_complete(), delivered.len() as u64 == n);
        // contiguous prefix = first gap in the delivered set
        let mut have = vec![false; n as usize];
        for &i in &delivered {
            have[i as usize] = true;
        }
        let expected_prefix = have.iter().take_while(|&&b| b).count() as u64;
        prop_assert_eq!(store.contiguous_prefix(), expected_prefix);
    }

    /// Rebuilding a file from a complete store round-trips; any missing
    /// segment makes it fail.
    #[test]
    fn from_store_round_trip(segments in 1u64..32, drop_one in any::<bool>(), which in any::<prop::sample::Index>()) {
        let info = MediaInfo::new("prop", segments, SegmentDuration::from_millis(10), 64);
        let file = MediaFile::synthesize(info.clone());
        let mut store = SegmentStore::new(segments);
        let skip = if drop_one { Some(which.index(segments as usize) as u64) } else { None };
        for s in file.iter() {
            if Some(s.index()) != skip {
                store.insert(s);
            }
        }
        match skip {
            None => prop_assert_eq!(MediaFile::from_store(info, &store).unwrap(), file),
            Some(_) => prop_assert!(MediaFile::from_store(info, &store).is_none()),
        }
    }

    /// The buffer's minimum feasible delay makes playback smooth, and one
    /// millisecond less does not.
    #[test]
    fn min_feasible_delay_is_tight(
        arrivals in prop::collection::vec(0u64..10_000, 1..64),
    ) {
        let dt = SegmentDuration::from_millis(100);
        let mut buf = PlaybackBuffer::new(arrivals.len() as u64, dt);
        for (i, &at) in arrivals.iter().enumerate() {
            buf.record_arrival(i as u64, at);
        }
        let min = buf.min_feasible_delay_ms().unwrap();
        prop_assert!(buf.report(min).is_smooth());
        if min > 0 {
            prop_assert!(!buf.report(min - 1).is_smooth());
        }
    }

    /// Lateness accounting: with delay D the total number of late segments
    /// is non-increasing in D.
    #[test]
    fn lateness_monotone_in_delay(
        arrivals in prop::collection::vec(0u64..5_000, 1..48),
        d1 in 0u64..6_000,
        d2 in 0u64..6_000,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let dt = SegmentDuration::from_millis(50);
        let mut buf = PlaybackBuffer::new(arrivals.len() as u64, dt);
        for (i, &at) in arrivals.iter().enumerate() {
            buf.record_arrival(i as u64, at);
        }
        prop_assert!(buf.report(hi).late_segments.len() <= buf.report(lo).late_segments.len());
    }
}
