//! CBR media substrate for the `p2ps` peer-to-peer streaming reproduction.
//!
//! The paper's model (§2(5)) assumes the media file is a constant-bit-rate
//! stream partitioned into small sequential segments of equal size, each
//! with playback time `δt`. This crate supplies everything the runnable
//! node and the examples need to treat "a video" as a concrete object:
//!
//! * [`MediaInfo`] / [`MediaFile`] — metadata and synthetic deterministic
//!   content for a CBR file (no real video is required; the streaming
//!   algorithms never inspect payload bytes).
//! * [`Segment`] / [`SegmentStore`] — owned segment payloads and the
//!   per-peer store of received segments.
//! * [`PlaybackBuffer`] — the requesting peer's play-out process: segments
//!   arrive asynchronously, playback starts after the buffering delay, and
//!   the buffer reports continuity violations (underruns) exactly where a
//!   real player would stall.
//!
//! # Examples
//!
//! ```
//! use p2ps_media::{MediaFile, MediaInfo};
//! use p2ps_core::assignment::SegmentDuration;
//!
//! let info = MediaInfo::new("demo", 16, SegmentDuration::from_millis(250), 1_024);
//! let file = MediaFile::synthesize(info.clone());
//! assert_eq!(file.info().segment_count(), 16);
//! let seg = file.segment(3);
//! assert_eq!(seg.payload().len(), 1_024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod file;
mod segment;

pub use buffer::{BufferEvent, PlaybackBuffer, PlaybackReport};
pub use file::{MediaFile, MediaInfo};
pub use segment::{Segment, SegmentStore};
