//! The requesting peer's playback buffer.

use serde::{Deserialize, Serialize};

use p2ps_core::assignment::SegmentDuration;

/// A segment that missed its playback deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferEvent {
    /// Index of the late segment.
    pub segment: u64,
    /// Playback deadline in ms since transmission start
    /// (`delay + segment · δt`).
    pub deadline_ms: u64,
    /// Actual arrival time in ms since transmission start.
    pub arrival_ms: u64,
}

impl BufferEvent {
    /// How late the segment was.
    pub fn lateness_ms(&self) -> u64 {
        self.arrival_ms.saturating_sub(self.deadline_ms)
    }
}

/// Continuity analysis of one playback run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaybackReport {
    /// The buffering delay that was applied, in ms.
    pub delay_ms: u64,
    /// Segments that had not arrived by their playback deadline.
    pub late_segments: Vec<BufferEvent>,
    /// Segments that never arrived at all.
    pub missing_segments: Vec<u64>,
}

impl PlaybackReport {
    /// Whether playback was perfectly continuous.
    pub fn is_smooth(&self) -> bool {
        self.late_segments.is_empty() && self.missing_segments.is_empty()
    }

    /// The worst lateness observed, in ms.
    pub fn max_lateness_ms(&self) -> u64 {
        self.late_segments
            .iter()
            .map(BufferEvent::lateness_ms)
            .max()
            .unwrap_or(0)
    }
}

/// Records segment arrival times during a streaming session and evaluates
/// playback continuity (paper §3: "ensure a continuous playback, with
/// minimum buffering delay").
///
/// All times are milliseconds since the start of transmission, matching
/// the paper's definition of buffering delay as the interval between the
/// start of transmission and the start of playback.
///
/// # Examples
///
/// ```
/// use p2ps_media::PlaybackBuffer;
/// use p2ps_core::assignment::SegmentDuration;
///
/// let dt = SegmentDuration::from_millis(100);
/// let mut buf = PlaybackBuffer::new(3, dt);
/// buf.record_arrival(0, 150);
/// buf.record_arrival(1, 250);
/// buf.record_arrival(2, 300);
/// // Playback with a 2-slot (200 ms) delay is smooth...
/// assert!(buf.report(200).is_smooth());
/// // ...and 150 ms is in fact the minimum feasible delay.
/// assert_eq!(buf.min_feasible_delay_ms(), Some(150));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaybackBuffer {
    dt: SegmentDuration,
    arrivals: Vec<Option<u64>>,
}

impl PlaybackBuffer {
    /// Creates a buffer for a file of `total_segments` segments with
    /// playback time `dt` each.
    ///
    /// # Panics
    ///
    /// Panics if `total_segments == 0`.
    pub fn new(total_segments: u64, dt: SegmentDuration) -> Self {
        assert!(total_segments > 0, "cannot play an empty file");
        PlaybackBuffer {
            dt,
            arrivals: vec![None; total_segments as usize],
        }
    }

    /// Number of segments in the file.
    pub fn total_segments(&self) -> u64 {
        self.arrivals.len() as u64
    }

    /// Records that segment `index` finished arriving `at_ms` after the
    /// start of transmission. Re-deliveries keep the *earliest* arrival.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn record_arrival(&mut self, index: u64, at_ms: u64) {
        let slot = &mut self.arrivals[index as usize];
        *slot = Some(match *slot {
            Some(prev) => prev.min(at_ms),
            None => at_ms,
        });
    }

    /// Number of distinct segments that have arrived.
    pub fn received_count(&self) -> u64 {
        self.arrivals.iter().filter(|a| a.is_some()).count() as u64
    }

    /// Whether every segment has arrived.
    pub fn is_complete(&self) -> bool {
        self.arrivals.iter().all(Option::is_some)
    }

    /// The smallest buffering delay (ms) under which playback would have
    /// been continuous, or `None` while segments are still missing.
    ///
    /// This is `max_s (arrival_s - s·δt)`, the empirical counterpart of the
    /// assignment-level delay formula.
    pub fn min_feasible_delay_ms(&self) -> Option<u64> {
        let dt = self.dt.as_millis();
        let mut delay: u64 = 0;
        for (s, a) in self.arrivals.iter().enumerate() {
            let arrival = (*a)?;
            delay = delay.max(arrival.saturating_sub(s as u64 * dt));
        }
        Some(delay)
    }

    /// Evaluates playback with buffering delay `delay_ms`: segment `s`
    /// plays at `delay_ms + s·δt` and is *late* if it arrived after that.
    pub fn report(&self, delay_ms: u64) -> PlaybackReport {
        let dt = self.dt.as_millis();
        let mut late = Vec::new();
        let mut missing = Vec::new();
        for (s, a) in self.arrivals.iter().enumerate() {
            let deadline = delay_ms + s as u64 * dt;
            match a {
                None => missing.push(s as u64),
                Some(arrival) if *arrival > deadline => late.push(BufferEvent {
                    segment: s as u64,
                    deadline_ms: deadline,
                    arrival_ms: *arrival,
                }),
                Some(_) => {}
            }
        }
        PlaybackReport {
            delay_ms,
            late_segments: late,
            missing_segments: missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt() -> SegmentDuration {
        SegmentDuration::from_millis(100)
    }

    #[test]
    #[should_panic(expected = "empty file")]
    fn empty_file_panics() {
        let _ = PlaybackBuffer::new(0, dt());
    }

    #[test]
    fn arrival_bookkeeping() {
        let mut b = PlaybackBuffer::new(3, dt());
        assert_eq!(b.total_segments(), 3);
        assert_eq!(b.received_count(), 0);
        b.record_arrival(1, 100);
        assert_eq!(b.received_count(), 1);
        assert!(!b.is_complete());
        b.record_arrival(0, 50);
        b.record_arrival(2, 290);
        assert!(b.is_complete());
    }

    #[test]
    fn redelivery_keeps_earliest_arrival() {
        let mut b = PlaybackBuffer::new(1, dt());
        b.record_arrival(0, 500);
        b.record_arrival(0, 100);
        b.record_arrival(0, 900);
        assert_eq!(b.min_feasible_delay_ms(), Some(100));
    }

    #[test]
    fn min_feasible_delay_is_none_until_complete() {
        let mut b = PlaybackBuffer::new(2, dt());
        b.record_arrival(0, 10);
        assert_eq!(b.min_feasible_delay_ms(), None);
        b.record_arrival(1, 120);
        assert_eq!(b.min_feasible_delay_ms(), Some(20));
    }

    #[test]
    fn smooth_playback_report() {
        let mut b = PlaybackBuffer::new(3, dt());
        b.record_arrival(0, 100);
        b.record_arrival(1, 200);
        b.record_arrival(2, 250);
        let r = b.report(100);
        assert!(r.is_smooth());
        assert_eq!(r.max_lateness_ms(), 0);
    }

    #[test]
    fn late_segments_are_reported_with_lateness() {
        let mut b = PlaybackBuffer::new(2, dt());
        b.record_arrival(0, 50);
        b.record_arrival(1, 400); // deadline with delay 100 is 200
        let r = b.report(100);
        assert!(!r.is_smooth());
        assert_eq!(r.late_segments.len(), 1);
        assert_eq!(r.late_segments[0].segment, 1);
        assert_eq!(r.late_segments[0].lateness_ms(), 200);
        assert_eq!(r.max_lateness_ms(), 200);
        // With the min feasible delay, playback is smooth.
        let min = b.min_feasible_delay_ms().unwrap();
        assert_eq!(min, 300);
        assert!(b.report(min).is_smooth());
    }

    #[test]
    fn missing_segments_are_reported() {
        let mut b = PlaybackBuffer::new(3, dt());
        b.record_arrival(0, 10);
        let r = b.report(1_000_000);
        assert!(!r.is_smooth());
        assert_eq!(r.missing_segments, vec![1, 2]);
    }

    #[test]
    fn theorem1_empirically_on_schedule() {
        // Drive arrivals from the optimal assignment's schedule; the
        // empirical minimum delay must equal n·δt.
        use p2ps_core::assignment::{otsp2p, schedule::TransmissionSchedule};
        use p2ps_core::PeerClass;

        let classes: Vec<PeerClass> = [2u8, 3, 4, 4]
            .iter()
            .map(|&k| PeerClass::new(k).unwrap())
            .collect();
        let a = otsp2p(&classes).unwrap();
        let total = 32u64;
        let sched = TransmissionSchedule::new(&a, total);
        let mut buf = PlaybackBuffer::new(total, dt());
        for ev in sched.iter() {
            buf.record_arrival(ev.segment, ev.arrival_slot * 100);
        }
        assert_eq!(buf.min_feasible_delay_ms(), Some(4 * 100));
    }
}
