//! Media file metadata and synthetic content.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use p2ps_core::assignment::SegmentDuration;

use crate::Segment;

/// Metadata of a CBR media file (paper §2(5)): equal-size sequential
/// segments, each playing for `δt`.
///
/// # Examples
///
/// ```
/// use p2ps_media::MediaInfo;
/// use p2ps_core::assignment::SegmentDuration;
///
/// // The paper's video: a 60-minute show. With δt = 1 s that is 3600
/// // segments.
/// let info = MediaInfo::new("show", 3_600, SegmentDuration::from_secs(1), 64 * 1024);
/// assert_eq!(info.duration().as_secs(), 3_600);
/// assert_eq!(info.total_bytes(), 3_600 * 64 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MediaInfo {
    name: String,
    segment_count: u64,
    segment_duration: SegmentDuration,
    segment_bytes: u32,
}

impl MediaInfo {
    /// Describes a media file.
    ///
    /// # Panics
    ///
    /// Panics if `segment_count == 0` or `segment_bytes == 0` — an empty
    /// media file cannot be streamed.
    pub fn new(
        name: impl Into<String>,
        segment_count: u64,
        segment_duration: SegmentDuration,
        segment_bytes: u32,
    ) -> Self {
        assert!(segment_count > 0, "media file needs at least one segment");
        assert!(segment_bytes > 0, "segments must carry payload");
        MediaInfo {
            name: name.into(),
            segment_count,
            segment_duration,
            segment_bytes,
        }
    }

    /// Human-readable name of the media item.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of segments.
    pub fn segment_count(&self) -> u64 {
        self.segment_count
    }

    /// Playback duration `δt` of each segment.
    pub fn segment_duration(&self) -> SegmentDuration {
        self.segment_duration
    }

    /// Payload size of each segment in bytes (CBR: all equal).
    pub fn segment_bytes(&self) -> u32 {
        self.segment_bytes
    }

    /// Total playback duration of the file.
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.segment_duration.as_millis() * self.segment_count)
    }

    /// Total payload size of the file in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.segment_count * self.segment_bytes as u64
    }
}

/// A fully materialized media file with deterministic synthetic content.
///
/// Payload bytes are generated from the file name and segment index, so
/// any peer can validate that what it received is exactly what the origin
/// would have produced — the integration tests use this to prove
/// end-to-end integrity of the streaming path.
///
/// The whole file lives in **one contiguous [`Bytes`] allocation**;
/// [`segment`](MediaFile::segment) hands out O(1) shared sub-views of it.
/// Cloning a `MediaFile` is therefore O(1) too — a supplier can snapshot
/// the file per session without duplicating payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaFile {
    info: MediaInfo,
    /// Segment `i` occupies `i*segment_bytes .. (i+1)*segment_bytes`.
    data: Bytes,
}

impl MediaFile {
    /// Synthesizes the file contents for `info`.
    pub fn synthesize(info: MediaInfo) -> Self {
        let mut data = Vec::with_capacity(info.total_bytes() as usize);
        for i in 0..info.segment_count {
            synthesize_payload_into(&info, i, &mut data);
        }
        MediaFile {
            info,
            data: Bytes::from(data),
        }
    }

    /// Reassembles a file from received segments (the path a requesting
    /// peer takes after a streaming session: "playback *and store*").
    ///
    /// Returns `None` unless the store holds every segment of `info` with
    /// the exact segment size — an incomplete or corrupt download must not
    /// be re-served to other peers.
    pub fn from_store(info: MediaInfo, store: &crate::SegmentStore) -> Option<Self> {
        if store.expected() != info.segment_count || !store.is_complete() {
            return None;
        }
        // Compact the received segments into one contiguous allocation
        // (one copy at reassembly) so that re-serving the file later hands
        // out O(1) views like a synthesized original.
        let mut data = Vec::with_capacity(info.total_bytes() as usize);
        for i in 0..info.segment_count {
            let payload = store.get(i)?;
            if payload.len() != info.segment_bytes as usize {
                return None;
            }
            data.extend_from_slice(payload);
        }
        Some(MediaFile {
            info,
            data: Bytes::from(data),
        })
    }

    /// The file's metadata.
    pub fn info(&self) -> &MediaInfo {
        &self.info
    }

    /// Segment `index` as an owned [`Segment`] whose payload is an O(1)
    /// shared view into the file's single allocation — no payload bytes
    /// are copied, however large the segment.
    ///
    /// # Examples
    ///
    /// ```
    /// use p2ps_media::{MediaFile, MediaInfo};
    /// use p2ps_core::assignment::SegmentDuration;
    ///
    /// let info = MediaInfo::new("demo", 4, SegmentDuration::from_millis(250), 1_024);
    /// let file = MediaFile::synthesize(info);
    /// let a = file.segment(2);
    /// let b = file.segment(2);
    /// // Both segments view the same bytes of the same allocation.
    /// assert_eq!(a.payload().as_ptr(), b.payload().as_ptr());
    /// assert_eq!(a.payload().len(), 1_024);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `index >= segment_count`.
    pub fn segment(&self, index: u64) -> Segment {
        Segment::new(index, self.data.slice(self.payload_range(index)))
    }

    fn payload_range(&self, index: u64) -> std::ops::Range<usize> {
        assert!(
            index < self.info.segment_count,
            "segment index out of range"
        );
        let sz = self.info.segment_bytes as usize;
        let start = index as usize * sz;
        start..start + sz
    }

    /// Iterates over all segments in order.
    pub fn iter(&self) -> impl Iterator<Item = Segment> + '_ {
        (0..self.info.segment_count).map(|i| self.segment(i))
    }

    /// Verifies that `segment` carries exactly the payload this file would
    /// produce for its index.
    pub fn verify(&self, segment: &Segment) -> bool {
        segment.index() < self.info.segment_count
            && self.data[self.payload_range(segment.index())] == segment.payload()[..]
    }
}

/// Deterministic per-segment payload appended to `out`: a keyed xorshift
/// stream seeded from the file name and segment index.
fn synthesize_payload_into(info: &MediaInfo, index: u64, out: &mut Vec<u8>) {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in info.name.as_bytes() {
        seed = (seed ^ *b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    seed ^= index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    if seed == 0 {
        seed = 1;
    }
    let target = out.len() + info.segment_bytes as usize;
    let mut x = seed;
    while out.len() < target {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let need = target - out.len();
        out.extend_from_slice(&x.to_le_bytes()[..need.min(8)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> MediaInfo {
        MediaInfo::new("test", 8, SegmentDuration::from_millis(100), 256)
    }

    #[test]
    fn metadata_accessors() {
        let i = info();
        assert_eq!(i.name(), "test");
        assert_eq!(i.segment_count(), 8);
        assert_eq!(i.segment_bytes(), 256);
        assert_eq!(i.duration(), std::time::Duration::from_millis(800));
        assert_eq!(i.total_bytes(), 2048);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_file_panics() {
        let _ = MediaInfo::new("x", 0, SegmentDuration::from_millis(1), 1);
    }

    #[test]
    #[should_panic(expected = "carry payload")]
    fn zero_byte_segments_panic() {
        let _ = MediaInfo::new("x", 1, SegmentDuration::from_millis(1), 0);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = MediaFile::synthesize(info());
        let b = MediaFile::synthesize(info());
        assert_eq!(a, b);
        for i in 0..8 {
            assert_eq!(a.segment(i), b.segment(i));
        }
    }

    #[test]
    fn different_files_differ() {
        let a = MediaFile::synthesize(info());
        let other = MediaInfo::new("other", 8, SegmentDuration::from_millis(100), 256);
        let b = MediaFile::synthesize(other);
        assert_ne!(a.segment(0).payload(), b.segment(0).payload());
    }

    #[test]
    fn segments_differ_from_each_other() {
        let f = MediaFile::synthesize(info());
        assert_ne!(f.segment(0).payload(), f.segment(1).payload());
    }

    #[test]
    fn verify_accepts_own_segments_and_rejects_forgeries() {
        let f = MediaFile::synthesize(info());
        let s = f.segment(5);
        assert!(f.verify(&s));
        let forged = Segment::new(5, Bytes::from(vec![0u8; 256]));
        assert!(!f.verify(&forged));
        let out_of_range = Segment::new(99, s.payload().clone());
        assert!(!f.verify(&out_of_range));
    }

    #[test]
    fn iter_yields_all_segments_in_order() {
        let f = MediaFile::synthesize(info());
        let indices: Vec<u64> = f.iter().map(|s| s.index()).collect();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn from_store_round_trips() {
        use crate::SegmentStore;
        let f = MediaFile::synthesize(info());
        let mut store = SegmentStore::new(8);
        for s in f.iter() {
            store.insert(s);
        }
        let rebuilt = MediaFile::from_store(info(), &store).unwrap();
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn from_store_rejects_incomplete_or_corrupt() {
        use crate::SegmentStore;
        let f = MediaFile::synthesize(info());
        let mut store = SegmentStore::new(8);
        for s in f.iter().take(7) {
            store.insert(s);
        }
        assert!(MediaFile::from_store(info(), &store).is_none());
        // wrong-size payload
        store.insert(Segment::new(7, Bytes::from_static(b"short")));
        assert!(MediaFile::from_store(info(), &store).is_none());
        // wrong expected count
        let empty = SegmentStore::new(9);
        assert!(MediaFile::from_store(info(), &empty).is_none());
    }

    #[test]
    fn segments_are_views_not_copies() {
        // The zero-copy contract: every segment (and every clone of the
        // file) points into the file's single allocation.
        let f = MediaFile::synthesize(info());
        let base = f.data.as_ptr();
        for i in 0..8 {
            let s = f.segment(i);
            assert_eq!(
                s.payload().as_ptr(),
                base.wrapping_add(i as usize * 256),
                "segment {i} must be a view into the file allocation"
            );
            let copy = s.clone();
            assert_eq!(copy.payload().as_ptr(), s.payload().as_ptr());
        }
        let snapshot = f.clone();
        assert_eq!(snapshot.data.as_ptr(), base, "cloning the file is O(1)");
    }

    #[test]
    fn payload_sizes_are_exact() {
        let odd = MediaInfo::new("odd", 2, SegmentDuration::from_millis(1), 13);
        let f = MediaFile::synthesize(odd);
        assert_eq!(f.segment(0).payload().len(), 13);
        assert_eq!(f.segment(1).payload().len(), 13);
    }
}
