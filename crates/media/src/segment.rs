//! Owned segments and per-peer segment stores.

use std::collections::BTreeMap;

use bytes::Bytes;

/// One media segment: its index in the file plus its payload bytes.
///
/// Payloads are [`Bytes`], so cloning a segment is cheap (reference
/// counted) — suppliers can hand the same payload to many sessions.
///
/// # Examples
///
/// ```
/// use p2ps_media::Segment;
/// use bytes::Bytes;
///
/// let s = Segment::new(7, Bytes::from_static(b"payload"));
/// assert_eq!(s.index(), 7);
/// assert_eq!(&s.payload()[..], b"payload");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    index: u64,
    payload: Bytes,
}

impl Segment {
    /// Creates a segment.
    pub fn new(index: u64, payload: Bytes) -> Self {
        Segment { index, payload }
    }

    /// The segment's index within the media file.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The payload bytes.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Consumes the segment, returning its payload.
    pub fn into_payload(self) -> Bytes {
        self.payload
    }
}

/// A peer's store of received media segments.
///
/// Requesting peers fill the store during a streaming session ("playback
/// *and store*", paper §1) and later serve from it as suppliers. The store
/// tracks which prefix of the file is complete, which is what a peer must
/// know before re-serving the file.
///
/// # Examples
///
/// ```
/// use p2ps_media::{Segment, SegmentStore};
/// use bytes::Bytes;
///
/// let mut store = SegmentStore::new(3);
/// store.insert(Segment::new(1, Bytes::from_static(b"b")));
/// assert!(!store.is_complete());
/// store.insert(Segment::new(0, Bytes::from_static(b"a")));
/// store.insert(Segment::new(2, Bytes::from_static(b"c")));
/// assert!(store.is_complete());
/// assert_eq!(store.contiguous_prefix(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStore {
    expected: u64,
    segments: BTreeMap<u64, Bytes>,
}

impl SegmentStore {
    /// Creates an empty store expecting `expected` segments.
    pub fn new(expected: u64) -> Self {
        SegmentStore {
            expected,
            segments: BTreeMap::new(),
        }
    }

    /// Number of segments the complete file has.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Inserts a segment; returns the previous payload if the segment was
    /// already present (duplicate delivery).
    pub fn insert(&mut self, segment: Segment) -> Option<Bytes> {
        self.segments.insert(segment.index, segment.payload)
    }

    /// The payload of segment `index`, if received.
    pub fn get(&self, index: u64) -> Option<&Bytes> {
        self.segments.get(&index)
    }

    /// Whether segment `index` has been received.
    pub fn contains(&self, index: u64) -> bool {
        self.segments.contains_key(&index)
    }

    /// Number of distinct segments received.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether no segments have been received.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Whether every expected segment has been received.
    pub fn is_complete(&self) -> bool {
        self.segments.len() as u64 == self.expected
    }

    /// Length of the complete prefix: the largest `n` such that segments
    /// `0..n` are all present.
    pub fn contiguous_prefix(&self) -> u64 {
        let mut n = 0;
        for (&idx, _) in self.segments.iter() {
            if idx == n {
                n += 1;
            } else if idx > n {
                break;
            }
        }
        n
    }

    /// Iterates over `(index, payload)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Bytes)> + '_ {
        self.segments.iter().map(|(&i, b)| (i, b))
    }
}

impl Extend<Segment> for SegmentStore {
    fn extend<T: IntoIterator<Item = Segment>>(&mut self, iter: T) {
        for s in iter {
            self.insert(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(i: u64) -> Segment {
        Segment::new(i, Bytes::from(vec![i as u8; 4]))
    }

    #[test]
    fn segment_accessors() {
        let s = seg(5);
        assert_eq!(s.index(), 5);
        assert_eq!(s.payload().len(), 4);
        let p = s.clone().into_payload();
        assert_eq!(p, *s.payload());
    }

    #[test]
    fn insert_get_contains() {
        let mut store = SegmentStore::new(10);
        assert!(store.is_empty());
        assert_eq!(store.insert(seg(3)), None);
        assert!(store.contains(3));
        assert!(!store.contains(4));
        assert_eq!(store.get(3).unwrap().len(), 4);
        assert_eq!(store.len(), 1);
        assert_eq!(store.expected(), 10);
    }

    #[test]
    fn duplicate_insert_returns_previous() {
        let mut store = SegmentStore::new(10);
        store.insert(seg(0));
        let prev = store.insert(Segment::new(0, Bytes::from_static(b"new")));
        assert!(prev.is_some());
        assert_eq!(&store.get(0).unwrap()[..], b"new");
    }

    #[test]
    fn contiguous_prefix_tracks_gaps() {
        let mut store = SegmentStore::new(5);
        assert_eq!(store.contiguous_prefix(), 0);
        store.insert(seg(0));
        store.insert(seg(2));
        assert_eq!(store.contiguous_prefix(), 1);
        store.insert(seg(1));
        assert_eq!(store.contiguous_prefix(), 3);
        store.extend([seg(3), seg(4)]);
        assert_eq!(store.contiguous_prefix(), 5);
        assert!(store.is_complete());
    }

    #[test]
    fn iteration_is_index_ordered() {
        let mut store = SegmentStore::new(3);
        store.extend([seg(2), seg(0), seg(1)]);
        let order: Vec<u64> = store.iter().map(|(i, _)| i).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
