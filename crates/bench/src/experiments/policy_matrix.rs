//! Policy × VoD-scenario matrix — the comparison the two PAPERS.md
//! peer-selection papers run against `OTSp2p`.
//!
//! Rows are selection policies (the paper's §3 optimal assignment plus
//! BitTorrent-style baselines), columns are VoD scenarios (steady state,
//! mid-stream seek, early supplier departure, partial-file suppliers,
//! flash crowd). The headline cell metric is the in-time startup ratio:
//! the fraction of sessions whose startup window arrives within the
//! Theorem-1 budget `n·δt` (stretched by the flash-crowd load).

use p2ps_sim::{CellMetric, ScenarioConfig, ScenarioMatrix};

use crate::{Harness, Scale};

/// Regenerates the policy comparison matrix.
pub fn run(harness: &mut Harness) {
    println!("=== Policy × scenario matrix: OTSp2p vs BitTorrent-style baselines ===");
    let config = match harness.scale() {
        Scale::Paper => ScenarioConfig {
            sessions: 256,
            total_segments: 128,
            startup_window: 8,
        },
        Scale::Quick => ScenarioConfig::default(),
    };
    let mut matrix = ScenarioMatrix::standard(crate::harness::BASE_SEED);
    matrix.config(config);
    let started = std::time::Instant::now();
    let report = matrix.run();
    eprintln!("  [policy_matrix] simulated in {:.2?}", started.elapsed());

    let metrics = [
        CellMetric::InTimeStartupRatio,
        CellMetric::MeanStartupSlots,
        CellMetric::OnTimeRatio,
        CellMetric::CompletionRatio,
    ];
    let mut text = String::new();
    for metric in metrics {
        let table = report.table(metric);
        println!("\n{table}");
        text.push_str(&table.render());
        text.push('\n');
        harness.write_table_csv(&format!("policy_matrix_{}", metric.name()), &table);
    }
    harness.write_text("policy_matrix", &text);

    let opt = report
        .cell("otsp2p", "steady")
        .expect("matrix always has the otsp2p × steady cell");
    let rnd = report
        .cell("random", "steady")
        .expect("matrix always has the random × steady cell");
    println!(
        "steady-state in-time startups: otsp2p {:.3} vs random {:.3}",
        opt.in_time_startup_ratio(),
        rnd.in_time_startup_ratio()
    );
}
