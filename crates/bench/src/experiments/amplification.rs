//! Capacity-amplification study (beyond the paper's 50,100 peers).
//!
//! The compact sharded engine ([`p2ps_sim::AmpEngine`]) runs the
//! paper's admission model over populations the original evaluation
//! could not touch: the headline question is **time to N-fold serving
//! capacity** — how long a flash crowd or a steady Poisson stream takes
//! to amplify the seed capacity 2×, 8×, 32× — and how supplier churn
//! bends those curves. One `u64` seed pins every run bit-for-bit.

use p2ps_metrics::{eng, Table, TimeSeries};
use p2ps_sim::{AmpConfig, AmpConfigBuilder, AmpEngine, AmpReport, ArrivalProcess};

use crate::harness::BASE_SEED;
use crate::{Harness, Scale};

/// One grid cell: an arrival process × a supplier-lifetime bound.
struct Cell {
    label: &'static str,
    process: ArrivalProcess,
    lifetime_secs: u32,
}

fn grid() -> Vec<Cell> {
    vec![
        Cell {
            label: "poisson",
            process: ArrivalProcess::Poisson,
            lifetime_secs: 0,
        },
        Cell {
            label: "poisson-churn-6h",
            process: ArrivalProcess::Poisson,
            lifetime_secs: 6 * 3_600,
        },
        Cell {
            label: "flash-crowd",
            process: ArrivalProcess::flash_crowd(),
            lifetime_secs: 0,
        },
        Cell {
            label: "flash-crowd-churn-6h",
            process: ArrivalProcess::flash_crowd(),
            lifetime_secs: 6 * 3_600,
        },
    ]
}

/// The population at each harness scale. `Paper` here means the study's
/// own headline — one million requesters — not the original paper's.
fn base_config(scale: Scale) -> AmpConfigBuilder {
    let mut builder = AmpConfig::builder();
    match scale {
        Scale::Paper => builder
            .requesting_peers(1_000_000)
            .seed_suppliers(512)
            .catalog_items(64)
            .shards(64),
        Scale::Quick => builder
            .requesting_peers(50_000)
            .seed_suppliers(128)
            .catalog_items(16)
            .shards(16),
    };
    builder
        .arrival_window_secs(3_600)
        .horizon_secs(6 * 3_600)
        .epoch_secs(60)
        .threads(4);
    builder
}

fn capacity_series(label: &str, report: &AmpReport) -> TimeSeries {
    let mut series = TimeSeries::new(label);
    for &(t, raw) in &report.capacity_curve {
        series.push(
            f64::from(t) / 3_600.0,
            raw as f64 / f64::from(p2ps_core::Bandwidth::FULL_RATE.raw()),
        );
    }
    series
}

fn fold_cell(report: &AmpReport, factor: u64) -> String {
    match report.time_to_fold(factor) {
        Some(secs) => format!("{:.2}h", f64::from(secs) / 3_600.0),
        None => "-".to_owned(),
    }
}

/// Runs the amplification grid and writes curves + a summary table.
pub fn run(harness: &mut Harness) {
    println!("=== Amplification: time to N-fold capacity at scale ===");
    let mut table = Table::new([
        "scenario",
        "peers",
        "amplification",
        "t to 2x",
        "t to 8x",
        "t to 32x",
        "admission %",
        "events/sec",
    ]);
    let mut curves = Vec::new();
    for cell in grid() {
        let mut builder = base_config(harness.scale());
        builder
            .process(cell.process.clone())
            .supplier_lifetime_secs(cell.lifetime_secs);
        let config = builder
            .build()
            .expect("amplification grid configs are valid");
        let mut engine = AmpEngine::new(config, BASE_SEED);
        let report = engine.run();
        eprintln!(
            "  [amplification/{}] {} peers in {:.2?} ({} events/sec)",
            cell.label,
            eng(f64::from(report.peers)).trim(),
            report.elapsed(),
            eng(report.events_per_sec()).trim(),
        );
        table.row([
            cell.label.to_owned(),
            eng(f64::from(report.peers)).trim().to_owned(),
            format!("{:.1}x", report.amplification()),
            fold_cell(&report, 2),
            fold_cell(&report, 8),
            fold_cell(&report, 32),
            format!("{:.1}", report.admission_rate() * 100.0),
            eng(report.events_per_sec()).trim().to_owned(),
        ]);
        curves.push(capacity_series(cell.label, &report));
    }
    {
        let refs: Vec<&TimeSeries> = curves.iter().collect();
        harness.plot("Amplification — serving capacity (R0) vs time", &refs);
        harness.write_csv("amplification", "hour", &refs);
    }
    println!("{table}");
    harness.write_text("amplification_table", &table.to_csv());
    println!(
        "(capacity self-amplifies until arrivals drain; churn caps the plateau where\n attrition matches conversion — the N-fold crossing times are the headline)\n"
    );
}
