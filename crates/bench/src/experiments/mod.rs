//! One module per paper table/figure. Each `run` function regenerates the
//! corresponding result on a [`Harness`](crate::Harness).

pub mod ablation;
pub mod amplification;
pub mod churn;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod policy_matrix;
pub mod table1;

/// Runs every experiment in paper order.
pub fn run_all(harness: &mut crate::Harness) {
    fig1::run(harness);
    fig3::run(harness);
    fig4::run(harness);
    fig5::run(harness);
    fig6::run(harness);
    table1::run(harness);
    fig7::run(harness);
    fig8::run(harness);
    fig9::run(harness);
    ablation::run(harness);
    churn::run(harness);
    policy_matrix::run(harness);
    amplification::run(harness);
}
