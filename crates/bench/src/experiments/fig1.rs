//! Figure 1 — different media data assignments lead to different
//! buffering delays.
//!
//! The paper's example session: suppliers of classes 2, 3, 4 and 4
//! (offers `R0/2 + R0/4 + R0/8 + R0/8 = R0`). Assignment I (contiguous
//! blocks) needs `5·δt` of buffering; Assignment II (`OTSp2p`) needs the
//! optimal `4·δt`.

use p2ps_core::assignment::{contiguous, otsp2p, round_robin, verify, Assignment};
use p2ps_core::PeerClass;
use p2ps_metrics::Table;

use crate::Harness;

/// Regenerates Figure 1 (plus the round-robin ablation and the
/// brute-force optimum).
pub fn run(harness: &mut Harness) {
    println!("=== Figure 1: media data assignment vs buffering delay ===");
    let classes: Vec<PeerClass> = [2u8, 3, 4, 4]
        .into_iter()
        .map(|k| PeerClass::new(k).expect("valid class"))
        .collect();

    let strategies: Vec<(&str, Assignment)> = vec![
        ("Assignment I (contiguous)", contiguous(&classes).unwrap()),
        ("Assignment II (OTSp2p)", otsp2p(&classes).unwrap()),
        ("round-robin (ablation)", round_robin(&classes).unwrap()),
    ];
    let optimum = verify::exhaustive_min_delay(&classes).unwrap();

    let mut table = Table::new(["strategy", "delay (×δt)", "paper", "optimal (brute force)"]);
    for (name, a) in &strategies {
        let paper = match *name {
            "Assignment I (contiguous)" => "5",
            "Assignment II (OTSp2p)" => "4",
            _ => "-",
        };
        table.row([
            (*name).to_owned(),
            a.buffering_delay_slots().to_string(),
            paper.to_owned(),
            optimum.to_string(),
        ]);
    }
    println!("{table}");

    for (name, a) in &strategies {
        println!("{name}:\n{a}");
    }
    harness.write_text(
        "fig1",
        &format!(
            "{}\n{}",
            table.to_csv(),
            strategies
                .iter()
                .map(|(n, a)| format!("{n}:\n{a}"))
                .collect::<Vec<_>>()
                .join("\n")
        ),
    );

    assert_eq!(
        strategies[1].1.buffering_delay_slots(),
        optimum,
        "OTSp2p must match the brute-force optimum on the Figure-1 session"
    );
}
