//! Figure 4 — system capacity amplification, `DACp2p` vs `NDACp2p`.
//!
//! The paper plots total system capacity over 144 hours under arrival
//! patterns 2 and 4; we also run patterns 1 and 3 for completeness.

use p2ps_core::admission::Protocol;
use p2ps_metrics::TimeSeries;
use p2ps_sim::ArrivalPattern;

use crate::Harness;

fn renamed(series: &TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    out.extend(series.iter());
    out
}

/// Regenerates Figure 4 (plus patterns 1 and 3).
pub fn run(harness: &mut Harness) {
    println!("=== Figure 4: capacity amplification (DACp2p vs NDACp2p) ===");
    for pattern in [
        ArrivalPattern::Ramp,
        ArrivalPattern::PeriodicBursts,
        ArrivalPattern::Constant,
        ArrivalPattern::InitialBurst,
    ] {
        let n = pattern.paper_number().expect("paper pattern");
        let dac = harness.run("fig4", pattern.clone(), Protocol::Dac, |_| {});
        let ndac = harness.run("fig4", pattern.clone(), Protocol::Ndac, |_| {});
        let dac_series = renamed(dac.capacity(), "DAC_p2p");
        let ndac_series = renamed(ndac.capacity(), "NDAC_p2p");
        harness.plot(
            &format!("Fig 4 — total system capacity, arrival pattern {n}"),
            &[&dac_series, &ndac_series],
        );
        harness.write_csv(
            &format!("fig4_pattern{n}"),
            "hour",
            &[&dac_series, &ndac_series],
        );
        let max = dac.config().expected_max_capacity();
        println!(
            "pattern {n}: final capacity DAC={:.0} ({:.1}% of max {max:.0}), NDAC={:.0} ({:.1}%)",
            dac.final_capacity(),
            100.0 * dac.final_capacity() / max,
            ndac.final_capacity(),
            100.0 * ndac.final_capacity() / max,
        );
        let mid = dac.config().duration_secs() as f64 / 3_600.0 / 6.0;
        println!(
            "pattern {n}: capacity at {mid:.0}h  DAC={:.0}  NDAC={:.0}  (paper: DAC grows significantly faster)\n",
            dac.capacity().value_at(mid).unwrap_or(0.0),
            ndac.capacity().value_at(mid).unwrap_or(0.0),
        );
    }
}
