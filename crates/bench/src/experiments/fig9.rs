//! Figure 9 — impact of the backoff exponential factor `E_bkf` on the
//! overall request admission rate, under arrival pattern 2.
//!
//! The paper's counter-intuitive finding: in a *self-growing* system,
//! aggressive retries (constant backoff, `E_bkf = 1`) beat exponential
//! backoff, because early admissions amplify capacity for everyone.

use p2ps_core::admission::Protocol;
use p2ps_metrics::TimeSeries;
use p2ps_sim::ArrivalPattern;

use crate::Harness;

fn renamed(series: &TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    out.extend(series.iter());
    out
}

/// Regenerates Figure 9.
pub fn run(harness: &mut Harness) {
    println!("=== Figure 9: impact of E_bkf on overall admission rate ===");
    let mut curves = Vec::new();
    for factor in [1u32, 2, 3, 4] {
        let report = harness.run(
            &format!("fig9-e{factor}"),
            ArrivalPattern::Ramp,
            Protocol::Dac,
            |b| {
                b.e_bkf(factor);
            },
        );
        curves.push((
            factor,
            renamed(
                report.overall_admission_rate(),
                &format!("E_bkf = {factor}"),
            ),
            report,
        ));
    }
    {
        let refs: Vec<&TimeSeries> = curves.iter().map(|(_, s, _)| s).collect();
        harness.plot(
            "Fig 9 — accumulative overall admission rate (%) vs E_bkf (pattern 2)",
            &refs,
        );
        harness.write_csv("fig9", "hour", &refs);
    }
    for (factor, _, report) in &curves {
        println!(
            "E_bkf = {factor}: final overall admission rate {:.1}% ({} attempts)",
            report.final_overall_admission_rate(),
            report.attempts()
        );
    }
    println!("(paper: higher E_bkf lowers the admission rate; constant backoff wins)\n");
}
