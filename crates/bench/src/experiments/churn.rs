//! Churn study (beyond the paper): what happens when suppliers *leave*?
//!
//! The paper's model keeps every converted supplier forever. Real peers
//! quit. This experiment bounds each supplier's lifetime and compares
//! capacity and admission under `DACp2p` vs `NDACp2p` — the self-growing
//! property now has to outrun attrition.

use p2ps_core::admission::Protocol;
use p2ps_metrics::{Table, TimeSeries};
use p2ps_sim::ArrivalPattern;

use crate::Harness;

fn renamed(series: &TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    out.extend(series.iter());
    out
}

/// Runs the churn grid: supplier lifetimes of 6 h, 24 h and ∞.
pub fn run(harness: &mut Harness) {
    println!("=== Churn: bounded supplier lifetimes (pattern 2) ===");
    let lifetimes: [(&str, Option<u64>); 3] =
        [("6h", Some(6)), ("24h", Some(24)), ("forever", None)];

    let mut table = Table::new([
        "lifetime",
        "protocol",
        "peak capacity",
        "final capacity",
        "overall admission %",
    ]);
    let mut curves = Vec::new();
    for (label, hours) in lifetimes {
        for protocol in [Protocol::Dac, Protocol::Ndac] {
            let report = harness.run(
                &format!("churn-{label}"),
                ArrivalPattern::Ramp,
                protocol,
                |b| {
                    if let Some(h) = hours {
                        b.supplier_lifetime_hours(h);
                    }
                },
            );
            let peak = report
                .capacity()
                .iter()
                .map(|(_, v)| v)
                .fold(0.0f64, f64::max);
            table.row([
                label.to_owned(),
                protocol.to_string(),
                format!("{peak:.0}"),
                format!("{:.0}", report.final_capacity()),
                format!("{:.1}", report.final_overall_admission_rate()),
            ]);
            if protocol == Protocol::Dac {
                curves.push(renamed(report.capacity(), &format!("DAC lifetime {label}")));
            }
        }
    }
    {
        let refs: Vec<&TimeSeries> = curves.iter().collect();
        harness.plot("Churn — DACp2p capacity under bounded lifetimes", &refs);
        harness.write_csv("churn", "hour", &refs);
    }
    println!("{table}");
    harness.write_text("churn_table", &table.to_csv());
    println!(
        "(with bounded lifetimes capacity tracks the arrival rate instead of accumulating;\n differentiation still wins while requests outnumber supply)\n"
    );
}
