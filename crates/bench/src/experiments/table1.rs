//! Table 1 — per-class average number of rejections before admission,
//! `DACp2p` / `NDACp2p`, under arrival patterns 2 and 4.
//!
//! The paper also derives the average waiting time from the rejection
//! count; we report the directly measured waiting time alongside.

use p2ps_core::admission::Protocol;
use p2ps_metrics::Table;
use p2ps_sim::ArrivalPattern;

use crate::Harness;

/// Paper values for comparison: `(pattern 2 DAC/NDAC, pattern 4 DAC/NDAC)`
/// per class.
const PAPER: [[f64; 4]; 4] = [
    // class 1..4: [p2 dac, p2 ndac, p4 dac, p4 ndac]
    [1.77, 3.73, 1.93, 3.45],
    [1.93, 3.75, 2.19, 3.46],
    [2.40, 3.72, 2.59, 3.42],
    [3.15, 3.74, 3.16, 3.46],
];

/// Regenerates Table 1.
pub fn run(harness: &mut Harness) {
    println!("=== Table 1: average rejections before admission ===");
    let p2_dac = harness.run("fig4", ArrivalPattern::Ramp, Protocol::Dac, |_| {});
    let p2_ndac = harness.run("fig4", ArrivalPattern::Ramp, Protocol::Ndac, |_| {});
    let p4_dac = harness.run(
        "fig4",
        ArrivalPattern::PeriodicBursts,
        Protocol::Dac,
        |_| {},
    );
    let p4_ndac = harness.run(
        "fig4",
        ArrivalPattern::PeriodicBursts,
        Protocol::Ndac,
        |_| {},
    );

    let mut table = Table::new([
        "Avg. rejections",
        "Pattern 2 (ours)",
        "Pattern 2 (paper)",
        "Pattern 4 (ours)",
        "Pattern 4 (paper)",
    ]);
    for k in 1..=4u8 {
        let i = (k - 1) as usize;
        table.row([
            format!("Class {k}"),
            format!(
                "{:.2}/{:.2}",
                p2_dac.avg_rejections(k).unwrap_or(f64::NAN),
                p2_ndac.avg_rejections(k).unwrap_or(f64::NAN)
            ),
            format!("{:.2}/{:.2}", PAPER[i][0], PAPER[i][1]),
            format!(
                "{:.2}/{:.2}",
                p4_dac.avg_rejections(k).unwrap_or(f64::NAN),
                p4_ndac.avg_rejections(k).unwrap_or(f64::NAN)
            ),
            format!("{:.2}/{:.2}", PAPER[i][2], PAPER[i][3]),
        ]);
    }
    println!("{table}");
    println!("(cells are DACp2p/NDACp2p; paper columns are Table 1 of the paper)\n");

    let mut waiting = Table::new([
        "Avg. waiting (min)",
        "Pattern 2 DAC",
        "Pattern 2 NDAC",
        "Pattern 4 DAC",
        "Pattern 4 NDAC",
    ]);
    for k in 1..=4u8 {
        waiting.row([
            format!("Class {k}"),
            format!(
                "{:.1}",
                p2_dac.avg_waiting_secs(k).unwrap_or(f64::NAN) / 60.0
            ),
            format!(
                "{:.1}",
                p2_ndac.avg_waiting_secs(k).unwrap_or(f64::NAN) / 60.0
            ),
            format!(
                "{:.1}",
                p4_dac.avg_waiting_secs(k).unwrap_or(f64::NAN) / 60.0
            ),
            format!(
                "{:.1}",
                p4_ndac.avg_waiting_secs(k).unwrap_or(f64::NAN) / 60.0
            ),
        ]);
    }
    println!("{waiting}");

    // The paper derives average waiting from the average rejection count
    // via Σ T_bkf·E_bkf^(i-1); compare that formula against the directly
    // measured waiting times.
    let backoff = p2ps_core::admission::BackoffPolicy::new(
        p2_dac.config().t_bkf_secs(),
        p2_dac.config().e_bkf(),
    );
    let mut formula = Table::new([
        "Waiting (min), pattern 2 DAC",
        "measured",
        "paper formula from avg rejections",
    ]);
    for k in 1..=4u8 {
        let rejections = p2_dac.avg_rejections(k).unwrap_or(0.0);
        let predicted = backoff.total_wait_after(rejections.round() as u32) as f64 / 60.0;
        formula.row([
            format!("Class {k}"),
            format!(
                "{:.1}",
                p2_dac.avg_waiting_secs(k).unwrap_or(f64::NAN) / 60.0
            ),
            format!("{predicted:.1}"),
        ]);
    }
    println!("{formula}");

    let mut tail = Table::new(["Waiting (min), pattern 2 DAC", "p50", "p90", "p99"]);
    for k in 1..=4u8 {
        tail.row([
            format!("Class {k}"),
            format!(
                "{:.1}",
                p2_dac.waiting_quantile_secs(k, 0.50).unwrap_or(f64::NAN) / 60.0
            ),
            format!(
                "{:.1}",
                p2_dac.waiting_quantile_secs(k, 0.90).unwrap_or(f64::NAN) / 60.0
            ),
            format!(
                "{:.1}",
                p2_dac.waiting_quantile_secs(k, 0.99).unwrap_or(f64::NAN) / 60.0
            ),
        ]);
    }
    println!("{tail}");
    println!("(tail latencies beyond the paper: exponential backoff makes the p99 blow up for low classes)\n");

    harness.write_text(
        "table1",
        &format!("{}\n{}", table.to_csv(), waiting.to_csv()),
    );
}
