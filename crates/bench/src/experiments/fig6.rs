//! Figure 6 — per-class accumulative average buffering delay (in units
//! of `δt`) under arrival pattern 2.
//!
//! Theorem 1 makes a session's buffering delay `n·δt` for `n` suppliers;
//! under `DACp2p` higher-class requesters tend to be served by
//! higher-class (fewer) suppliers, so their delay is lower, and every
//! class improves relative to `NDACp2p`.

use p2ps_core::admission::Protocol;
use p2ps_sim::ArrivalPattern;

use crate::Harness;

/// Regenerates Figure 6.
pub fn run(harness: &mut Harness) {
    println!("=== Figure 6: per-class accumulative average buffering delay (pattern 2) ===");
    for protocol in [Protocol::Dac, Protocol::Ndac] {
        let report = harness.run("fig4", ArrivalPattern::Ramp, protocol, |_| {});
        let delay = report.buffering_delay();
        let series: Vec<_> = (1..=4).map(|k| delay.class(k)).collect();
        harness.plot(
            &format!("Fig 6 — accumulative average buffering delay (×δt), {protocol}"),
            &series,
        );
        harness.write_csv(&format!("fig6_{}", protocol.name()), "hour", &series);
        let finals: Vec<String> = (1..=4)
            .map(|k| {
                format!(
                    "class {k}: {:.2}·δt",
                    report.avg_delay_slots(k).unwrap_or(0.0)
                )
            })
            .collect();
        println!("{protocol} whole-run averages: {}\n", finals.join(", "));
    }

    let dac = harness.run("fig4", ArrivalPattern::Ramp, Protocol::Dac, |_| {});
    let ndac = harness.run("fig4", ArrivalPattern::Ramp, Protocol::Ndac, |_| {});
    for k in 1..=4u8 {
        let d = dac.avg_delay_slots(k).unwrap_or(f64::NAN);
        let n = ndac.avg_delay_slots(k).unwrap_or(f64::NAN);
        println!(
            "class {k}: DAC {d:.2}·δt vs NDAC {n:.2}·δt ({})",
            if d <= n {
                "DAC lower, as in the paper"
            } else {
                "NDAC lower (!)"
            }
        );
    }
}
