//! Figure 5 — per-class accumulative request admission rate under
//! arrival pattern 2, `DACp2p` (differentiated) vs `NDACp2p` (flat).

use p2ps_core::admission::Protocol;
use p2ps_sim::ArrivalPattern;

use crate::Harness;

/// Regenerates Figure 5.
pub fn run(harness: &mut Harness) {
    println!("=== Figure 5: per-class accumulative admission rate (pattern 2) ===");
    for protocol in [Protocol::Dac, Protocol::Ndac] {
        let report = harness.run("fig4", ArrivalPattern::Ramp, protocol, |_| {});
        let rate = report.admission_rate();
        let series: Vec<_> = (1..=4).map(|k| rate.class(k)).collect();
        harness.plot(
            &format!("Fig 5 — accumulative admission rate (%), {protocol}"),
            &series,
        );
        harness.write_csv(&format!("fig5_{}", protocol.name()), "hour", &series);
        let finals: Vec<String> = (1..=4)
            .map(|k| {
                format!(
                    "class {k}: {:.1}%",
                    rate.class(k).last().map(|(_, v)| v).unwrap_or(0.0)
                )
            })
            .collect();
        println!("{protocol} final rates: {}\n", finals.join(", "));
    }

    // Differentiation check at an early hour: under DAC higher classes
    // must be admitted at a higher rate than lower classes.
    let dac = harness.run("fig4", ArrivalPattern::Ramp, Protocol::Dac, |_| {});
    let early = 24.0;
    let at = |k: u8| dac.admission_rate().class(k).value_at(early).unwrap_or(0.0);
    println!(
        "DAC admission rate at {early}h by class: {:.1} / {:.1} / {:.1} / {:.1} (paper: monotone in class)",
        at(1), at(2), at(3), at(4)
    );
}
