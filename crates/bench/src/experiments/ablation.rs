//! Ablation study (beyond the paper): which `DACp2p` mechanism buys the
//! capacity lead over `NDACp2p`?
//!
//! `DACp2p` differs from the baseline through three interacting
//! mechanisms: (1) class-differentiated initial vectors, (2) busy-time
//! *reminders* that tighten preferences, and (3) relaxation (idle timeout
//! plus the quiet-session step) that loosens them. This experiment
//! disables (2) and (3) individually under arrival pattern 2 and compares
//! capacity amplification.

use p2ps_core::admission::Protocol;
use p2ps_metrics::{Table, TimeSeries};
use p2ps_sim::ArrivalPattern;

use crate::Harness;

fn renamed(series: &TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    out.extend(series.iter());
    out
}

/// Runs the ablation grid.
pub fn run(harness: &mut Harness) {
    println!("=== Ablation: DACp2p mechanisms (pattern 2) ===");
    let variants: Vec<(&str, Protocol, bool, bool)> = vec![
        ("DAC full", Protocol::Dac, true, true),
        ("DAC no-reminders", Protocol::Dac, false, true),
        ("DAC no-session-relax", Protocol::Dac, true, false),
        ("DAC neither", Protocol::Dac, false, false),
        ("NDAC", Protocol::Ndac, true, true),
    ];

    let mut curves = Vec::new();
    for (name, protocol, reminders, relax) in &variants {
        let report = harness.run(
            &format!("ablation-{name}"),
            ArrivalPattern::Ramp,
            *protocol,
            |b| {
                b.reminders(*reminders).session_relax(*relax);
            },
        );
        curves.push((name.to_owned(), renamed(report.capacity(), name), report));
    }

    {
        let refs: Vec<&TimeSeries> = curves.iter().map(|(_, s, _)| s).collect();
        harness.plot("Ablation — capacity amplification by mechanism", &refs);
        harness.write_csv("ablation", "hour", &refs);
    }

    let mut table = Table::new([
        "variant",
        "capacity @24h",
        "capacity @48h",
        "final",
        "overall admission %",
        "class1/class4 rejections",
    ]);
    for (name, series, report) in &curves {
        table.row([
            name.to_string(),
            format!("{:.0}", series.value_at(24.0).unwrap_or(0.0)),
            format!("{:.0}", series.value_at(48.0).unwrap_or(0.0)),
            format!("{:.0}", report.final_capacity()),
            format!("{:.1}", report.final_overall_admission_rate()),
            format!(
                "{:.2}/{:.2}",
                report.avg_rejections(1).unwrap_or(f64::NAN),
                report.avg_rejections(4).unwrap_or(f64::NAN)
            ),
        ]);
    }
    println!("{table}");
    harness.write_text("ablation_table", &table.to_csv());
    println!(
        "(interpretation: the differentiated initial vectors carry most of the early lead;\n reminders keep differentiation alive under load; relaxation prevents long-run starvation)"
    );
}
