//! Figure 8 — impact of the protocol parameters `M` (candidates probed
//! per attempt) and `T_out` (idle relaxation timeout) on capacity
//! amplification, under arrival pattern 2.

use p2ps_core::admission::Protocol;
use p2ps_metrics::TimeSeries;
use p2ps_sim::ArrivalPattern;

use crate::Harness;

fn renamed(series: &TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    out.extend(series.iter());
    out
}

/// Regenerates Figure 8 (a): `M ∈ {4, 8, 16, 32}`.
pub fn run_m(harness: &mut Harness) {
    println!("=== Figure 8(a): impact of M on capacity amplification ===");
    let mut curves = Vec::new();
    for m in [4usize, 8, 16, 32] {
        let report = harness.run(
            &format!("fig8a-m{m}"),
            ArrivalPattern::Ramp,
            Protocol::Dac,
            |b| {
                b.m(m);
            },
        );
        curves.push((m, renamed(report.capacity(), &format!("M = {m}")), report));
    }
    {
        let refs: Vec<&TimeSeries> = curves.iter().map(|(_, s, _)| s).collect();
        harness.plot("Fig 8(a) — capacity vs M (pattern 2, DACp2p)", &refs);
        harness.write_csv("fig8a", "hour", &refs);
    }
    let half = curves[0].2.config().duration_secs() as f64 / 3_600.0 / 2.0;
    for (m, s, _) in &curves {
        println!(
            "M = {m:>2}: capacity at {half:.0}h = {:.0}, final = {:.0}",
            s.value_at(half).unwrap_or(0.0),
            s.last().map(|(_, v)| v).unwrap_or(0.0)
        );
    }
    println!("(paper: M = 4 grows significantly slower; beyond 8 the gains are small)\n");
}

/// Regenerates Figure 8 (b): `T_out ∈ {1, 2, 20, 60, 120} min`.
pub fn run_tout(harness: &mut Harness) {
    println!("=== Figure 8(b): impact of T_out on capacity amplification ===");
    let mut curves = Vec::new();
    for minutes in [1u64, 2, 20, 60, 120] {
        let report = harness.run(
            &format!("fig8b-tout{minutes}"),
            ArrivalPattern::Ramp,
            Protocol::Dac,
            |b| {
                b.t_out_minutes(minutes);
            },
        );
        curves.push((
            minutes,
            renamed(report.capacity(), &format!("T_out = {minutes} min")),
        ));
    }
    {
        let refs: Vec<&TimeSeries> = curves.iter().map(|(_, s)| s).collect();
        harness.plot("Fig 8(b) — capacity vs T_out (pattern 2, DACp2p)", &refs);
        harness.write_csv("fig8b", "hour", &refs);
    }
    for (minutes, s) in &curves {
        println!(
            "T_out = {minutes:>3} min: capacity at 36h = {:.0}, final = {:.0}",
            s.value_at(36.0).unwrap_or(0.0),
            s.last().map(|(_, v)| v).unwrap_or(0.0)
        );
    }
    println!("(paper: T_out should not be too short — early relaxation wastes high-class slots)\n");
}

/// Regenerates both halves of Figure 8.
pub fn run(harness: &mut Harness) {
    run_m(harness);
    run_tout(harness);
}
