//! Figure 3 — different admission decisions lead to different growth of
//! streaming capacity.
//!
//! The schematic example: four supplying peers whose offers sum to exactly
//! `R0` (classes 2, 3, 4, 4 — one session at a time) and three waiting
//! requesting peers: two class-2 and one class-1. Admitting a class-2
//! requester first keeps capacity at 1 for two more rounds; admitting the
//! class-1 requester first doubles capacity after one session so both
//! class-2 requesters are served simultaneously, cutting the average
//! waiting time from `T` to `2T/3`.

use p2ps_core::{Bandwidth, PeerClass};
use p2ps_metrics::Table;

use crate::Harness;

/// One admission timeline: given the order in which waiting requesters
/// are considered, returns `(capacity after each round, per-requester
/// waiting time in units of T)`.
fn timeline(mut waiting: Vec<PeerClass>) -> (Vec<f64>, Vec<(PeerClass, u64)>) {
    // Initial suppliers: classes 2,3,4,4 -> total exactly R0.
    let mut capacity_raw: u64 = [2u8, 3, 4, 4]
        .iter()
        .map(|&k| PeerClass::new(k).unwrap().bandwidth().raw() as u64)
        .sum();
    let full = Bandwidth::FULL_RATE.raw() as u64;
    let mut capacities = vec![capacity_raw as f64 / full as f64];
    let mut waits = Vec::new();
    let mut round: u64 = 0;
    while !waiting.is_empty() {
        // Admit as many waiting requesters (in order) as whole sessions fit.
        let slots = capacity_raw / full;
        let admit: Vec<PeerClass> = waiting
            .drain(..slots.min(waiting.len() as u64) as usize)
            .collect();
        for class in &admit {
            waits.push((*class, round));
        }
        // Sessions run for one show time T; afterwards the admitted peers
        // join the supplier population.
        round += 1;
        for class in &admit {
            capacity_raw += class.bandwidth().raw() as u64;
        }
        capacities.push(capacity_raw as f64 / full as f64);
    }
    (capacities, waits)
}

/// Regenerates the Figure-3 comparison.
pub fn run(harness: &mut Harness) {
    println!("=== Figure 3: admission order vs capacity growth ===");
    let c1 = PeerClass::new(1).unwrap();
    let c2 = PeerClass::new(2).unwrap();

    // Non-differentiated order: the class-2 requesters first.
    let (cap_a, waits_a) = timeline(vec![c2, c2, c1]);
    // Differentiated order: the class-1 requester first.
    let (cap_b, waits_b) = timeline(vec![c1, c2, c2]);

    let avg =
        |w: &[(PeerClass, u64)]| w.iter().map(|&(_, t)| t as f64).sum::<f64>() / w.len() as f64;

    let mut table = Table::new([
        "round (×T)",
        "capacity (admit class-2 first)",
        "capacity (admit class-1 first)",
    ]);
    let rounds = cap_a.len().max(cap_b.len());
    for r in 0..rounds {
        table.row([
            r.to_string(),
            cap_a.get(r).map(|c| format!("{c:.2}")).unwrap_or_default(),
            cap_b.get(r).map(|c| format!("{c:.2}")).unwrap_or_default(),
        ]);
    }
    println!("{table}");
    println!(
        "average waiting time: class-2-first = {:.2}·T, class-1-first = {:.2}·T (paper: T vs 2T/3)\n",
        avg(&waits_a),
        avg(&waits_b)
    );
    harness.write_text(
        "fig3",
        &format!(
            "{}\navg waiting: a={:.4}T b={:.4}T\n",
            table.to_csv(),
            avg(&waits_a),
            avg(&waits_b)
        ),
    );

    // The paper's claims, checked:
    assert_eq!(
        avg(&waits_a),
        1.0,
        "non-differentiated average waiting is T"
    );
    assert!(
        (avg(&waits_b) - 2.0 / 3.0).abs() < 1e-9,
        "differentiated average is 2T/3"
    );
    assert!(
        waits_b.iter().all(|&(_, t)| t <= 1),
        "all admitted by T under differentiation"
    );
}
