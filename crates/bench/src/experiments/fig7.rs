//! Figure 7 — adaptivity of differentiation: the lowest requesting-peer
//! class favored by each class of supplying peers, averaged over 3-hour
//! windows, under the bursty arrival pattern 4.
//!
//! Bursts tighten admission preferences via reminders; quiet stretches
//! relax them via the idle timeout — so the curves should track the
//! arrival rate and converge to 4 (everyone favored) once arrivals stop.

use p2ps_core::admission::Protocol;
use p2ps_sim::ArrivalPattern;

use crate::Harness;

/// Regenerates Figure 7.
pub fn run(harness: &mut Harness) {
    println!("=== Figure 7: lowest favored class per supplier class (pattern 4, DACp2p) ===");
    let report = harness.run(
        "fig4",
        ArrivalPattern::PeriodicBursts,
        Protocol::Dac,
        |_| {},
    );
    let favored = report.lowest_favored();
    let series: Vec<_> = (1..=4).map(|k| favored.class(k)).collect();
    harness.plot(
        "Fig 7 — lowest favored requesting class, by supplier class (3h windows)",
        &series,
    );
    harness.write_csv("fig7", "hour", &series);

    // End state: with no new arrivals and ample capacity, every supplier
    // class relaxes to favoring all classes (value 4).
    for k in 1..=4u8 {
        if let Some((t, v)) = favored.class(k).last() {
            println!("supplier class {k}: final lowest favored class {v:.2} at {t:.1}h (paper: 4)");
        }
    }

    // Early-run differentiation: class-1 suppliers must have favored
    // fewer classes than class-4 suppliers on average over the first day.
    let early_avg = |k: u8| {
        let s = favored.class(k);
        let pts: Vec<f64> = s
            .iter()
            .filter(|(t, _)| *t <= 24.0)
            .map(|(_, v)| v)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    println!(
        "\nmean lowest-favored over first 24h by supplier class: {:.2} / {:.2} / {:.2} / {:.2} (paper: higher classes more selective)",
        early_avg(1),
        early_avg(2),
        early_avg(3),
        early_avg(4)
    );
}
