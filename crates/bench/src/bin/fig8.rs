//! Regenerates the paper's fig8. See `p2ps_bench::experiments::fig8`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig8::run(&mut harness);
}
