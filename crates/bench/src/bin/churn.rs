//! Churn study: bounded supplier lifetimes (beyond the paper).

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::churn::run(&mut harness);
}
