//! Regenerates the paper's fig3. See `p2ps_bench::experiments::fig3`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig3::run(&mut harness);
}
