//! Regenerates the paper's fig6. See `p2ps_bench::experiments::fig6`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig6::run(&mut harness);
}
