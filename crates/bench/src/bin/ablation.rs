//! Ablation study of the DACp2p mechanisms (beyond the paper).

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::ablation::run(&mut harness);
}
