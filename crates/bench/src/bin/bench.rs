//! The committed perf trajectory: `bench snapshot` / `bench compare`.
//!
//! `snapshot` measures a small set of performance-critical metrics and
//! writes them to a JSON baseline (`BENCH_<n>.json`, committed with the
//! PR that changed the numbers); `compare --against <file>` re-measures
//! and fails **loudly** (non-zero exit, per-metric report) on any
//! regression. Two metric kinds keep the gate honest across machines:
//!
//! * **exact** — deterministic counters: simnet trace hashes and event
//!   counts for pinned `(seed, scenario)` runs, and the steady-path
//!   decode allocation count (which must be exactly zero). These are
//!   machine-independent and compare bit-for-bit; any drift is a real
//!   behavior change and must be re-snapshotted deliberately.
//! * **timing** — wall-clock and syscall measurements (pipelined
//!   64-candidate admission round, kernel crossings per session). These
//!   vary with the host, so the gate is generous: a regression is
//!   flagged only past `4× + 250 ms` (wall) or `2×` (syscalls) of the
//!   committed value.
//!
//! ```text
//! cargo run --release -p p2ps-bench --bin bench -- snapshot --out BENCH_10.json
//! cargo run --release -p p2ps-bench --bin bench -- compare --against BENCH_10.json
//! cargo run --release -p p2ps-bench --bin bench -- measure   # print only
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeError, NodeReactor, PeerNode};
use p2ps_proto::{
    read_message, write_message, CandidateRecord, FrameDecoder, FrameEncoder, Message,
};
use p2ps_simnet::ScenarioKind;

/// System allocator wrapper counting every (re)allocation, so the
/// zero-allocation claim is measured in this binary exactly as the
/// dedicated `zero_alloc_decode` test measures it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// How a metric is compared against its committed baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Deterministic counter/digest: must match bit-for-bit.
    Exact,
    /// Wall-clock milliseconds: regression past `4× + 250 ms`.
    TimeMs,
    /// Syscalls per session: regression past `2×`.
    PerSession,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Exact => "exact",
            Kind::TimeMs => "time_ms",
            Kind::PerSession => "per_session",
        }
    }

    fn parse(s: &str) -> Option<Kind> {
        match s {
            "exact" => Some(Kind::Exact),
            "time_ms" => Some(Kind::TimeMs),
            "per_session" => Some(Kind::PerSession),
            _ => None,
        }
    }
}

/// One measured metric. Values are strings so exact metrics (hex
/// digests, integers) never round-trip through floats.
#[derive(Debug, Clone)]
struct Metric {
    name: String,
    kind: Kind,
    value: String,
}

impl Metric {
    fn exact(name: impl Into<String>, value: impl ToString) -> Metric {
        Metric {
            name: name.into(),
            kind: Kind::Exact,
            value: value.to_string(),
        }
    }

    fn timing(name: impl Into<String>, kind: Kind, value: f64) -> Metric {
        Metric {
            name: name.into(),
            kind,
            value: format!("{value:.1}"),
        }
    }
}

/// Simnet runs pinned into the baseline: deterministic by construction,
/// so their digests and counters gate the whole protocol stack (codec,
/// admission fold, driver, policy) against silent behavior drift.
const SIMNET_PINS: &[(u64, ScenarioKind)] = &[
    (7, ScenarioKind::Steady),
    (7, ScenarioKind::Churn),
    (11, ScenarioKind::Loss),
    (5, ScenarioKind::SlowPeer),
    // Admission twice: seed 3 all-grants and streams, seed 5 is denied
    // short of R0 and walks the release/reminder rejection path.
    (3, ScenarioKind::Admission),
    (5, ScenarioKind::Admission),
];

fn simnet_metrics(out: &mut Vec<Metric>) {
    for &(seed, scenario) in SIMNET_PINS {
        let r = p2ps_simnet::run(seed, scenario);
        let base = format!("simnet/{}/seed{}", scenario.name(), seed);
        out.push(Metric::exact(
            format!("{base}/trace_hash"),
            format!("{:016x}", r.trace_hash),
        ));
        out.push(Metric::exact(format!("{base}/events"), r.events));
        out.push(Metric::exact(
            format!("{base}/bytes_on_wire"),
            r.bytes_on_wire,
        ));
        out.push(Metric::exact(format!("{base}/grants"), r.grants));
        out.push(Metric::exact(format!("{base}/denials"), r.denials));
        out.push(Metric::exact(format!("{base}/reminders"), r.reminders));
    }
}

/// Steady-path decode allocations per `SegmentData` frame — the
/// allocation-free receive path's headline number, which must be 0.
fn decode_alloc_metric(out: &mut Vec<Metric>) {
    const PAYLOAD: usize = 16 * 1024;
    const WARMUP: u64 = 32;
    const MEASURED: u64 = 256;

    let payload = Bytes::from(vec![0xabu8; PAYLOAD]);
    let mut wire = Vec::new();
    let mut enc = FrameEncoder::new();
    enc.push(&Message::SegmentData {
        session: 7,
        index: 0,
        payload,
    });
    while let Some(chunk) = enc.pop_chunk() {
        wire.extend_from_slice(&chunk);
    }

    let mut dec = FrameDecoder::new();
    let decode_one = |dec: &mut FrameDecoder| {
        // Two fragments so the tightly-sized fast path never donates the
        // accumulator: the reactor shape.
        dec.feed(&wire[..10]);
        dec.feed(&wire[10..]);
        match dec.poll().unwrap().expect("one whole frame") {
            Message::SegmentData { payload, .. } => assert_eq!(payload.len(), PAYLOAD),
            other => panic!("unexpected frame {other:?}"),
        }
    };
    for _ in 0..WARMUP {
        decode_one(&mut dec);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        decode_one(&mut dec);
    }
    let per_frame = (ALLOCS.load(Ordering::Relaxed) - before) / MEASURED;
    out.push(Metric::exact(
        "decode/segment_data/allocs_per_frame",
        per_frame,
    ));
}

/// The flight recorder's cost contract: recording through a disabled
/// recorder (no sink attached — what every call site pays when
/// observability is off) is nanoseconds, and recording into a live ring
/// allocates exactly nothing. The allocation count is machine-exact;
/// the disabled-path wall time is gated generously like every timing.
fn recorder_metrics(out: &mut Vec<Metric>) {
    use std::hint::black_box;

    const DISABLED_ITERS: u64 = 10_000_000;
    let disabled = p2ps_monitor::Recorder::disabled();
    let started = Instant::now();
    for i in 0..DISABLED_ITERS {
        black_box(&disabled).record(black_box(6), black_box(i), black_box(i));
    }
    out.push(Metric::timing(
        "recorder/disabled_10m_records_wall_ms",
        Kind::TimeMs,
        started.elapsed().as_secs_f64() * 1e3,
    ));

    const WARMUP: u64 = 1_024;
    const MEASURED: u64 = 65_536;
    let root = p2ps_monitor::Monitor::root();
    let scope = root.child("reactor", 0).child("session", 1);
    let events = scope.events("events", "bench ring");
    for i in 0..WARMUP {
        events.record(6, i, i);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..MEASURED {
        black_box(&events).record(black_box(6), black_box(i), black_box(i));
    }
    let per_event = (ALLOCS.load(Ordering::Relaxed) - before) / MEASURED;
    out.push(Metric::exact("recorder/allocs_per_event", per_event));
}

/// The amplification engine's pins. Deterministic: the trace digest of
/// one fixed `(seed, config)` workload at 1, 2 and 4 shards — all three
/// must stay equal *and* stable — plus its event count and the
/// allocation count of a warmed single-thread replay (must be 0).
/// Timing: wall-clock walls for 10⁴-, 10⁵- and 10⁶-peer flash crowds on
/// 4 threads, the committed capacity-amplification perf trajectory.
fn amplification_metrics(out: &mut Vec<Metric>) {
    use p2ps_sim::{AmpConfig, AmpEngine, ArrivalProcess};

    fn config(peers: u32, seeds: u32, items: u16, shards: u32, threads: usize) -> AmpConfig {
        let mut builder = AmpConfig::builder();
        builder
            .requesting_peers(peers)
            .seed_suppliers(seeds)
            .catalog_items(items)
            .process(ArrivalProcess::flash_crowd())
            .arrival_window_secs(3_600)
            .horizon_secs(4 * 3_600)
            .epoch_secs(60)
            .shards(shards)
            .threads(threads);
        builder.build().expect("valid bench config")
    }

    // Shard-count invariance, pinned into the baseline: the three
    // digests must be identical to each other and across commits.
    let mut events = 0;
    for shards in [1u32, 2, 4] {
        let report = AmpEngine::new(config(10_000, 64, 16, shards, 1), 7).run();
        out.push(Metric::exact(
            format!("amplification/10k/trace_hash/shards{shards}"),
            format!("{:016x}", report.trace_hash),
        ));
        events = report.events;
    }
    out.push(Metric::exact("amplification/10k/events", events));

    // The warmed replay allocates exactly nothing (threads = 1).
    let mut engine = AmpEngine::new(config(10_000, 64, 16, 4, 1), 7);
    engine.execute();
    engine.reset(7);
    let before = ALLOCS.load(Ordering::Relaxed);
    engine.execute();
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    out.push(Metric::exact("amplification/10k/warm_replay_allocs", delta));

    // Population walls on 4 threads: the capacity-amplification
    // trajectory this PR series commits to holding.
    for (label, peers, seeds, items, shards) in [
        ("1e4", 10_000u32, 64u32, 16u16, 4u32),
        ("1e5", 100_000, 128, 32, 16),
        ("1e6", 1_000_000, 512, 64, 64),
    ] {
        let started = Instant::now();
        let report = AmpEngine::new(config(peers, seeds, items, shards, 4), 7).run();
        assert!(report.admits > 0, "wall run must exercise the full path");
        out.push(Metric::timing(
            format!("amplification/{label}_wall_ms"),
            Kind::TimeMs,
            started.elapsed().as_secs_f64() * 1e3,
        ));
    }
}

/// A candidate that refuses after `delay`, accepting in a loop.
fn deny_candidate(delay: Duration) -> u16 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
            let Ok(Message::StreamRequest { session, .. }) = read_message(&mut conn) else {
                continue;
            };
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            let _ = write_message(
                &mut conn,
                &Message::Deny {
                    session,
                    busy: false,
                    favored: false,
                },
            );
        }
    });
    port
}

/// One complete round + stream; retries the rare cross-round rejection.
fn run_round(
    id: u64,
    info: &MediaInfo,
    dir: &DirectoryServer,
    clock: &Clock,
    reactor: &NodeReactor,
    candidates: &[CandidateRecord],
) {
    let cfg = NodeConfig::new(
        PeerId::new(id),
        PeerClass::HIGHEST,
        info.clone(),
        dir.addr(),
    );
    let node = PeerNode::spawn_on(cfg, clock.clone(), reactor).unwrap();
    loop {
        let pending = node.begin_stream_from(candidates.to_vec()).unwrap();
        match pending.wait() {
            Ok(outcome) => {
                assert_eq!(outcome.supplier_count, 1);
                break;
            }
            Err(NodeError::Rejected { .. }) => std::thread::sleep(Duration::from_micros(200)),
            Err(e) => panic!("bench round failed: {e}"),
        }
    }
    node.shutdown();
}

/// The pipelined worst case: a 64-candidate round where one candidate
/// takes 50 ms to refuse and the granting seed is the last lane. Probed
/// sequentially this could not beat 50 ms × its queue position; the
/// pipelined round lands in ~50 ms + the (tiny) stream. Best of 3.
fn admission_round_metrics(out: &mut Vec<Metric>) {
    let info = MediaInfo::new("bench-admission", 8, SegmentDuration::from_millis(1), 1024);
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::with_threads(2).unwrap();
    let seed_cfg = NodeConfig::new(PeerId::new(1), PeerClass::HIGHEST, info.clone(), dir.addr());
    let seed = PeerNode::spawn_seed_on(seed_cfg, clock.clone(), &reactor).unwrap();

    let mut candidates: Vec<CandidateRecord> = (0..62u64)
        .map(|i| CandidateRecord {
            id: PeerId::new(1_000 + i),
            class: PeerClass::HIGHEST,
            port: deny_candidate(Duration::ZERO),
        })
        .collect();
    candidates.push(CandidateRecord {
        id: PeerId::new(2_000),
        class: PeerClass::HIGHEST,
        port: deny_candidate(Duration::from_millis(50)),
    });
    candidates.push(CandidateRecord {
        id: seed.id(),
        class: seed.class(),
        port: seed.port(),
    });

    let mut best = f64::INFINITY;
    for round in 0..3u64 {
        let started = Instant::now();
        run_round(10_000 + round, &info, &dir, &clock, &reactor, &candidates);
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    out.push(Metric::timing(
        "admission/64_candidates_one_slow_wall_ms",
        Kind::TimeMs,
        best,
    ));

    seed.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

/// Kernel crossings per complete session: 32 pinned seed↔requester pairs
/// on a 2-thread pool, measured with the process-wide `p2ps-net` syscall
/// counters. Scheduling-dependent only in the retry tail, so the compare
/// gate is 2×.
fn syscalls_per_session_metric(out: &mut Vec<Metric>) {
    const SESSIONS: usize = 32;
    let info = MediaInfo::new(
        "bench-syscalls",
        16,
        SegmentDuration::from_millis(1),
        16 * 1024,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::with_threads(2).unwrap();
    let seeds: Vec<PeerNode> = (0..SESSIONS as u64)
        .map(|i| {
            let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
            PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor).unwrap()
        })
        .collect();

    let before = p2ps_net::sys::syscall_counts();
    let nodes: Vec<PeerNode> = (0..SESSIONS as u64)
        .map(|i| {
            let cfg = NodeConfig::new(
                PeerId::new(100 + i),
                PeerClass::HIGHEST,
                info.clone(),
                dir.addr(),
            );
            PeerNode::spawn_on(cfg, clock.clone(), &reactor).unwrap()
        })
        .collect();
    let mut inflight: Vec<(usize, _)> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let candidate = CandidateRecord {
                id: seeds[i].id(),
                class: seeds[i].class(),
                port: seeds[i].port(),
            };
            (i, node.begin_stream_from(vec![candidate]).unwrap())
        })
        .collect();
    while !inflight.is_empty() {
        let mut rejected = Vec::new();
        for (i, pending) in inflight {
            match pending.wait() {
                Ok(outcome) => assert_eq!(outcome.supplier_count, 1),
                Err(NodeError::Rejected { .. }) => rejected.push(i),
                Err(e) => panic!("session {i}: {e}"),
            }
        }
        inflight = rejected
            .into_iter()
            .map(|i| {
                let candidate = CandidateRecord {
                    id: seeds[i].id(),
                    class: seeds[i].class(),
                    port: seeds[i].port(),
                };
                (i, nodes[i].begin_stream_from(vec![candidate]).unwrap())
            })
            .collect();
    }
    let delta = p2ps_net::sys::syscall_counts().since(&before);
    out.push(Metric::timing(
        "syscalls/per_session",
        Kind::PerSession,
        delta.total() as f64 / SESSIONS as f64,
    ));

    for n in nodes {
        n.shutdown();
    }
    for s in seeds {
        s.shutdown();
    }
    reactor.shutdown();
    dir.shutdown();
}

fn measure() -> Vec<Metric> {
    let mut out = Vec::new();
    eprintln!("measuring: simnet pins (deterministic)");
    simnet_metrics(&mut out);
    eprintln!("measuring: steady-path decode allocations");
    decode_alloc_metric(&mut out);
    eprintln!("measuring: flight-recorder record cost");
    recorder_metrics(&mut out);
    eprintln!("measuring: amplification engine (digests, allocs, walls)");
    amplification_metrics(&mut out);
    eprintln!("measuring: pipelined 64-candidate admission round");
    admission_round_metrics(&mut out);
    eprintln!("measuring: syscalls per session");
    syscalls_per_session_metric(&mut out);
    out
}

fn to_json(metrics: &[Metric]) -> String {
    let mut s = String::from("{\n  \"version\": 10,\n  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"kind\": \"{}\", \"value\": \"{}\" }}{}\n",
            m.name,
            m.kind.name(),
            m.value,
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parses the snapshot format written by [`to_json`]: one metric object
/// per line, fields as quoted strings in name/kind/value order. Not a
/// general JSON parser — it reads exactly what `bench snapshot` writes.
fn from_json(text: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.trim_start().starts_with("{ \"name\"") {
            continue;
        }
        let fields: Vec<&str> = line.split('"').collect();
        // ["    { ", "name", ": ", "<name>", ", ", "kind", ": ", "<kind>", ...]
        if fields.len() < 12 {
            panic!("malformed snapshot line: {line}");
        }
        let (name, kind, value) = (fields[3], fields[7], fields[11]);
        let kind = Kind::parse(kind).unwrap_or_else(|| panic!("unknown metric kind {kind:?}"));
        out.push(Metric {
            name: name.to_string(),
            kind,
            value: value.to_string(),
        });
    }
    out
}

/// Compares fresh measurements against the committed baseline. Returns
/// the number of regressions, printing one loud line per metric.
fn compare(baseline: &[Metric], fresh: &[Metric]) -> usize {
    let mut regressions = 0;
    for base in baseline {
        let Some(now) = fresh.iter().find(|m| m.name == base.name) else {
            println!("MISSING  {:<44} (baseline {})", base.name, base.value);
            regressions += 1;
            continue;
        };
        let ok = match base.kind {
            Kind::Exact => now.value == base.value,
            Kind::TimeMs => {
                let (b, n): (f64, f64) = (base.value.parse().unwrap(), now.value.parse().unwrap());
                n <= b * 4.0 + 250.0
            }
            Kind::PerSession => {
                let (b, n): (f64, f64) = (base.value.parse().unwrap(), now.value.parse().unwrap());
                n <= b * 2.0
            }
        };
        if ok {
            println!(
                "ok       {:<44} {} (baseline {})",
                base.name, now.value, base.value
            );
        } else {
            println!(
                "REGRESSED {:<43} {} exceeds baseline {} ({})",
                base.name,
                now.value,
                base.value,
                match base.kind {
                    Kind::Exact => "must match exactly — re-snapshot deliberately if intended",
                    Kind::TimeMs => "gate: 4x + 250 ms",
                    Kind::PerSession => "gate: 2x",
                }
            );
            regressions += 1;
        }
    }
    for m in fresh {
        if !baseline.iter().any(|b| b.name == m.name) {
            println!(
                "new      {:<44} {} (not in baseline; snapshot to commit)",
                m.name, m.value
            );
        }
    }
    regressions
}

fn usage() -> ! {
    eprintln!(
        "usage: bench snapshot [--out FILE]   write a new baseline (default BENCH_10.json)\n\
         \u{20}      bench compare --against FILE  re-measure and fail on regression\n\
         \u{20}      bench measure                 print metrics without touching disk"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("measure") => {
            for m in measure() {
                println!("{:<52} {:<12} {}", m.name, m.kind.name(), m.value);
            }
        }
        Some("snapshot") => {
            let out = match args.get(1).map(String::as_str) {
                Some("--out") => args.get(2).cloned().unwrap_or_else(|| usage()),
                None => "BENCH_10.json".to_string(),
                _ => usage(),
            };
            let metrics = measure();
            std::fs::write(&out, to_json(&metrics)).expect("writing snapshot");
            println!("wrote {} ({} metrics)", out, metrics.len());
        }
        Some("compare") => {
            let against = match args.get(1).map(String::as_str) {
                Some("--against") => args.get(2).cloned().unwrap_or_else(|| usage()),
                _ => usage(),
            };
            let text = std::fs::read_to_string(&against)
                .unwrap_or_else(|e| panic!("reading {against}: {e}"));
            let baseline = from_json(&text);
            let fresh = measure();
            let regressions = compare(&baseline, &fresh);
            if regressions > 0 {
                eprintln!("\n{regressions} metric(s) regressed against {against}");
                std::process::exit(1);
            }
            println!(
                "\nall {} baseline metrics hold against {against}",
                baseline.len()
            );
        }
        _ => usage(),
    }
}
