//! Regenerates the paper's fig1. See `p2ps_bench::experiments::fig1`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig1::run(&mut harness);
}
