//! Regenerates the paper's table1. See `p2ps_bench::experiments::table1`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::table1::run(&mut harness);
}
