//! Regenerates the paper's fig5. See `p2ps_bench::experiments::fig5`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig5::run(&mut harness);
}
