//! Regenerates the policy × VoD-scenario comparison matrix. See
//! `p2ps_bench::experiments::policy_matrix`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::policy_matrix::run(&mut harness);
}
