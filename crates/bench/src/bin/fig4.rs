//! Regenerates the paper's fig4. See `p2ps_bench::experiments::fig4`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig4::run(&mut harness);
}
