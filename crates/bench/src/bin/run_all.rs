//! Regenerates every table and figure of the paper's evaluation.

fn main() {
    let started = std::time::Instant::now();
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::run_all(&mut harness);
    eprintln!("all experiments regenerated in {:.1?}", started.elapsed());
}
