//! Amplification study: time to N-fold capacity at scale (beyond the paper).

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::amplification::run(&mut harness);
}
