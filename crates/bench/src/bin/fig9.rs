//! Regenerates the paper's fig9. See `p2ps_bench::experiments::fig9`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig9::run(&mut harness);
}
