//! Regenerates the paper's fig7. See `p2ps_bench::experiments::fig7`.

fn main() {
    let mut harness = p2ps_bench::Harness::from_env();
    p2ps_bench::experiments::fig7::run(&mut harness);
}
