//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5).
//!
//! Each figure/table has a binary (`cargo run --release -p p2ps-bench
//! --bin fig4`, …, `--bin table1`) and `--bin run_all` regenerates
//! everything. Results are printed as ASCII plots/tables and written as
//! CSV under `target/experiments/`.
//!
//! Scale is controlled with the `P2PS_SCALE` environment variable:
//! `paper` (default — the full 50,100-peer, 144-hour setup) or `quick`
//! (5,000 peers; same shapes, ~20× faster).

#![forbid(unsafe_code)]

pub mod experiments;
mod harness;

pub use harness::{Harness, Scale};
