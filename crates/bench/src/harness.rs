//! Shared experiment infrastructure: scaling, run caching, output.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::rc::Rc;

use p2ps_core::admission::Protocol;
use p2ps_metrics::{AsciiPlot, CsvWriter, TimeSeries};
use p2ps_sim::{ArrivalPattern, SimConfig, SimConfigBuilder, SimReport, Simulation};

/// Base RNG seed for all experiment runs (deterministic outputs).
pub const BASE_SEED: u64 = 42;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full setup: 100 seeds, 50,000 requesters, 144 h.
    Paper,
    /// 10 seeds, 5,000 requesters, same time axes — same qualitative
    /// shapes, roughly 20× faster. Used by CI-style smoke runs.
    Quick,
}

impl Scale {
    /// Reads `P2PS_SCALE` (`paper`/`quick`), defaulting to `Paper`.
    pub fn from_env() -> Self {
        match std::env::var("P2PS_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }
}

/// Runs simulations with caching and writes experiment artifacts.
pub struct Harness {
    scale: Scale,
    out_dir: PathBuf,
    cache: HashMap<String, Rc<SimReport>>,
}

impl Harness {
    /// Creates a harness at the given scale, writing CSVs under
    /// `target/experiments/`.
    pub fn new(scale: Scale) -> Self {
        let out_dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&out_dir).expect("creating target/experiments");
        Harness {
            scale,
            out_dir,
            cache: HashMap::new(),
        }
    }

    /// Creates a harness from the `P2PS_SCALE` environment variable.
    pub fn from_env() -> Self {
        Harness::new(Scale::from_env())
    }

    /// The active scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// A config builder preloaded with the paper's §5.1 setup at the
    /// harness scale.
    pub fn base_config(&self) -> SimConfigBuilder {
        let mut builder = SimConfig::builder();
        if self.scale == Scale::Quick {
            builder.seed_suppliers(10).requesting_peers(5_000);
        }
        builder
    }

    /// Runs (or reuses) the simulation for `pattern` × `protocol` with
    /// optional extra configuration.
    pub fn run(
        &mut self,
        label: &str,
        pattern: ArrivalPattern,
        protocol: Protocol,
        tweak: impl FnOnce(&mut SimConfigBuilder),
    ) -> Rc<SimReport> {
        let key = format!("{label}/{pattern}/{protocol}");
        if let Some(hit) = self.cache.get(&key) {
            return Rc::clone(hit);
        }
        let mut builder = self.base_config();
        builder.pattern(pattern).protocol(protocol);
        tweak(&mut builder);
        let config = builder.build().expect("experiment configs are valid");
        let started = std::time::Instant::now();
        let report = Rc::new(Simulation::new(config, BASE_SEED).run());
        eprintln!("  [{key}] simulated in {:.2?}", started.elapsed());
        self.cache.insert(key, Rc::clone(&report));
        report
    }

    /// Prints a titled ASCII plot of the series.
    pub fn plot(&self, title: &str, series: &[&TimeSeries]) {
        let mut plot = AsciiPlot::new(title, 72, 20);
        for s in series {
            plot = plot.series(s);
        }
        println!("\n{}", plot.render());
    }

    /// Writes series sharing a time axis to `<name>.csv`.
    pub fn write_csv(&self, name: &str, time_label: &str, series: &[&TimeSeries]) {
        let path = self.out_dir.join(format!("{name}.csv"));
        let file = std::fs::File::create(&path).expect("creating experiment csv");
        CsvWriter::new(file)
            .write_series(time_label, series)
            .expect("writing experiment csv");
        println!("wrote {}", path.display());
    }

    /// Writes a rendered [`p2ps_metrics::Table`] to `<name>.csv`.
    pub fn write_table_csv(&self, name: &str, table: &p2ps_metrics::Table) {
        let path = self.out_dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("writing experiment table csv");
        println!("wrote {}", path.display());
    }

    /// Writes arbitrary text (tables, notes) to `<name>.txt`.
    pub fn write_text(&self, name: &str, content: &str) {
        let path = self.out_dir.join(format!("{name}.txt"));
        let mut file = std::fs::File::create(&path).expect("creating experiment txt");
        file.write_all(content.as_bytes())
            .expect("writing experiment txt");
        println!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_paper() {
        // The test environment does not set P2PS_SCALE.
        if std::env::var("P2PS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Paper);
        }
    }

    #[test]
    fn run_cache_reuses_reports() {
        let mut h = Harness::new(Scale::Quick);
        // Tiny run so the test stays fast.
        let tweak = |b: &mut SimConfigBuilder| {
            b.requesting_peers(50)
                .seed_suppliers(5)
                .arrival_window_hours(2)
                .duration_hours(4);
        };
        let a = h.run("t", ArrivalPattern::Constant, Protocol::Dac, tweak);
        let b = h.run("t", ArrivalPattern::Constant, Protocol::Dac, |_| {});
        assert!(Rc::ptr_eq(&a, &b), "second call must hit the cache");
    }
}
