//! Criterion micro-benches for the deterministic simulation harness.
//!
//! `single_run` times one full seed-derived run per scenario (schedule
//! derivation, the event loop over the real protocol machines, and the
//! trace digest). `sweep_16` times a 16-seed mini-sweep per scenario —
//! the shape of the tier-1 test, scaled down — so regressions in the
//! harness's per-run overhead show up before the 1,000-seed sweep
//! crawls.

use criterion::{criterion_group, criterion_main, Criterion};
use p2ps_simnet::{run, ScenarioKind};
use std::hint::black_box;

fn single_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_single_run");
    for scenario in ScenarioKind::ALL {
        group.bench_function(scenario.name(), |b| {
            b.iter(|| {
                let report = run(black_box(42), black_box(scenario));
                black_box(report.trace_hash)
            });
        });
    }
    group.finish();
}

fn sweep_16(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_sweep_16");
    group.sample_size(20);
    for scenario in ScenarioKind::ALL {
        group.bench_function(scenario.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for seed in 0..16u64 {
                    let report = run(black_box(seed), black_box(scenario));
                    acc ^= report.trace_hash;
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, single_run, sweep_16);
criterion_main!(benches);
