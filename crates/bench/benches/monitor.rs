//! Micro-benchmarks for the introspection tree.
//!
//! The monitor's contract is that the data path pays nothing for being
//! observable: a metric update must be a single relaxed atomic op (a few
//! ns, no allocation, no lock), and all walking cost — snapshotting a
//! 64-session tree, rendering it to Prometheus text — lands on the
//! *observer's* thread. These benches pin both halves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p2ps_monitor::{Monitor, Recorder};

/// The hot-path cost: one counter increment / gauge store.
fn bench_update(c: &mut Criterion) {
    let root = Monitor::root();
    let scope = root.child("reactor", 0).child("session", 42);
    let counter = scope.counter("bytes_total", "bench counter");
    let gauge = scope.gauge("owed", "bench gauge");
    c.bench_function("monitor/counter-incr", |b| b.iter(|| counter.incr()));
    c.bench_function("monitor/gauge-set", |b| b.iter(|| gauge.set(black_box(7))));
}

/// The flight recorder's hot-path cost: recording with no ring attached
/// (what every call site pays when observability is off — must be a
/// branch, low single-digit ns) and with a live ring (the seqlock
/// write: a handful of relaxed stores, no allocation, no lock).
fn bench_recorder(c: &mut Criterion) {
    let disabled = Recorder::disabled();
    c.bench_function("recorder/record-disabled", |b| {
        b.iter(|| disabled.record(black_box(6), black_box(1), black_box(2)))
    });
    let root = Monitor::root();
    let scope = root.child("reactor", 0).child("session", 42);
    let enabled = scope.events("events", "bench ring");
    c.bench_function("recorder/record-enabled", |b| {
        b.iter(|| enabled.record(black_box(6), black_box(1), black_box(2)))
    });
}

/// Builds the tree a 2-reactor, 64-session swarm registers: the shape
/// `p2psd status` walks.
fn swarm_tree() -> (Monitor, Vec<p2ps_monitor::Gauge>) {
    let root = Monitor::root();
    let mut keep = Vec::new();
    for shard in 0..2 {
        let reactor = root.child("reactor", shard);
        keep.push(reactor.gauge("connections", "open connections"));
        keep.push(reactor.gauge("queued_write_bytes", "buffered bytes"));
        for s in 0..32u64 {
            let session = reactor.child("session", shard as u64 * 32 + s);
            keep.push(session.gauge("received_segments", "received"));
            keep.push(session.gauge("owed_segments", "owed"));
            keep.push(session.gauge("last_progress_ms", "progress clock"));
        }
    }
    (root, keep)
}

/// The observer's cost: snapshotting the swarm-shaped tree, and
/// rendering the snapshot as Prometheus text.
fn bench_walk(c: &mut Criterion) {
    let (root, _keep) = swarm_tree();
    c.bench_function("monitor/snapshot-64-sessions", |b| {
        b.iter(|| black_box(root.snapshot()))
    });
    let snap = root.snapshot();
    c.bench_function("monitor/prometheus-64-sessions", |b| {
        b.iter(|| black_box(snap.to_prometheus("p2ps")))
    });
}

criterion_group!(benches, bench_update, bench_recorder, bench_walk);
criterion_main!(benches);
