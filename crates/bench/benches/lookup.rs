//! Micro-benchmarks for the lookup substrates: directory sampling and
//! Chord routing (paper §4.2 footnote 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use p2ps_core::{PeerClass, PeerId};
use p2ps_lookup::chord::{ChordId, ChordRing};
use p2ps_lookup::{Directory, Rendezvous};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory");
    for n in [100u64, 10_000, 50_000] {
        let mut dir = Directory::new();
        for i in 0..n {
            dir.register(
                "video",
                PeerId::new(i),
                PeerClass::new(1 + (i % 4) as u8).unwrap(),
            );
        }
        let mut rng = SmallRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("sample-8", n), &dir, |b, d| {
            b.iter(|| d.sample(black_box("video"), 8, &mut rng))
        });
    }
    group.finish();
}

fn bench_chord(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord");
    for n in [64u64, 512, 4_096] {
        let mut ring = ChordRing::new();
        for i in 0..n {
            ring.join(PeerId::new(i));
        }
        let keys: Vec<ChordId> = (0..64)
            .map(|i| ChordId::of_item(&format!("item-{i}")))
            .collect();
        group.bench_with_input(BenchmarkId::new("lookup", n), &ring, |b, r| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                r.lookup(black_box(keys[i]))
            })
        });
    }
    // join cost at a mid-size ring
    group.bench_function("join-into-512", |b| {
        let mut ring = ChordRing::new();
        for i in 0..512u64 {
            ring.join(PeerId::new(i));
        }
        let mut next = 10_000u64;
        b.iter(|| {
            next += 1;
            let mut r = ring.clone();
            r.join(PeerId::new(next))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_directory, bench_chord);
criterion_main!(benches);
