//! Capacity-amplification engine benchmarks: raw event throughput of
//! the compact sharded engine, the shard-count scaling of one fixed
//! workload, and the warmed zero-allocation replay path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use p2ps_sim::{AmpConfig, AmpEngine, ArrivalProcess};

fn config(peers: u32, shards: u32, threads: usize) -> AmpConfig {
    let mut builder = AmpConfig::builder();
    builder
        .requesting_peers(peers)
        .seed_suppliers((peers / 100).max(16))
        .catalog_items(8)
        .process(ArrivalProcess::flash_crowd())
        .arrival_window_secs(3_600)
        .horizon_secs(4 * 3_600)
        .epoch_secs(60)
        .shards(shards)
        .threads(threads);
    builder.build().expect("valid bench config")
}

/// Cold runs: engine construction + setup + execution, the number a
/// fresh experiment pays per grid cell.
fn bench_cold_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("amplification/cold");
    group.sample_size(10);
    for peers in [2_000u32, 10_000, 50_000] {
        group.throughput(Throughput::Elements(u64::from(peers)));
        group.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &peers| {
            b.iter(|| AmpEngine::new(black_box(config(peers, 4, 1)), 7).run())
        });
    }
    group.finish();
}

/// Warmed replays: `reset` + `execute` on a live engine — the steady
/// path with every buffer at its high-water capacity and zero
/// allocations. This is the engine's true event-processing rate.
fn bench_warm_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("amplification/warm");
    group.sample_size(10);
    let peers = 10_000u32;
    for (label, shards, threads) in [("1shard", 1u32, 1usize), ("4shards", 4, 1), ("4x4", 4, 4)] {
        let mut engine = AmpEngine::new(config(peers, shards, threads), 7);
        engine.execute();
        group.throughput(Throughput::Elements(u64::from(peers)));
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                engine.reset(7);
                engine.execute();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cold_run, bench_warm_replay);
criterion_main!(benches);
