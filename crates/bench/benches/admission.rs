//! Micro-benchmarks for the `DACp2p` admission machinery (paper §4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p2ps_core::admission::{
    attempt_admission, AdmissionVector, Candidate, Protocol, RequestDecision, SupplierConfig,
    SupplierState,
};
use p2ps_core::PeerClass;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn class(k: u8) -> PeerClass {
    PeerClass::new(k).unwrap()
}

fn bench_vector_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission-vector");
    group.bench_function("initial", |b| {
        b.iter(|| AdmissionVector::initial(black_box(class(2)), 4).unwrap())
    });
    let v = AdmissionVector::initial(class(1), 4).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    group.bench_function("decide", |b| {
        b.iter(|| black_box(&v).decide(class(4), &mut rng))
    });
    group.bench_function("relax+tighten", |b| {
        b.iter(|| {
            let mut w = v.clone();
            w.relax();
            w.tighten(class(2));
            w
        })
    });
    group.finish();
}

fn bench_supplier_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("supplier-state");
    let cfg = SupplierConfig::new(4, 1_200, Protocol::Dac).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    group.bench_function("handle_request-idle", |b| {
        let mut s = SupplierState::new(class(2), cfg, 0).unwrap();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            s.handle_request(t, class(3), &mut rng)
        })
    });
    group.bench_function("session-cycle", |b| {
        let mut s = SupplierState::new(class(2), cfg, 0).unwrap();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            s.begin_session(t);
            s.leave_reminder(class(1));
            let _ = s.handle_request(t + 1, class(1), &mut rng);
            s.leave_reminder(class(1));
            s.end_session(t + 5);
        })
    });
    group.finish();
}

/// A zero-cost scripted candidate for probe benchmarking.
struct Scripted {
    class: PeerClass,
    decision: RequestDecision,
}

impl Candidate for Scripted {
    fn class(&self) -> PeerClass {
        self.class
    }
    fn request(&mut self, _from: PeerClass) -> RequestDecision {
        self.decision
    }
    fn leave_reminder(&mut self, _from: PeerClass) {}
    fn release(&mut self) {}
}

fn bench_attempt(c: &mut Criterion) {
    let mut group = c.benchmark_group("attempt-admission");
    for m in [4usize, 8, 32] {
        group.bench_function(format!("m{m}-mixed"), |b| {
            b.iter(|| {
                let mut cands: Vec<Scripted> = (0..m)
                    .map(|i| Scripted {
                        class: class(1 + (i % 4) as u8),
                        decision: if i % 3 == 0 {
                            RequestDecision::Busy { favored: true }
                        } else {
                            RequestDecision::Granted
                        },
                    })
                    .collect();
                attempt_admission(black_box(class(3)), &mut cands)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vector_ops,
    bench_supplier_state,
    bench_attempt
);
criterion_main!(benches);
