//! Micro-benchmarks for the zero-copy segment-serving path.
//!
//! The paper's capacity math assumes a supplier saturates its out-bound
//! bandwidth; per-segment handling cost must therefore not scale with the
//! payload size. These benches pin that property: `Bytes::clone`,
//! `MediaFile::segment` and building the `SegmentData` frame header are
//! all O(1) in payload size (the reported ns/iter stays flat from 4 KiB
//! to 4 MiB), while the `encode-copy` group shows what the pre-Arc
//! deep-copy path used to cost for comparison.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use p2ps_core::assignment::SegmentDuration;
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_proto::{encode_frame, write_message, Message};

const SIZES: [usize; 4] = [4 * 1024, 64 * 1024, 1024 * 1024, 4 * 1024 * 1024];

/// `Bytes::clone` must be a refcount bump, independent of length.
fn bench_bytes_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment-serve/bytes-clone");
    for size in SIZES {
        let payload = Bytes::from(vec![0xa5u8; size]);
        group.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, p| {
            b.iter(|| black_box(p.clone()))
        });
    }
    group.finish();
}

/// `MediaFile::segment` must hand out an O(1) view of the file allocation.
fn bench_segment_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment-serve/segment-view");
    for size in SIZES {
        let info = MediaInfo::new("bench", 8, SegmentDuration::from_millis(250), size as u32);
        let file = MediaFile::synthesize(info);
        group.bench_with_input(BenchmarkId::from_parameter(size), &file, |b, f| {
            b.iter(|| black_box(f.segment(3)))
        });
    }
    group.finish();
}

/// The supplier's whole per-segment serving step — view the segment and
/// splice it onto a sink behind a fixed header — must not copy payload.
fn bench_serve_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment-serve/serve-write");
    for size in SIZES {
        let info = MediaInfo::new("bench", 8, SegmentDuration::from_millis(250), size as u32);
        let file = MediaFile::synthesize(info);
        group.bench_with_input(BenchmarkId::from_parameter(size), &file, |b, f| {
            b.iter(|| {
                let msg = Message::SegmentData {
                    session: 1,
                    index: 3,
                    payload: f.segment(3).into_payload(),
                };
                write_message(std::io::sink(), black_box(&msg)).unwrap();
            })
        });
    }
    group.finish();
}

/// The copying baseline: encoding the payload into an intermediate frame
/// buffer scales linearly with payload size (reported MB/s), which is why
/// the serving loop avoids it.
fn bench_encode_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment-serve/encode-copy");
    for size in SIZES {
        let msg = Message::SegmentData {
            session: 1,
            index: 3,
            payload: Bytes::from(vec![0xa5u8; size]),
        };
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &msg, |b, m| {
            b.iter(|| {
                let mut buf = BytesMut::with_capacity(size + 32);
                encode_frame(black_box(m), &mut buf);
                buf
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bytes_clone,
    bench_segment_view,
    bench_serve_write,
    bench_encode_copy
);
criterion_main!(benches);
