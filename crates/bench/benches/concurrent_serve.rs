//! Concurrent-session serve throughput on one reactor thread.
//!
//! N supplier nodes share one `NodeReactor`; N blocking requesters run
//! the full §4.2 handshake and receive the whole file with `δt = 0`
//! (pacing deadlines all due immediately), so the measurement is pure
//! serve-path throughput: admission, framing, zero-copy segment writes
//! and the reactor's flush/backpressure machinery — no sleeps.
//!
//! Reported MiB/s is aggregate payload across all concurrent sessions
//! per iteration. Scaling N from 1 to 64 shows what one event-loop
//! thread sustains as sessions pile on (the paper's thousands-of-
//! sessions scaling story at bench scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::TcpStream;
use std::time::Duration;

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeReactor, PeerNode};
use p2ps_proto::{read_message, write_message, Message, SessionPlan};

const SEGMENTS: u64 = 64;
const PAYLOAD: usize = 4 * 1024;

/// One complete blocking session against `port`: handshake, drain the
/// stream, count payload bytes.
fn run_session(session: u64, port: u16, info: &MediaInfo) -> u64 {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_message(
        &mut stream,
        &Message::StreamRequest {
            session,
            class: PeerClass::HIGHEST,
        },
    )
    .unwrap();
    match read_message(&mut stream).unwrap() {
        Message::Grant { .. } => {}
        other => panic!("expected grant, got {}", other.name()),
    }
    write_message(
        &mut stream,
        &Message::StartSession {
            session,
            plan: SessionPlan {
                item: info.name().to_owned(),
                segments: vec![0],
                period: 1,
                total_segments: info.segment_count(),
                dt_ms: 0, // throughput mode: every deadline already due
            },
        },
    )
    .unwrap();
    let mut bytes = 0u64;
    loop {
        match read_message(&mut stream).unwrap() {
            Message::SegmentData { payload, .. } => bytes += payload.len() as u64,
            Message::EndSession { .. } => return bytes,
            other => panic!("unexpected {}", other.name()),
        }
    }
}

fn bench_concurrent_serve(c: &mut Criterion) {
    let info = MediaInfo::new(
        "serve-bench",
        SEGMENTS,
        SegmentDuration::from_millis(10),
        PAYLOAD as u32,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::new().unwrap();
    let nodes: Vec<PeerNode> = (0..64u64)
        .map(|i| {
            let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
            PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor).unwrap()
        })
        .collect();
    let ports: Vec<u16> = nodes.iter().map(PeerNode::port).collect();

    let mut group = c.benchmark_group("concurrent_serve");
    group.sample_size(10);
    for n in [1usize, 16, 64] {
        group.throughput(Throughput::Bytes(n as u64 * SEGMENTS * PAYLOAD as u64));
        group.bench_with_input(BenchmarkId::new("sessions", n), &ports[..n], |b, ports| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = ports
                        .iter()
                        .enumerate()
                        .map(|(i, &port)| {
                            let info = &info;
                            scope.spawn(move || run_session(i as u64, port, info))
                        })
                        .collect();
                    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
                    assert_eq!(total, ports.len() as u64 * SEGMENTS * PAYLOAD as u64);
                })
            });
        });
    }
    group.finish();

    drop(nodes);
    reactor.shutdown();
    dir.shutdown();
}

criterion_group!(benches, bench_concurrent_serve);
criterion_main!(benches);
