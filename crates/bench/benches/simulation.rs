//! End-to-end simulator benchmarks: how fast the paper's evaluation can
//! be re-run, and the DAC-vs-NDAC cost comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use p2ps_core::admission::Protocol;
use p2ps_sim::{ArrivalPattern, SimConfig, Simulation};

fn config(peers: u32, protocol: Protocol) -> SimConfig {
    SimConfig::builder()
        .seed_suppliers((peers / 100).max(2))
        .requesting_peers(peers)
        .arrival_window_hours(12)
        .duration_hours(24)
        .session_minutes(30)
        .pattern(ArrivalPattern::Ramp)
        .protocol(protocol)
        .build()
        .expect("valid bench config")
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for peers in [500u32, 2_000, 8_000] {
        for protocol in [Protocol::Dac, Protocol::Ndac] {
            group.bench_with_input(
                BenchmarkId::new(protocol.name(), peers),
                &config(peers, protocol),
                |b, cfg| b.iter(|| Simulation::new(black_box(cfg.clone()), 42).run()),
            );
        }
    }
    group.finish();
}

fn bench_arrival_generation(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("arrivals");
    let mut rng = SmallRng::seed_from_u64(1);
    for pattern in [
        ArrivalPattern::Constant,
        ArrivalPattern::Ramp,
        ArrivalPattern::PeriodicBursts,
    ] {
        group.bench_function(format!("{pattern}-50k"), |b| {
            b.iter(|| pattern.generate(50_000, 72 * 3_600, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_arrival_generation);
criterion_main!(benches);
