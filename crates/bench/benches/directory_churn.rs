//! Directory churn: registration/query throughput under contention.
//!
//! Two axes, matching the PR that introduced them:
//!
//! * **striped-vs-single-lock** — the in-memory registry under
//!   multi-threaded churn (every completed session registers a new
//!   supplier, §2's self-growing property). `ShardedRegistry::new(16)`
//!   vs `::new(1)` with four worker threads hammering distinct items:
//!   striping removes the lock convoy. (Needs real cores to show a win;
//!   on a single-CPU container the two are within noise, by
//!   construction.)
//! * **serial-vs-reactor** — the wire-level directory service when a
//!   fresh *idle* client connects before each query. The old serial
//!   accept loop parked inside the idle connection's read timeout before
//!   answering anyone else (reproduced here by an in-bench baseline with
//!   a 50 ms timeout — the real server used 5 s); the reactor charges an
//!   idle connection a decoder and a timer, nothing more.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use p2ps_core::{PeerClass, PeerId};
use p2ps_node::{query_candidates, DirectoryServer, ShardedRegistry};
use p2ps_proto::{read_message, write_message, CandidateRecord, Message};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 4_096;

/// One churn round: every thread interleaves registrations and samples
/// over its own item universe (distinct items ⇒ distinct shards, the case
/// striping is built for). Item names are precomputed so the measured
/// work is registry ops and lock traffic, not string formatting.
fn churn_round(reg: &ShardedRegistry, items: &[Vec<String>]) {
    std::thread::scope(|scope| {
        for (t, my_items) in items.iter().enumerate() {
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64);
                for i in 0..OPS_PER_THREAD {
                    let item = &my_items[i % my_items.len()];
                    reg.register(
                        item,
                        CandidateRecord {
                            id: PeerId::new((t * OPS_PER_THREAD + i % 32) as u64),
                            class: PeerClass::new(1 + (i % 4) as u8).unwrap(),
                            port: 9000,
                        },
                    );
                    black_box(reg.sample(item, 8, &mut rng));
                }
            });
        }
    });
}

fn bench_registry_striping(c: &mut Criterion) {
    let items: Vec<Vec<String>> = (0..THREADS)
        .map(|t| (0..32).map(|k| format!("item-{t}-{k}")).collect())
        .collect();
    let mut group = c.benchmark_group("directory_churn/registry");
    group.sample_size(10);
    group.throughput(Throughput::Elements((THREADS * OPS_PER_THREAD * 2) as u64));
    for shards in [1usize, 16] {
        let reg = ShardedRegistry::new(shards);
        let label = if shards == 1 {
            "single-lock"
        } else {
            "striped-16"
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &reg, |b, reg| {
            b.iter(|| churn_round(reg, &items));
        });
    }
    group.finish();
}

/// The old directory's architecture, reproduced as a baseline: a serial
/// accept loop that fully serves one connection (until error or read
/// timeout) before accepting the next. Timeout shortened from the real
/// 5 s to 50 ms so the pathology is measurable instead of unbearable.
fn spawn_serial_baseline(read_timeout: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let registry = Arc::new(ShardedRegistry::new(1));
    std::thread::spawn(move || {
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let _ = stream.set_read_timeout(Some(read_timeout));
            // Reads fail on close or idle timeout; either ends the conn.
            while let Ok(msg) = read_message(&mut stream) {
                match msg {
                    Message::Register {
                        item,
                        peer,
                        class,
                        port,
                    } => registry.register(
                        &item,
                        CandidateRecord {
                            id: peer,
                            class,
                            port,
                        },
                    ),
                    Message::QueryCandidates { item, m } => {
                        let list = registry.sample(&item, m as usize, &mut rng);
                        if write_message(&mut stream, &Message::Candidates { list }).is_err() {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
    });
    addr
}

/// One measured exchange: a fresh idle client connects (and stays
/// silent), then a real client queries. The serial loop must burn the
/// idle connection's whole read timeout first; the reactor answers at
/// once.
fn query_behind_an_idle_client(addr: SocketAddr) {
    let idle = TcpStream::connect(addr).unwrap();
    // Give the server a beat to accept the idler first, as a flash crowd
    // would.
    std::thread::sleep(Duration::from_millis(1));
    black_box(query_candidates(addr, "video", 8).unwrap());
    drop(idle);
}

fn bench_wire_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory_churn/wire");
    group.sample_size(10);

    let reactor_dir = DirectoryServer::start().unwrap();
    let serial_addr = spawn_serial_baseline(Duration::from_millis(50));
    for (label, addr) in [
        ("reactor", reactor_dir.addr()),
        ("serial-baseline", serial_addr),
    ] {
        // Seed some records so queries do real sampling work.
        for i in 0..32u64 {
            p2ps_node::register_supplier(
                addr,
                "video",
                PeerId::new(i),
                PeerClass::new(1 + (i % 4) as u8).unwrap(),
                9000 + i as u16,
            )
            .unwrap();
        }
        group.bench_function(BenchmarkId::new("query-behind-idle-client", label), |b| {
            b.iter(|| query_behind_an_idle_client(addr));
        });
    }
    group.finish();
    reactor_dir.shutdown();
    // The serial baseline thread is detached; it dies with the process.
}

/// Sanity floor: a clean query round-trip on the reactor with 32 other
/// connections parked open — the slowloris-shaped load the serial design
/// cannot survive at any timeout. A keepalive thread trickles one
/// Register per connection every 2 s so the directory's 5 s idle reaper
/// never thins the herd mid-measurement, regardless of how long the
/// harness runs.
fn bench_reactor_under_idle_load(c: &mut Criterion) {
    let dir = DirectoryServer::start().unwrap();
    for i in 0..32u64 {
        p2ps_node::register_supplier(
            dir.addr(),
            "video",
            PeerId::new(i),
            PeerClass::new(1 + (i % 4) as u8).unwrap(),
            9000 + i as u16,
        )
        .unwrap();
    }
    let mut idlers: Vec<TcpStream> = (0..32)
        .map(|_| TcpStream::connect(dir.addr()).unwrap())
        .collect();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let keeper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for (i, conn) in idlers.iter_mut().enumerate() {
                    let _ = write_message(
                        &mut *conn,
                        &Message::Register {
                            item: format!("keepalive-{i}"),
                            peer: PeerId::new(1_000 + i as u64),
                            class: PeerClass::HIGHEST,
                            port: 1,
                        },
                    );
                }
                std::thread::sleep(Duration::from_secs(2));
            }
        })
    };
    let mut group = c.benchmark_group("directory_churn/reactor-32-parked-conns");
    group.sample_size(10);
    group.bench_function("query", |b| {
        b.iter(|| black_box(query_candidates(dir.addr(), "video", 8).unwrap()));
    });
    group.finish();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    keeper.join().unwrap();
    dir.shutdown();
}

criterion_group!(
    benches,
    bench_registry_striping,
    bench_wire_service,
    bench_reactor_under_idle_load
);
criterion_main!(benches);
