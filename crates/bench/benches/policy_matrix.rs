//! Criterion benches for the policy layer and the scenario matrix.
//!
//! `plan/<policy>` times one planning decision over an 8-supplier,
//! 256-segment session — the per-admission cost the live requester and
//! the admission simulator pay. `matrix/standard` times a full 4-policy
//! × 5-scenario run at smoke scale — the cost of one tier-1 matrix
//! sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use p2ps_core::PeerClass;
use p2ps_policy::{
    Otsp2p, RandomBaseline, RarestFirst, SelectionPolicy, SequentialWindow, SessionContext,
};
use p2ps_sim::{ScenarioConfig, ScenarioMatrix};

fn plan_benches(c: &mut Criterion) {
    let classes: Vec<PeerClass> = [2u8, 3, 4, 5, 5, 4, 4, 4]
        .into_iter()
        .map(|k| PeerClass::new(k).unwrap())
        .collect();
    // Eight suppliers spanning two R0 sessions' worth keeps the fallback
    // (non-rate-matched) paths honest too.
    let rate_matched: Vec<PeerClass> = [2u8, 3, 4, 5, 5]
        .into_iter()
        .map(|k| PeerClass::new(k).unwrap())
        .collect();
    let mut group = c.benchmark_group("plan");
    for (name, policy) in [
        ("otsp2p", &Otsp2p as &dyn SelectionPolicy),
        ("sequential-window", &SequentialWindow::default()),
        ("rarest-first", &RarestFirst),
        ("random", &RandomBaseline),
    ] {
        let ctx = SessionContext::full(&rate_matched, 256).with_seed(7);
        group.bench_function(name, |b| b.iter(|| policy.plan(black_box(&ctx)).unwrap()));
    }
    let ctx = SessionContext::full(&classes, 256).with_seed(7);
    group.bench_function("otsp2p-fallback", |b| {
        b.iter(|| Otsp2p.plan(black_box(&ctx)).unwrap())
    });
    group.finish();
}

fn matrix_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix");
    group.sample_size(10);
    group.bench_function("standard", |b| {
        b.iter(|| {
            let mut m = ScenarioMatrix::standard(42);
            m.config(ScenarioConfig {
                sessions: 16,
                total_segments: 48,
                startup_window: 8,
            });
            m.run()
        })
    });
    group.finish();
}

criterion_group!(benches, plan_benches, matrix_benches);
criterion_main!(benches);
