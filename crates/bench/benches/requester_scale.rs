//! Requester-session throughput: sessions × reactor threads (1/2/4).
//!
//! Every iteration completes 256 full receiving sessions — admission
//! handshake, reactor hand-off, paced reception, reassembly — against
//! 256 class-1 seeds on the *same* pool, so each reactor thread carries
//! both halves of every connection it owns (full duplex). Pacing is one
//! segment per millisecond with 16 KiB segments: at 256 concurrent
//! sessions the aggregate demand (≈4 GiB/s of segment traffic) is far
//! beyond one event loop, so the measurement is the pool's session-
//! hosting throughput, and scaling the pool from 1 to 4 reactor threads
//! shows sessions/second increasing with cores — the multi-reactor
//! sharding story at bench scale.
//!
//! Candidate lists are pinned (session *i* streams from seed *i*), so no
//! admission collisions pollute the numbers. Admission itself is
//! reactor-hosted and pipelined; the 16 worker threads only spawn nodes,
//! issue the (non-blocking) launches and collect verdicts, so the
//! critical path is the sessions themselves. Alongside criterion's
//! timings the harness prints syscalls/session from the process-wide
//! `p2ps-net` counters — the noise-free half of the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeError, NodeReactor, PeerNode};
use p2ps_proto::CandidateRecord;

const SESSIONS: usize = 256;
const WORKERS: usize = 16;
const SEGMENTS: u64 = 16;
const PAYLOAD: u32 = 16 * 1024;

/// One worker's slice: spawn the requester node, run the session end to
/// end, return nothing (panics propagate through the scope join).
fn run_slice(
    ids: std::ops::Range<usize>,
    iter_base: u64,
    info: &MediaInfo,
    dir: &DirectoryServer,
    clock: &Clock,
    reactor: &NodeReactor,
    candidates: &[CandidateRecord],
) {
    let start = ids.start;
    let mut nodes = Vec::with_capacity(ids.len());
    let mut inflight = Vec::with_capacity(ids.len());
    for i in ids {
        let cfg = NodeConfig::new(
            PeerId::new(iter_base + i as u64),
            PeerClass::HIGHEST,
            info.clone(),
            dir.addr(),
        );
        let node = PeerNode::spawn_on(cfg, clock.clone(), reactor).unwrap();
        let pending = node.begin_stream_from(vec![candidates[i]]).unwrap();
        nodes.push(node);
        inflight.push((i, pending));
    }
    // Session i streams from seed i, so the only rejection source is the
    // tail of the previous iteration's session still releasing that
    // seed; the verdict surfaces at wait(), and the retry relaunches
    // from the same node against the same pinned candidate.
    while !inflight.is_empty() {
        let mut rejected = Vec::new();
        for (i, pending) in inflight {
            match pending.wait() {
                Ok(outcome) => assert_eq!(outcome.supplier_count, 1),
                Err(NodeError::Rejected { .. }) => rejected.push(i),
                Err(e) => panic!("session {i}: {e}"),
            }
        }
        if rejected.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
        inflight = rejected
            .into_iter()
            .map(|i| {
                let pending = nodes[i - start]
                    .begin_stream_from(vec![candidates[i]])
                    .unwrap();
                (i, pending)
            })
            .collect();
    }
    for node in nodes {
        node.shutdown();
    }
}

fn bench_requester_scale(c: &mut Criterion) {
    let info = MediaInfo::new(
        "requester-scale-bench",
        SEGMENTS,
        SegmentDuration::from_millis(1), // minimal pacing: throughput-bound
        PAYLOAD,
    );

    let mut group = c.benchmark_group("requester_scale");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let dir = DirectoryServer::start().unwrap();
        let clock = Clock::new();
        let reactor = NodeReactor::with_threads(threads).unwrap();
        let seeds: Vec<PeerNode> = (0..SESSIONS as u64)
            .map(|i| {
                let cfg =
                    NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
                PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor).unwrap()
            })
            .collect();
        let candidates: Vec<CandidateRecord> = seeds
            .iter()
            .map(|s| CandidateRecord {
                id: s.id(),
                class: s.class(),
                port: s.port(),
            })
            .collect();

        group.throughput(Throughput::Elements(SESSIONS as u64));
        let sys_before = p2ps_net::sys::syscall_counts();
        let mut iteration = 0u64;
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                iteration += 1;
                let iter_base = 1_000_000 * iteration;
                let per = SESSIONS / WORKERS;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..WORKERS)
                        .map(|w| {
                            let (info, dir, clock, reactor, candidates) =
                                (&info, &dir, &clock, &reactor, &candidates[..]);
                            scope.spawn(move || {
                                run_slice(
                                    w * per..(w + 1) * per,
                                    iter_base,
                                    info,
                                    dir,
                                    clock,
                                    reactor,
                                    candidates,
                                )
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            });
        });
        // Kernel crossings per session alongside the wall-clock numbers:
        // the perf trajectory's noise-free metric (see `bench snapshot`).
        let sys = p2ps_net::sys::syscall_counts().since(&sys_before);
        if iteration > 0 {
            let sessions = iteration * SESSIONS as u64;
            println!(
                "requester_scale/threads/{threads}: {:.1} syscalls/session \
                 (read {:.1}, write {:.1}, writev {:.1}, accept {:.1}, \
                 epoll_wait {:.1}) over {sessions} sessions",
                sys.total() as f64 / sessions as f64,
                sys.reads as f64 / sessions as f64,
                sys.writes as f64 / sessions as f64,
                sys.writevs as f64 / sessions as f64,
                sys.accepts as f64 / sessions as f64,
                sys.epoll_waits as f64 / sessions as f64,
            );
        }

        drop(seeds);
        reactor.shutdown();
        dir.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_requester_scale);
criterion_main!(benches);
