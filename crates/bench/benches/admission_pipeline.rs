//! Admission-round latency: candidates × pipelining.
//!
//! Every iteration runs one complete §4.2 round through the live stack —
//! `begin_stream_from` hands the candidate list to the reactor-hosted
//! admission pipeline, which connects and probes **all** lanes
//! concurrently over adopted streams — followed by the (tiny, constant)
//! paced stream off the one granting seed. Three shapes:
//!
//! * `candidates/{1,8,64}` — the seed alone, then 7 and 63 instant-deny
//!   decoys ahead of it. The candidate count is the load knob: a
//!   pipelined round's cost stays ~flat as decoys are added, while
//!   sequential probing would grow linearly with every refusal.
//! * `slow_one_of_64` — 62 instant decoys plus one 40 ms-to-refuse
//!   candidate, the granting seed last. The pipelined round costs
//!   ~max(RTT) ≈ 40 ms + the stream; probing lanes one at a time would
//!   pay the 40 ms *in series* with everything else. This is the bench
//!   half of the tier-1 `admission_pipeline` integration pin (which uses
//!   500 ms and 63 slow lanes for an unmissable margin).
//!
//! Decoy listeners accept in a loop, so every criterion iteration gets a
//! fresh connection from the same fixed ports — no per-iteration setup
//! in the measured path beyond the requester node itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::TcpListener;
use std::time::Duration;

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeError, NodeReactor, PeerNode};
use p2ps_proto::{read_message, write_message, CandidateRecord, Message};

const SEGMENTS: u64 = 8;
const DT_MS: u64 = 1;

/// A candidate that refuses every request after `delay`: accepts
/// connections forever, reads the `StreamRequest`, sleeps, sends a plain
/// `Deny`, hangs up. Returns the fixed listening port.
fn deny_candidate(delay: Duration) -> u16 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
            let Ok(Message::StreamRequest { session, .. }) = read_message(&mut conn) else {
                continue;
            };
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            let _ = write_message(
                &mut conn,
                &Message::Deny {
                    session,
                    busy: false,
                    favored: false,
                },
            );
        }
    });
    port
}

/// One full round + stream for a fresh requester against `candidates`,
/// retrying the rare tail-of-previous-iteration rejection.
fn run_round(
    id: u64,
    info: &MediaInfo,
    dir: &DirectoryServer,
    clock: &Clock,
    reactor: &NodeReactor,
    candidates: &[CandidateRecord],
) {
    let cfg = NodeConfig::new(
        PeerId::new(id),
        PeerClass::HIGHEST,
        info.clone(),
        dir.addr(),
    );
    let node = PeerNode::spawn_on(cfg, clock.clone(), reactor).unwrap();
    loop {
        let pending = node.begin_stream_from(candidates.to_vec()).unwrap();
        match pending.wait() {
            Ok(outcome) => {
                assert_eq!(outcome.supplier_count, 1, "only the seed grants");
                break;
            }
            // The previous iteration's session may still hold the seed's
            // reservation for an instant after its wait() returned.
            Err(NodeError::Rejected { .. }) => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("round failed: {e}"),
        }
    }
    node.shutdown();
}

fn bench_admission_pipeline(c: &mut Criterion) {
    let info = MediaInfo::new(
        "admission-pipeline-bench",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        1024,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::with_threads(2).unwrap();
    let seed_cfg = NodeConfig::new(PeerId::new(1), PeerClass::HIGHEST, info.clone(), dir.addr());
    let seed = PeerNode::spawn_seed_on(seed_cfg, clock.clone(), &reactor).unwrap();
    let seed_record = CandidateRecord {
        id: seed.id(),
        class: seed.class(),
        port: seed.port(),
    };

    // One decoy pool, reused across groups: lane order puts decoys
    // first, the granting seed last, so the greedy fold must consult
    // every decoy before it may commit the grant.
    let decoys: Vec<CandidateRecord> = (0..63u64)
        .map(|i| CandidateRecord {
            id: PeerId::new(1_000 + i),
            class: PeerClass::HIGHEST,
            port: deny_candidate(Duration::ZERO),
        })
        .collect();

    let mut group = c.benchmark_group("admission_pipeline");
    group.sample_size(10);

    let mut next_id = 10_000u64;
    for n in [1usize, 8, 64] {
        let mut candidates: Vec<CandidateRecord> = decoys[..n - 1].to_vec();
        candidates.push(seed_record);
        group.bench_with_input(BenchmarkId::new("candidates", n), &n, |b, _| {
            b.iter(|| {
                next_id += 1;
                run_round(next_id, &info, &dir, &clock, &reactor, &candidates);
            });
        });
    }

    // Worst case: one candidate takes 40 ms to refuse. Pipelined, the
    // whole 64-lane round lands in ~40 ms + the stream; sequential
    // probing would serialize the wait behind 62 other probes.
    let slow = CandidateRecord {
        id: PeerId::new(2_000),
        class: PeerClass::HIGHEST,
        port: deny_candidate(Duration::from_millis(40)),
    };
    let mut candidates: Vec<CandidateRecord> = decoys[..62].to_vec();
    candidates.push(slow);
    candidates.push(seed_record);
    group.bench_function("slow_one_of_64", |b| {
        b.iter(|| {
            next_id += 1;
            run_round(next_id, &info, &dir, &clock, &reactor, &candidates);
        });
    });

    group.finish();
    seed.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

criterion_group!(benches, bench_admission_pipeline);
criterion_main!(benches);
