//! Micro-benchmarks for the media data assignment algorithms (paper §3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use p2ps_core::assignment::{contiguous, edf, otsp2p, schedule::TransmissionSchedule, verify};
use p2ps_core::PeerClass;

fn classes_of(raw: &[u8]) -> Vec<PeerClass> {
    raw.iter().map(|&k| PeerClass::new(k).unwrap()).collect()
}

/// Supplier sets of increasing period (the algorithm's work scales with
/// the period `2^(ℓ-1)`).
fn cases() -> Vec<(&'static str, Vec<PeerClass>)> {
    vec![
        ("figure1-p8", classes_of(&[2, 3, 4, 4])),
        ("uniform-p8", classes_of(&[4; 8])),
        ("wide-p32", classes_of(&[2, 3, 4, 5, 6, 6])),
        ("deep-p256", classes_of(&[2, 3, 4, 5, 6, 7, 8, 9, 9])),
    ]
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    for (name, classes) in cases() {
        group.bench_with_input(BenchmarkId::new("otsp2p", name), &classes, |b, cls| {
            b.iter(|| otsp2p(black_box(cls)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("edf", name), &classes, |b, cls| {
            b.iter(|| edf(black_box(cls)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("contiguous", name), &classes, |b, cls| {
            b.iter(|| contiguous(black_box(cls)).unwrap())
        });
    }
    group.finish();
}

fn bench_delay_and_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment-analysis");
    let classes = classes_of(&[2, 3, 4, 5, 6, 6]);
    let assignment = otsp2p(&classes).unwrap();
    group.bench_function("min_delay_slots-p32", |b| {
        b.iter(|| black_box(&assignment).buffering_delay_slots())
    });
    group.bench_function("schedule-3600-segments", |b| {
        b.iter(|| TransmissionSchedule::new(black_box(&assignment), 3_600))
    });
    let small = classes_of(&[2, 3, 4, 4]);
    group.bench_function("exhaustive-optimum-p8", |b| {
        b.iter(|| verify::exhaustive_min_delay(black_box(&small)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_delay_and_schedule);
criterion_main!(benches);
