//! Micro-benchmarks for the wire codec.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use p2ps_proto::{decode_frame, encode_frame, Message, SessionPlan};

fn control_message() -> Message {
    Message::StartSession {
        session: 99,
        plan: SessionPlan {
            item: "video".into(),
            segments: vec![0, 1, 3, 7],
            period: 8,
            total_segments: 3_600,
            dt_ms: 1_000,
        },
    }
}

fn bench_control(c: &mut Criterion) {
    let msg = control_message();
    let mut group = c.benchmark_group("codec-control");
    group.bench_function("encode-start-session", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(128);
            encode_frame(black_box(&msg), &mut buf);
            buf
        })
    });
    let mut encoded = BytesMut::new();
    encode_frame(&msg, &mut encoded);
    group.bench_function("decode-start-session", |b| {
        b.iter(|| {
            let mut buf = encoded.clone();
            decode_frame(&mut buf).unwrap().unwrap()
        })
    });
    group.finish();
}

fn bench_segment_data(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec-segment-data");
    for size in [1_024usize, 64 * 1024, 1024 * 1024] {
        let msg = Message::SegmentData {
            session: 1,
            index: 42,
            payload: Bytes::from(vec![0xabu8; size]),
        };
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &msg, |b, m| {
            b.iter(|| {
                let mut buf = BytesMut::with_capacity(size + 32);
                encode_frame(black_box(m), &mut buf);
                buf
            })
        });
        let mut encoded = BytesMut::new();
        encode_frame(&msg, &mut encoded);
        group.bench_with_input(BenchmarkId::new("decode", size), &encoded, |b, e| {
            b.iter(|| {
                let mut buf = e.clone();
                decode_frame(&mut buf).unwrap().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_control, bench_segment_data);
criterion_main!(benches);
