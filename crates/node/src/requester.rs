//! Requester side: blocking admission probe, reactor-hosted session.
//!
//! The §4.2 admission handshake is a short, bounded exchange (connect,
//! `StreamRequest`, `Grant`/`Deny`, reminders) and runs on the caller's
//! thread exactly as before — the protocol logic is the *same*
//! [`Candidate`] trait the simulator drives. Everything long-lived
//! changed in the reactor refactor: once admission succeeds and the
//! [`SelectionPolicy`] has planned the session, the granted connections
//! are shipped to a `NodeReactor` shard ([`SessionLaunch`]) where a
//! sans-io [`RequesterSession`] state machine receives the paced stream —
//! **no reader threads, no blocking reads**. One reactor thread hosts any
//! number of receiving sessions; a [`ReactorPool`](p2ps_net::ReactorPool)
//! spreads them across cores by session hash.
//!
//! Mid-stream supplier loss is a structured per-supplier event, not a
//! session abort: the lost supplier's undelivered share feeds
//! [`SelectionPolicy::replan`] over the survivors, and the recovered
//! shares ride the wire as *explicit* `SessionPlan`s that surviving
//! suppliers append to their schedules. Only when no survivor remains
//! (or a replan cannot cover the gap) does the session fail, with
//! [`NodeError::SuppliersLost`].

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::mpsc::Sender;
use std::time::Duration;

use p2ps_core::admission::{attempt_admission, Candidate, ProbeOutcome, RequestDecision};
use p2ps_core::PeerClass;
use p2ps_media::{MediaInfo, PlaybackBuffer, Segment, SegmentStore};
use p2ps_monitor::{monotonic_ms, Counter, Gauge, Monitor, StateCell};
use p2ps_net::{ConnId, Ctx};
use p2ps_policy::{SelectionPolicy, SessionContext, SharedPolicy};
use p2ps_proto::{
    read_message, write_message, CandidateRecord, FrameDecoder, Message, RequesterSession,
    SessionPlan,
};

use crate::serve::send;
use crate::{DriverStep, NodeError, SessionDriver, StreamOutcome};

const CONNECT_TIMEOUT: Duration = Duration::from_millis(1_000);
/// A supplier that goes quiet for this long mid-stream is treated as
/// departed (read timer on the reactor wheel, re-armed on every frame).
const STREAM_READ_TIMEOUT_MS: u64 = 30_000;

/// The requester-side read-progress timer kind.
const K_REQ_READ: u32 = 0;

/// A candidate supplier reached over TCP. Implements the *same*
/// [`Candidate`] trait the simulator uses, so the admission protocol logic
/// is shared verbatim.
struct NetCandidate {
    rec: CandidateRecord,
    session: u64,
    requester_class: PeerClass,
    /// Open while the candidate may still receive follow-up messages.
    stream: Option<TcpStream>,
    granted: bool,
}

impl NetCandidate {
    fn new(rec: CandidateRecord, session: u64, requester_class: PeerClass) -> Self {
        NetCandidate {
            rec,
            session,
            requester_class,
            stream: None,
            granted: false,
        }
    }

    fn try_request(&mut self) -> io::Result<RequestDecision> {
        let addr = std::net::SocketAddr::from(([127, 0, 0, 1], self.rec.port));
        let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(2_000)))?;
        write_message(
            &mut stream,
            &Message::StreamRequest {
                session: self.session,
                class: self.requester_class,
            },
        )?;
        let reply = read_message(&mut stream)?;
        match reply {
            Message::Grant { .. } => {
                self.granted = true;
                self.stream = Some(stream);
                Ok(RequestDecision::Granted)
            }
            Message::Deny { busy, favored, .. } => {
                if busy && favored {
                    // Keep the connection open: a reminder may follow.
                    self.stream = Some(stream);
                }
                if busy {
                    Ok(RequestDecision::Busy { favored })
                } else {
                    Ok(RequestDecision::Refused)
                }
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected grant/deny, got {}", other.name()),
            )),
        }
    }

    fn take_stream(&mut self) -> Option<TcpStream> {
        self.stream.take()
    }
}

impl Candidate for NetCandidate {
    fn class(&self) -> PeerClass {
        self.rec.class
    }

    fn request(&mut self, _from: PeerClass) -> RequestDecision {
        // An unreachable or misbehaving candidate is "down" in the paper's
        // terms: no bandwidth can be secured from it and no reminder can
        // be left with it.
        self.try_request().unwrap_or(RequestDecision::Refused)
    }

    fn leave_reminder(&mut self, from: PeerClass) {
        if let Some(stream) = &mut self.stream {
            let _ = write_message(
                stream,
                &Message::Reminder {
                    session: self.session,
                    class: from,
                },
            );
        }
        self.stream = None; // hang up after the reminder
    }

    fn release(&mut self) {
        if self.granted {
            if let Some(stream) = &mut self.stream {
                let _ = write_message(
                    stream,
                    &Message::Release {
                        session: self.session,
                    },
                );
            }
        }
        self.stream = None;
    }
}

/// Every state a session probe can report: the four
/// [`SessionPhase`](p2ps_proto::SessionPhase) names plus the watchdog's
/// `stalled` verdict.
const SESSION_STATES: &[&str] = &[
    "probing",
    "streaming",
    "reassembling",
    "complete",
    "stalled",
];

/// One session's monitor scope: the gauges and state cell the status
/// endpoint and the stall watchdog read.
///
/// Created on the caller's thread *before* admission (so the `probing`
/// phase is visible while the §4.2 handshake runs) and carried into the
/// reactor with the [`SessionLaunch`]. The handles keep the
/// `reactor={shard} / session={id}` scope alive; dropping the probe —
/// admission failure, session finish — removes the subtree from
/// subsequent snapshots. Every update is a relaxed atomic store.
pub(crate) struct SessionProbe {
    state: StateCell,
    received: Gauge,
    total: Gauge,
    owed: Gauge,
    /// [`monotonic_ms`] of the last received segment (or of launch).
    last_progress_ms: Gauge,
    /// Worst-case healthy ms between consecutive segments (§3: the
    /// largest per-supplier `spp · δt` stride in the plan).
    stride_ms: Gauge,
    bytes_received: Counter,
}

impl SessionProbe {
    /// Registers the session's scope under the reactor shard that will
    /// host it.
    pub(crate) fn register(monitor: &Monitor, shard: usize, session: u64) -> SessionProbe {
        let scope = monitor.child("reactor", shard).child("session", session);
        let probe = SessionProbe {
            state: scope.state("state", "session lifecycle phase", SESSION_STATES),
            received: scope.gauge("received_segments", "segments received so far"),
            total: scope.gauge("total_segments", "segments the session must deliver"),
            owed: scope.gauge(
                "owed_segments",
                "segments still owed by streaming suppliers",
            ),
            last_progress_ms: scope.gauge(
                "last_progress_ms",
                "monotonic ms of the last received segment (or of launch)",
            ),
            stride_ms: scope.gauge(
                "stride_ms",
                "worst-case healthy ms between consecutive segments",
            ),
            bytes_received: scope.counter("bytes_received_total", "segment payload bytes received"),
        };
        probe.last_progress_ms.set(monotonic_ms() as i64);
        probe
    }

    /// The reactor adopted the lanes: record the plan's worst stride and
    /// reset the progress clock so the watchdog measures from launch.
    fn launched(&self, sm: &RequesterSession, stride_ms: u64) {
        self.stride_ms.set(stride_ms as i64);
        self.last_progress_ms.set(monotonic_ms() as i64);
        self.sync(sm);
    }

    /// A segment arrived: refresh every per-session row. Also the stall
    /// *recovery* path — the state write moves a `stalled` session back
    /// to its live phase.
    fn progress(&self, sm: &RequesterSession, payload_bytes: u64) {
        self.bytes_received.add(payload_bytes);
        self.last_progress_ms.set(monotonic_ms() as i64);
        self.sync(sm);
    }

    /// Re-publishes phase, received and owed after any state-machine
    /// transition (lane end, failure, replan).
    fn sync(&self, sm: &RequesterSession) {
        self.received.set(sm.received() as i64);
        self.total.set(sm.total_segments() as i64);
        self.owed.set(sm.owed_total() as i64);
        self.state.set(sm.phase().name());
    }
}

/// One granted supplier ready for reactor hand-off: its open connection
/// and the wire plan the reactor will send as `StartSession`.
pub(crate) struct LaneLaunch {
    pub class: PeerClass,
    pub stream: TcpStream,
    pub plan: SessionPlan,
}

/// What a finished reactor-hosted session delivers back to the caller.
pub(crate) type SessionResult = Result<(StreamOutcome, SegmentStore), NodeError>;

/// Everything a reactor shard needs to host one receiving session.
pub(crate) struct SessionLaunch {
    pub session: u64,
    pub info: MediaInfo,
    pub policy: SharedPolicy,
    pub lanes: Vec<LaneLaunch>,
    /// The plan's minimum feasible delay in slots of `δt` (Theorem 1 for
    /// `Otsp2p`), for the outcome report.
    pub theoretical_slots: u64,
    /// The session's monitor scope, registered by the caller while
    /// probing.
    pub probe: SessionProbe,
    pub done: Sender<SessionResult>,
}

/// One full §4.2 admission attempt followed (on success) by planning:
/// returns the granted connections with their wire plans, ready for the
/// reactor, plus the plan's theoretical delay. Suppliers the policy left
/// empty-handed are `Release`d here and play no further part.
pub(crate) fn admit_and_plan(
    candidates: Vec<CandidateRecord>,
    class: PeerClass,
    session: u64,
    info: &MediaInfo,
    policy: &dyn SelectionPolicy,
) -> Result<(Vec<LaneLaunch>, u64), NodeError> {
    let mut net: Vec<NetCandidate> = candidates
        .into_iter()
        .map(|rec| NetCandidate::new(rec, session, class))
        .collect();

    let outcome = attempt_admission(class, &mut net);
    let granted = match outcome {
        ProbeOutcome::Admitted { granted } => granted,
        ProbeOutcome::Rejected { reminders, .. } => {
            return Err(NodeError::Rejected {
                reminders_left: reminders.len(),
            })
        }
    };
    let mut suppliers: Vec<(PeerClass, TcpStream)> = Vec::with_capacity(granted.len());
    for i in granted {
        let stream = net[i]
            .take_stream()
            .ok_or_else(|| NodeError::Protocol("granted candidate lost stream".into()))?;
        suppliers.push((net[i].class(), stream));
    }

    // With the default `Otsp2p` policy the emitted `SessionPlan`s are
    // byte-identical to the pre-policy code path (the plan *is* the §3
    // assignment, back-mapped to the granted order); other policies ship
    // explicit one-shot plans over the same wire format.
    let classes: Vec<PeerClass> = suppliers.iter().map(|(c, _)| *c).collect();
    let ctx = SessionContext::full(&classes, info.segment_count()).with_seed(session);
    let plan = policy
        .plan(&ctx)
        .map_err(|e| NodeError::Protocol(format!("policy '{}' failed: {e}", policy.name())))?;
    if plan.slot_count() != suppliers.len() {
        return Err(NodeError::Protocol(format!(
            "policy '{}' planned {} slots for {} suppliers",
            policy.name(),
            plan.slot_count(),
            suppliers.len()
        )));
    }
    let theoretical_slots = plan.min_delay_slots(&ctx);
    let dt_ms = info.segment_duration().as_millis();

    let mut lanes: Vec<LaneLaunch> = Vec::with_capacity(suppliers.len());
    for (slot, (class, mut stream)) in suppliers.drain(..).enumerate() {
        let segments = plan.slot(slot);
        if segments.is_empty() {
            // The policy left this grant unused: its bandwidth reservation
            // must not linger.
            let _ = write_message(&mut stream, &Message::Release { session });
            continue;
        }
        lanes.push(LaneLaunch {
            class,
            stream,
            plan: SessionPlan {
                item: info.name().to_owned(),
                segments: segments.to_vec(),
                period: plan.period(),
                total_segments: info.segment_count(),
                dt_ms: dt_ms as u32,
            },
        });
    }
    if lanes.is_empty() {
        return Err(NodeError::Protocol(format!(
            "policy '{}' assigned no segments to any supplier",
            policy.name()
        )));
    }
    Ok((lanes, theoretical_slots))
}

/// One reactor-hosted receiving session: the transport-agnostic
/// [`SessionDriver`] plus the connection bookkeeping around it. All
/// streaming *decisions* (replan routing, completion, failure) live in
/// the driver — this struct only maps lanes to reactor connections and
/// ships what the driver says to ship.
struct ReqSession {
    info: MediaInfo,
    driver: SessionDriver,
    /// Lane → live connection (None once ended or failed).
    lane_conns: Vec<Option<ConnId>>,
    theoretical_slots: u64,
    start_ms: u64,
    probe: SessionProbe,
    done: Sender<SessionResult>,
}

/// A requester-side connection's reactor bookkeeping.
struct ReqConn {
    session: u64,
    lane: usize,
    dec: FrameDecoder,
}

/// All receiving sessions hosted on one reactor shard. Owned by the
/// node's serve handler; every callback is dispatched here when the
/// connection belongs to a requester lane.
#[derive(Default)]
pub(crate) struct ReqSessions {
    sessions: HashMap<u64, ReqSession>,
    conns: HashMap<ConnId, ReqConn>,
}

impl ReqSessions {
    /// Whether `conn` is a requester-side connection on this shard.
    pub(crate) fn owns(&self, conn: ConnId) -> bool {
        self.conns.contains_key(&conn)
    }

    /// Hosts a new session: adopts every lane's connection, sends its
    /// `StartSession`, and arms the read timers. Lanes whose adoption
    /// fails are treated as immediate departures (replanned like any
    /// other loss).
    pub(crate) fn start(&mut self, ctx: &mut Ctx<'_>, launch: SessionLaunch) {
        let SessionLaunch {
            session,
            info,
            policy,
            lanes,
            theoretical_slots,
            probe,
            done,
        } = launch;
        let dt_ms = info.segment_duration().as_millis();
        let mut specs = Vec::with_capacity(lanes.len());
        let mut streams = Vec::with_capacity(lanes.len());
        for lane in lanes {
            specs.push((lane.class, lane.plan));
            streams.push(lane.stream);
        }
        let mut driver = SessionDriver::new(
            session,
            info.name(),
            info.segment_count(),
            dt_ms,
            policy,
            &specs,
        );
        let mut lane_conns = Vec::with_capacity(streams.len());
        let mut dead_lanes = Vec::new();
        let start_ms = ctx.now_ms();
        for (lane_idx, stream) in streams.into_iter().enumerate() {
            match ctx.adopt(stream) {
                Ok(conn) => {
                    self.conns.insert(
                        conn,
                        ReqConn {
                            session,
                            lane: lane_idx,
                            dec: FrameDecoder::new(),
                        },
                    );
                    send(
                        ctx,
                        conn,
                        &Message::StartSession {
                            session,
                            plan: specs[lane_idx].1.clone(),
                        },
                    );
                    ctx.set_timer(conn, K_REQ_READ, STREAM_READ_TIMEOUT_MS);
                    lane_conns.push(Some(conn));
                }
                Err(_) => {
                    // Mark every doomed lane dead *before* settling any of
                    // them, so the first replan does not count the others
                    // as survivors.
                    driver.mark_dead(lane_idx);
                    lane_conns.push(None);
                    dead_lanes.push(lane_idx);
                }
            }
        }
        probe.launched(driver.machine(), driver.stride_ms());
        self.sessions.insert(
            session,
            ReqSession {
                info,
                driver,
                lane_conns,
                theoretical_slots,
                start_ms,
                probe,
                done,
            },
        );
        for lane in dead_lanes {
            self.fail_lane(ctx, session, lane);
        }
        if let Some(sess) = self.sessions.get(&session) {
            // A zero-segment file is complete right at launch.
            let step = sess.driver.status();
            self.apply(ctx, session, step);
        }
    }

    /// Bytes arrived on a requester connection.
    pub(crate) fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let Some(mut rc) = self.conns.remove(&conn) else {
            return;
        };
        rc.dec.feed(data);
        loop {
            match rc.dec.poll() {
                Ok(Some(msg)) => match self.on_message(ctx, conn, &rc, msg) {
                    LaneFlow::Keep => {}
                    LaneFlow::Settled => return, // conn closed, maps updated
                },
                Ok(None) => break,
                Err(_) => {
                    // Corrupt stream: a structured per-supplier failure,
                    // not a session abort.
                    self.close_lane_conn(ctx, &rc, conn);
                    self.fail_lane(ctx, rc.session, rc.lane);
                    return;
                }
            }
        }
        ctx.set_timer(conn, K_REQ_READ, STREAM_READ_TIMEOUT_MS);
        self.conns.insert(conn, rc);
    }

    /// A requester-side timer fired: the supplier went quiet.
    pub(crate) fn on_timer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _kind: u32) {
        let Some(rc) = self.conns.remove(&conn) else {
            return;
        };
        self.close_lane_conn(ctx, &rc, conn);
        self.fail_lane(ctx, rc.session, rc.lane);
    }

    /// The supplier's connection dropped (peer close or I/O error).
    pub(crate) fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let Some(rc) = self.conns.remove(&conn) else {
            return;
        };
        if let Some(sess) = self.sessions.get_mut(&rc.session) {
            sess.lane_conns[rc.lane] = None;
        }
        self.fail_lane(ctx, rc.session, rc.lane);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        rc: &ReqConn,
        msg: Message,
    ) -> LaneFlow {
        let Some(sess) = self.sessions.get_mut(&rc.session) else {
            ctx.close(conn);
            return LaneFlow::Settled;
        };
        match msg {
            Message::SegmentData {
                session,
                index,
                payload,
            } if session == rc.session => {
                let at = ctx.now_ms().saturating_sub(sess.start_ms);
                let payload_bytes = payload.len() as u64;
                let step = sess.driver.on_segment(rc.lane, index, payload, at);
                sess.probe.progress(sess.driver.machine(), payload_bytes);
                if matches!(step, DriverStep::Complete) {
                    self.finish(ctx, rc.session, None);
                    return LaneFlow::Settled;
                }
                LaneFlow::Keep
            }
            Message::EndSession { session } if session == rc.session => {
                sess.lane_conns[rc.lane] = None;
                ctx.close(conn);
                let step = sess.driver.on_end(rc.lane);
                sess.probe.sync(sess.driver.machine());
                self.apply(ctx, rc.session, step);
                LaneFlow::Settled
            }
            _ => {
                // Anything else mid-stream is a protocol violation by this
                // supplier alone.
                self.close_lane_conn(ctx, rc, conn);
                self.fail_lane(ctx, rc.session, rc.lane);
                LaneFlow::Settled
            }
        }
    }

    /// Marks the lane's connection gone (map + session + socket).
    fn close_lane_conn(&mut self, ctx: &mut Ctx<'_>, rc: &ReqConn, conn: ConnId) {
        if let Some(sess) = self.sessions.get_mut(&rc.session) {
            sess.lane_conns[rc.lane] = None;
        }
        ctx.close(conn);
    }

    /// A supplier was lost: the driver collects what it owed and replans
    /// onto the survivors; this side ships the verdict.
    fn fail_lane(&mut self, ctx: &mut Ctx<'_>, session: u64, lane: usize) {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return;
        };
        if let Some(conn) = sess.lane_conns[lane].take() {
            self.conns.remove(&conn);
            ctx.close(conn);
        }
        let step = sess.driver.on_failure(lane);
        sess.probe.sync(sess.driver.machine());
        self.apply(ctx, session, step);
    }

    /// Executes a [`DriverStep`]: ships replanned shares as explicit
    /// `StartSession`s (surviving suppliers append them to their running
    /// schedule and keep pacing at their class rate), finishes on
    /// `Complete`/`Failed`.
    fn apply(&mut self, ctx: &mut Ctx<'_>, session: u64, step: DriverStep) {
        match step {
            DriverStep::Continue => {}
            DriverStep::Replanned(plans) => {
                let Some(sess) = self.sessions.get_mut(&session) else {
                    return;
                };
                for (lane, plan) in plans {
                    let conn = sess.lane_conns[lane].expect("survivor has a live connection");
                    send(ctx, conn, &Message::StartSession { session, plan });
                }
                sess.probe.sync(sess.driver.machine());
            }
            DriverStep::Complete => self.finish(ctx, session, None),
            DriverStep::Failed(e) => self.finish(ctx, session, Some(e)),
        }
    }

    /// Tears the session down and reports to the waiting caller.
    fn finish(&mut self, ctx: &mut Ctx<'_>, session: u64, err: Option<NodeError>) {
        let Some(mut sess) = self.sessions.remove(&session) else {
            return;
        };
        for conn in sess.lane_conns.iter_mut().filter_map(Option::take) {
            self.conns.remove(&conn);
            ctx.close(conn);
        }
        let done = sess.done.clone();
        let result = match err {
            Some(e) => Err(e),
            None => Ok(Self::complete(sess, ctx.now_ms())),
        };
        // The caller may have given up (dropped the receiver); that is
        // its prerogative, not an error here.
        let _ = done.send(result);
    }

    /// Builds the outcome + store for a completed session.
    fn complete(sess: ReqSession, now_ms: u64) -> (StreamOutcome, SegmentStore) {
        let dt_ms = sess.driver.dt_ms();
        let (sm, classes) = sess.driver.into_parts();
        let total = sm.total_segments();
        let mut store = SegmentStore::new(total);
        let mut buffer = PlaybackBuffer::new(total, sess.info.segment_duration());
        for (index, entry) in sm.into_segments().into_iter().enumerate() {
            if let Some((payload, at_ms)) = entry {
                buffer.record_arrival(index as u64, at_ms);
                store.insert(Segment::new(index as u64, payload));
            }
        }
        let measured = buffer
            .min_feasible_delay_ms()
            .expect("session completed, so did the buffer");
        let outcome = StreamOutcome {
            supplier_count: classes.len(),
            supplier_classes: classes,
            measured_delay_ms: measured,
            theoretical_delay_ms: sess.theoretical_slots * dt_ms,
            duration_ms: now_ms.saturating_sub(sess.start_ms),
        };
        (outcome, store)
    }
}

/// What to do with a requester connection after one message.
enum LaneFlow {
    /// Keep decoding on this connection.
    Keep,
    /// The connection's lane settled (ended, failed, or session over);
    /// maps are already updated and the conn must not be re-inserted.
    Settled,
}
