//! Requester side: session planning and the reactor-hosted session.
//!
//! The §4.2 admission handshake itself is reactor-hosted too (see
//! [`crate::admission_host`]): every candidate lane is probed
//! concurrently by a sans-io
//! [`AdmissionDriver`](p2ps_proto::AdmissionDriver), so the caller's
//! thread never blocks on a slow candidate. Once the round is admitted,
//! [`plan_session`] runs the [`SelectionPolicy`] over the granted
//! classes and the already-adopted connections transition straight into
//! a receiving session ([`ReqSessions::start_adopted`]) where a sans-io
//! [`RequesterSession`] state machine receives the paced stream —
//! **no reader threads, no blocking reads**. One reactor thread hosts any
//! number of receiving sessions; a [`ReactorPool`](p2ps_net::ReactorPool)
//! spreads them across cores by session hash.
//!
//! Mid-stream supplier loss is a structured per-supplier event, not a
//! session abort: the lost supplier's undelivered share feeds
//! [`SelectionPolicy::replan`] over the survivors, and the recovered
//! shares ride the wire as *explicit* `SessionPlan`s that surviving
//! suppliers append to their schedules. Only when no survivor remains
//! (or a replan cannot cover the gap) does the session fail, with
//! [`NodeError::SuppliersLost`].

use std::collections::HashMap;
use std::sync::mpsc::Sender;

use p2ps_core::PeerClass;
use p2ps_media::{MediaInfo, PlaybackBuffer, Segment, SegmentStore};
use p2ps_monitor::{monotonic_ms, Counter, Gauge, Monitor, Recorder, StateCell};
use p2ps_net::{ConnId, Ctx};
use p2ps_policy::{SelectionPolicy, SessionContext, SharedPolicy};
use p2ps_proto::{FrameDecoder, Message, RequesterSession, SessionEvent, SessionPlan};

use crate::serve::send;
use crate::{DriverStep, NodeError, SessionDriver, StreamOutcome};

/// A supplier that goes quiet for this long mid-stream is treated as
/// departed (read timer on the reactor wheel, re-armed on every frame).
const STREAM_READ_TIMEOUT_MS: u64 = 30_000;

/// The requester-side read-progress timer kind.
const K_REQ_READ: u32 = 0;

/// How many watchdog-driven recovery rounds a session may burn without a
/// single segment arriving before it is written off as
/// [`NodeError::SuppliersLost`]. Any real segment arrival resets the
/// budget — the bound caps *fruitless* recoveries, not lifetime ones.
const MAX_RECOVERY_ATTEMPTS: u32 = 3;

/// Every state a session probe can report: the four
/// [`SessionPhase`](p2ps_proto::SessionPhase) names plus the watchdog's
/// `stalled` verdict.
const SESSION_STATES: &[&str] = &[
    "probing",
    "streaming",
    "reassembling",
    "complete",
    "stalled",
];

/// One session's monitor scope: the gauges and state cell the status
/// endpoint and the stall watchdog read.
///
/// Created on the caller's thread *before* admission (so the `probing`
/// phase is visible while the §4.2 handshake runs) and carried into the
/// reactor with the admission launch. The handles keep the
/// `reactor={shard} / session={id}` scope alive; dropping the probe —
/// admission failure, session finish — removes the subtree from
/// subsequent snapshots. Every update is a relaxed atomic store.
pub(crate) struct SessionProbe {
    state: StateCell,
    received: Gauge,
    total: Gauge,
    owed: Gauge,
    /// [`monotonic_ms`] of the last received segment (or of launch).
    last_progress_ms: Gauge,
    /// Worst-case healthy ms between consecutive segments (§3: the
    /// largest per-supplier `spp · δt` stride in the plan).
    stride_ms: Gauge,
    bytes_received: Counter,
    /// The session's flight recorder: the structured protocol timeline
    /// (`p2ps_proto::SessionEvent` codes) served as `/trace/<session>`.
    events: Recorder,
}

impl SessionProbe {
    /// Registers the session's scope under the reactor shard that will
    /// host it.
    pub(crate) fn register(monitor: &Monitor, shard: usize, session: u64) -> SessionProbe {
        let scope = monitor.child("reactor", shard).child("session", session);
        let probe = SessionProbe {
            state: scope.state("state", "session lifecycle phase", SESSION_STATES),
            received: scope.gauge("received_segments", "segments received so far"),
            total: scope.gauge("total_segments", "segments the session must deliver"),
            owed: scope.gauge(
                "owed_segments",
                "segments still owed by streaming suppliers",
            ),
            last_progress_ms: scope.gauge(
                "last_progress_ms",
                "monotonic ms of the last received segment (or of launch)",
            ),
            stride_ms: scope.gauge(
                "stride_ms",
                "worst-case healthy ms between consecutive segments",
            ),
            bytes_received: scope.counter("bytes_received_total", "segment payload bytes received"),
            events: scope.events("events", "structured protocol events recorded"),
        };
        probe.last_progress_ms.set(monotonic_ms() as i64);
        probe
    }

    /// The session's flight recorder (the admission host records the
    /// §4.2 handshake through it too).
    pub(crate) fn record(&self, ev: SessionEvent) {
        record(&self.events, ev);
    }

    /// The reactor adopted the lanes: record the plan's worst stride and
    /// reset the progress clock so the watchdog measures from launch.
    fn launched(&self, sm: &RequesterSession, stride_ms: u64) {
        self.stride_ms.set(stride_ms as i64);
        self.last_progress_ms.set(monotonic_ms() as i64);
        self.sync(sm);
    }

    /// A segment arrived: refresh every per-session row. Also the stall
    /// *recovery* path — the state write moves a `stalled` session back
    /// to its live phase.
    fn progress(&self, sm: &RequesterSession, payload_bytes: u64) {
        self.bytes_received.add(payload_bytes);
        self.last_progress_ms.set(monotonic_ms() as i64);
        self.sync(sm);
    }

    /// Re-publishes phase, received and owed after any state-machine
    /// transition (lane end, failure, replan).
    fn sync(&self, sm: &RequesterSession) {
        self.received.set(sm.received() as i64);
        self.total.set(sm.total_segments() as i64);
        self.owed.set(sm.owed_total() as i64);
        self.state.set(sm.phase().name());
    }
}

/// Encodes one [`SessionEvent`] into a flight-recorder ring.
fn record(events: &Recorder, ev: SessionEvent) {
    let (a, b) = ev.fields();
    events.record(ev.code(), a, b);
}

/// What a finished reactor-hosted session delivers back to the caller.
pub(crate) type SessionResult = Result<(StreamOutcome, SegmentStore), NodeError>;

/// One granted supplier ready for session launch: its already-adopted
/// connection and the wire plan the reactor will send as `StartSession`.
pub(crate) struct AdoptedLane {
    pub class: PeerClass,
    /// `None` when the lane's connection died between grant and
    /// hand-off; the lane is marked dead at launch and replanned like
    /// any other loss.
    pub conn: Option<ConnId>,
    pub plan: SessionPlan,
}

/// An admitted, planned session ready to start receiving — produced by
/// the admission host once the §4.2 round settles, consumed by
/// [`ReqSessions::start_adopted`] on the same reactor shard.
pub(crate) struct ReadyLaunch {
    pub session: u64,
    pub info: MediaInfo,
    pub policy: SharedPolicy,
    pub lanes: Vec<AdoptedLane>,
    /// The plan's minimum feasible delay in slots of `δt` (Theorem 1 for
    /// `Otsp2p`), for the outcome report.
    pub theoretical_slots: u64,
    /// The session's monitor scope, registered by the caller while
    /// probing.
    pub probe: SessionProbe,
    pub done: Sender<SessionResult>,
}

/// Runs the [`SelectionPolicy`] over the granted classes: one
/// `SessionPlan` per supplier slot (`None` when the policy left that
/// grant unused — its reservation must be released), plus the plan's
/// theoretical delay.
///
/// With the default `Otsp2p` policy the emitted `SessionPlan`s are
/// byte-identical to the pre-policy code path (the plan *is* the §3
/// assignment, back-mapped to the granted order); other policies ship
/// explicit one-shot plans over the same wire format.
pub(crate) fn plan_session(
    classes: &[PeerClass],
    session: u64,
    info: &MediaInfo,
    policy: &dyn SelectionPolicy,
) -> Result<(Vec<Option<SessionPlan>>, u64), NodeError> {
    let ctx = SessionContext::full(classes, info.segment_count()).with_seed(session);
    let plan = policy
        .plan(&ctx)
        .map_err(|e| NodeError::Protocol(format!("policy '{}' failed: {e}", policy.name())))?;
    if plan.slot_count() != classes.len() {
        return Err(NodeError::Protocol(format!(
            "policy '{}' planned {} slots for {} suppliers",
            policy.name(),
            plan.slot_count(),
            classes.len()
        )));
    }
    let theoretical_slots = plan.min_delay_slots(&ctx);
    let dt_ms = info.segment_duration().as_millis();

    let mut slot_plans: Vec<Option<SessionPlan>> = Vec::with_capacity(classes.len());
    for slot in 0..classes.len() {
        let segments = plan.slot(slot);
        if segments.is_empty() {
            slot_plans.push(None);
            continue;
        }
        slot_plans.push(Some(SessionPlan {
            item: info.name().to_owned(),
            segments: segments.to_vec(),
            period: plan.period(),
            total_segments: info.segment_count(),
            dt_ms: dt_ms as u32,
        }));
    }
    if slot_plans.iter().all(Option::is_none) {
        return Err(NodeError::Protocol(format!(
            "policy '{}' assigned no segments to any supplier",
            policy.name()
        )));
    }
    Ok((slot_plans, theoretical_slots))
}

/// One reactor-hosted receiving session: the transport-agnostic
/// [`SessionDriver`] plus the connection bookkeeping around it. All
/// streaming *decisions* (replan routing, completion, failure) live in
/// the driver — this struct only maps lanes to reactor connections and
/// ships what the driver says to ship.
struct ReqSession {
    info: MediaInfo,
    driver: SessionDriver,
    /// Lane → live connection (None once ended or failed).
    lane_conns: Vec<Option<ConnId>>,
    theoretical_slots: u64,
    start_ms: u64,
    /// Watchdog-driven recovery rounds burned since the last segment
    /// arrival (any arrival resets it; `MAX_RECOVERY_ATTEMPTS` caps it).
    recovery_attempts: u32,
    probe: SessionProbe,
    done: Sender<SessionResult>,
}

/// A requester-side connection's reactor bookkeeping.
struct ReqConn {
    session: u64,
    lane: usize,
    dec: FrameDecoder,
    /// Reactor time of the lane's last inbound bytes (or of launch):
    /// per-lane staleness for stall recovery's pick-the-worst-lane step.
    last_ms: u64,
}

/// All receiving sessions hosted on one reactor shard. Owned by the
/// node's serve handler; every callback is dispatched here when the
/// connection belongs to a requester lane.
#[derive(Default)]
pub(crate) struct ReqSessions {
    sessions: HashMap<u64, ReqSession>,
    conns: HashMap<ConnId, ReqConn>,
}

impl ReqSessions {
    /// Whether `conn` is a requester-side connection on this shard.
    pub(crate) fn owns(&self, conn: ConnId) -> bool {
        self.conns.contains_key(&conn)
    }

    /// Hosts a new session over connections the admission phase already
    /// adopted: sends each lane's `StartSession` and arms the read
    /// timers (replacing the admission-phase timer in place — same
    /// kind). Lanes that lost their connection between grant and
    /// hand-off are immediate departures (replanned like any other
    /// loss).
    pub(crate) fn start_adopted(&mut self, ctx: &mut Ctx<'_>, launch: ReadyLaunch) {
        let ReadyLaunch {
            session,
            info,
            policy,
            lanes,
            theoretical_slots,
            probe,
            done,
        } = launch;
        let dt_ms = info.segment_duration().as_millis();
        let mut specs = Vec::with_capacity(lanes.len());
        let mut conns = Vec::with_capacity(lanes.len());
        for lane in lanes {
            specs.push((lane.class, lane.plan));
            conns.push(lane.conn);
        }
        let mut driver = SessionDriver::new(
            session,
            info.name(),
            info.segment_count(),
            dt_ms,
            policy,
            &specs,
        );
        let mut lane_conns = Vec::with_capacity(conns.len());
        let mut dead_lanes = Vec::new();
        let start_ms = ctx.now_ms();
        for (lane_idx, conn) in conns.into_iter().enumerate() {
            match conn {
                Some(conn) => {
                    self.conns.insert(
                        conn,
                        ReqConn {
                            session,
                            lane: lane_idx,
                            dec: FrameDecoder::new(),
                            last_ms: start_ms,
                        },
                    );
                    probe.record(SessionEvent::PlanSent {
                        lane: lane_idx as u64,
                        segments: specs[lane_idx].1.segments.len() as u64,
                    });
                    send(
                        ctx,
                        conn,
                        &Message::StartSession {
                            session,
                            plan: specs[lane_idx].1.clone(),
                        },
                    );
                    ctx.set_timer(conn, K_REQ_READ, STREAM_READ_TIMEOUT_MS);
                    lane_conns.push(Some(conn));
                }
                None => {
                    // Mark every doomed lane dead *before* settling any of
                    // them, so the first replan does not count the others
                    // as survivors.
                    driver.mark_dead(lane_idx);
                    lane_conns.push(None);
                    dead_lanes.push(lane_idx);
                }
            }
        }
        probe.launched(driver.machine(), driver.stride_ms());
        self.sessions.insert(
            session,
            ReqSession {
                info,
                driver,
                lane_conns,
                theoretical_slots,
                start_ms,
                recovery_attempts: 0,
                probe,
                done,
            },
        );
        for lane in dead_lanes {
            self.fail_lane(ctx, session, lane);
        }
        if let Some(sess) = self.sessions.get(&session) {
            // A zero-segment file is complete right at launch.
            let step = sess.driver.status();
            self.apply(ctx, session, step);
        }
    }

    /// Bytes arrived on a requester connection.
    pub(crate) fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let Some(mut rc) = self.conns.remove(&conn) else {
            return;
        };
        rc.last_ms = ctx.now_ms();
        rc.dec.feed(data);
        loop {
            match rc.dec.poll() {
                Ok(Some(msg)) => match self.on_message(ctx, conn, &rc, msg) {
                    LaneFlow::Keep => {}
                    LaneFlow::Settled => return, // conn closed, maps updated
                },
                Ok(None) => break,
                Err(_) => {
                    // Corrupt stream: a structured per-supplier failure,
                    // not a session abort.
                    self.close_lane_conn(ctx, &rc, conn);
                    self.fail_lane(ctx, rc.session, rc.lane);
                    return;
                }
            }
        }
        ctx.set_timer(conn, K_REQ_READ, STREAM_READ_TIMEOUT_MS);
        self.conns.insert(conn, rc);
    }

    /// A requester-side timer fired: the supplier went quiet.
    pub(crate) fn on_timer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _kind: u32) {
        let Some(rc) = self.conns.remove(&conn) else {
            return;
        };
        self.close_lane_conn(ctx, &rc, conn);
        self.fail_lane(ctx, rc.session, rc.lane);
    }

    /// The supplier's connection dropped (peer close or I/O error).
    pub(crate) fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let Some(rc) = self.conns.remove(&conn) else {
            return;
        };
        if let Some(sess) = self.sessions.get_mut(&rc.session) {
            sess.lane_conns[rc.lane] = None;
        }
        self.fail_lane(ctx, rc.session, rc.lane);
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        rc: &ReqConn,
        msg: Message,
    ) -> LaneFlow {
        let Some(sess) = self.sessions.get_mut(&rc.session) else {
            ctx.close(conn);
            return LaneFlow::Settled;
        };
        match msg {
            Message::SegmentData {
                session,
                index,
                payload,
            } if session == rc.session => {
                let at = ctx.now_ms().saturating_sub(sess.start_ms);
                let payload_bytes = payload.len() as u64;
                let step = sess.driver.on_segment(rc.lane, index, payload, at);
                // Real progress pays back the recovery budget.
                sess.recovery_attempts = 0;
                sess.probe.record(SessionEvent::SegmentArrived {
                    lane: rc.lane as u64,
                    index,
                });
                sess.probe.progress(sess.driver.machine(), payload_bytes);
                if matches!(step, DriverStep::Complete) {
                    self.finish(ctx, rc.session, None);
                    return LaneFlow::Settled;
                }
                LaneFlow::Keep
            }
            Message::EndSession { session } if session == rc.session => {
                sess.lane_conns[rc.lane] = None;
                ctx.close(conn);
                let step = sess.driver.on_end(rc.lane);
                sess.probe.sync(sess.driver.machine());
                self.apply(ctx, rc.session, step);
                LaneFlow::Settled
            }
            _ => {
                // Anything else mid-stream is a protocol violation by this
                // supplier alone.
                self.close_lane_conn(ctx, rc, conn);
                self.fail_lane(ctx, rc.session, rc.lane);
                LaneFlow::Settled
            }
        }
    }

    /// Marks the lane's connection gone (map + session + socket).
    fn close_lane_conn(&mut self, ctx: &mut Ctx<'_>, rc: &ReqConn, conn: ConnId) {
        if let Some(sess) = self.sessions.get_mut(&rc.session) {
            sess.lane_conns[rc.lane] = None;
        }
        ctx.close(conn);
    }

    /// A supplier was lost: the driver collects what it owed and replans
    /// onto the survivors; this side ships the verdict.
    fn fail_lane(&mut self, ctx: &mut Ctx<'_>, session: u64, lane: usize) {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return;
        };
        if let Some(conn) = sess.lane_conns[lane].take() {
            self.conns.remove(&conn);
            ctx.close(conn);
        }
        let step = sess.driver.on_failure(lane);
        sess.probe.sync(sess.driver.machine());
        self.apply(ctx, session, step);
    }

    /// Watchdog-escalated stall recovery: fail the *stalest* live lane
    /// and let the ordinary loss path replan its share over the
    /// survivors — the same [`SelectionPolicy::replan`] route a
    /// connection drop takes, so recovery exercises no special machinery.
    ///
    /// One attempt settles exactly one lane. At session-stall time every
    /// live lane has been quiet past the watchdog bound (healthy lanes
    /// that drained their schedule ended cleanly and are no longer
    /// live), so the oldest `last_ms` points at the supplier most likely
    /// wedged; the survivors get its share and the session flips back to
    /// `streaming` while the new plan ships. If segments still don't
    /// arrive the watchdog re-flags and the next attempt fails the next
    /// stalest lane — bounded by [`MAX_RECOVERY_ATTEMPTS`] fruitless
    /// rounds, after which the session fails with
    /// [`NodeError::SuppliersLost`].
    ///
    /// Spurious escalations (progress resumed between the flag and this
    /// command, or the session already finished) are ignored without
    /// burning an attempt.
    pub(crate) fn recover(
        &mut self,
        ctx: &mut Ctx<'_>,
        session: u64,
        grace_ms: u64,
        recoveries: &Counter,
        giveups: &Counter,
    ) {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return; // already finished — the flag raced the outcome
        };
        let now = ctx.now_ms();
        let quiet_bound = sess.driver.stride_ms() + grace_ms;
        // The stalest live lane: oldest last inbound bytes, and only if
        // genuinely quiet past the watchdog's own bound.
        let stalest = self
            .conns
            .values()
            .filter(|rc| rc.session == session)
            .filter(|rc| now.saturating_sub(rc.last_ms) > quiet_bound)
            .min_by_key(|rc| rc.last_ms)
            .map(|rc| rc.lane);
        let Some(lane) = stalest else {
            return; // every lane spoke recently: nothing to cut loose
        };
        sess.recovery_attempts += 1;
        let attempt = sess.recovery_attempts;
        let outstanding = sess.driver.machine().total_segments() - sess.driver.machine().received();
        // Clone the recorder handle first: the give-up paths below tear
        // the session (and its probe) down, and the terminal event must
        // still land in the ring any held snapshot shares.
        let events = sess.probe.events.clone();
        record(
            &events,
            SessionEvent::RecoveryStarted {
                lane: lane as u64,
                attempt: u64::from(attempt),
            },
        );
        if attempt > MAX_RECOVERY_ATTEMPTS {
            giveups.incr();
            record(
                &events,
                SessionEvent::GaveUp {
                    missing: outstanding,
                },
            );
            self.finish(
                ctx,
                session,
                Some(NodeError::SuppliersLost {
                    missing: outstanding,
                }),
            );
            return;
        }
        self.fail_lane(ctx, session, lane);
        if self.sessions.contains_key(&session) {
            // Survivors absorbed the share: the session is recovering.
            recoveries.incr();
            record(
                &events,
                SessionEvent::Recovered {
                    attempt: u64::from(attempt),
                },
            );
        } else {
            // The failed lane was the last hope: the loss path already
            // finished the session with its own verdict.
            giveups.incr();
            record(
                &events,
                SessionEvent::GaveUp {
                    missing: outstanding,
                },
            );
        }
    }

    /// Executes a [`DriverStep`]: ships replanned shares as explicit
    /// `StartSession`s (surviving suppliers append them to their running
    /// schedule and keep pacing at their class rate), finishes on
    /// `Complete`/`Failed`.
    fn apply(&mut self, ctx: &mut Ctx<'_>, session: u64, step: DriverStep) {
        match step {
            DriverStep::Continue => {}
            DriverStep::Replanned(plans) => {
                let Some(sess) = self.sessions.get_mut(&session) else {
                    return;
                };
                for (lane, plan) in plans {
                    let conn = sess.lane_conns[lane].expect("survivor has a live connection");
                    sess.probe.record(SessionEvent::Replanned {
                        lane: lane as u64,
                        segments: plan.segments.len() as u64,
                    });
                    send(ctx, conn, &Message::StartSession { session, plan });
                }
                sess.probe.sync(sess.driver.machine());
            }
            DriverStep::Complete => self.finish(ctx, session, None),
            DriverStep::Failed(e) => self.finish(ctx, session, Some(e)),
        }
    }

    /// Tears the session down and reports to the waiting caller.
    fn finish(&mut self, ctx: &mut Ctx<'_>, session: u64, err: Option<NodeError>) {
        let Some(mut sess) = self.sessions.remove(&session) else {
            return;
        };
        for conn in sess.lane_conns.iter_mut().filter_map(Option::take) {
            self.conns.remove(&conn);
            ctx.close(conn);
        }
        let done = sess.done.clone();
        if err.is_none() {
            sess.probe.record(SessionEvent::Completed {
                received: sess.driver.machine().received(),
            });
        }
        let result = match err {
            Some(e) => Err(e),
            None => Ok(Self::complete(sess, ctx.now_ms())),
        };
        // The caller may have given up (dropped the receiver); that is
        // its prerogative, not an error here.
        let _ = done.send(result);
    }

    /// Builds the outcome + store for a completed session.
    fn complete(sess: ReqSession, now_ms: u64) -> (StreamOutcome, SegmentStore) {
        let dt_ms = sess.driver.dt_ms();
        let (sm, classes) = sess.driver.into_parts();
        let total = sm.total_segments();
        let mut store = SegmentStore::new(total);
        let mut buffer = PlaybackBuffer::new(total, sess.info.segment_duration());
        for (index, entry) in sm.into_segments().into_iter().enumerate() {
            if let Some((payload, at_ms)) = entry {
                buffer.record_arrival(index as u64, at_ms);
                store.insert(Segment::new(index as u64, payload));
            }
        }
        let measured = buffer
            .min_feasible_delay_ms()
            .expect("session completed, so did the buffer");
        let outcome = StreamOutcome {
            supplier_count: classes.len(),
            supplier_classes: classes,
            measured_delay_ms: measured,
            theoretical_delay_ms: sess.theoretical_slots * dt_ms,
            duration_ms: now_ms.saturating_sub(sess.start_ms),
        };
        (outcome, store)
    }
}

/// What to do with a requester connection after one message.
enum LaneFlow {
    /// Keep decoding on this connection.
    Keep,
    /// The connection's lane settled (ended, failed, or session over);
    /// maps are already updated and the conn must not be re-inserted.
    Settled,
}
