//! Requester-side probing and stream reception.

use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crossbeam::channel;

use p2ps_core::admission::{attempt_admission, Candidate, ProbeOutcome, RequestDecision};
use p2ps_core::PeerClass;
use p2ps_media::{MediaInfo, PlaybackBuffer, Segment, SegmentStore};
use p2ps_policy::{SelectionPolicy, SessionContext};
use p2ps_proto::{read_message, write_message, CandidateRecord, Message, SessionPlan};

use crate::{NodeError, StreamOutcome};

const CONNECT_TIMEOUT: Duration = Duration::from_millis(1_000);
const STREAM_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A candidate supplier reached over TCP. Implements the *same*
/// [`Candidate`] trait the simulator uses, so the admission protocol logic
/// is shared verbatim.
struct NetCandidate {
    rec: CandidateRecord,
    session: u64,
    requester_class: PeerClass,
    /// Open while the candidate may still receive follow-up messages.
    stream: Option<TcpStream>,
    granted: bool,
}

impl NetCandidate {
    fn new(rec: CandidateRecord, session: u64, requester_class: PeerClass) -> Self {
        NetCandidate {
            rec,
            session,
            requester_class,
            stream: None,
            granted: false,
        }
    }

    fn try_request(&mut self) -> io::Result<RequestDecision> {
        let addr = std::net::SocketAddr::from(([127, 0, 0, 1], self.rec.port));
        let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(2_000)))?;
        write_message(
            &mut stream,
            &Message::StreamRequest {
                session: self.session,
                class: self.requester_class,
            },
        )?;
        let reply = read_message(&mut stream)?;
        match reply {
            Message::Grant { .. } => {
                self.granted = true;
                self.stream = Some(stream);
                Ok(RequestDecision::Granted)
            }
            Message::Deny { busy, favored, .. } => {
                if busy && favored {
                    // Keep the connection open: a reminder may follow.
                    self.stream = Some(stream);
                }
                if busy {
                    Ok(RequestDecision::Busy { favored })
                } else {
                    Ok(RequestDecision::Refused)
                }
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected grant/deny, got {}", other.name()),
            )),
        }
    }

    fn take_stream(&mut self) -> Option<TcpStream> {
        self.stream.take()
    }
}

impl Candidate for NetCandidate {
    fn class(&self) -> PeerClass {
        self.rec.class
    }

    fn request(&mut self, _from: PeerClass) -> RequestDecision {
        // An unreachable or misbehaving candidate is "down" in the paper's
        // terms: no bandwidth can be secured from it and no reminder can
        // be left with it.
        self.try_request().unwrap_or(RequestDecision::Refused)
    }

    fn leave_reminder(&mut self, from: PeerClass) {
        if let Some(stream) = &mut self.stream {
            let _ = write_message(
                stream,
                &Message::Reminder {
                    session: self.session,
                    class: from,
                },
            );
        }
        self.stream = None; // hang up after the reminder
    }

    fn release(&mut self) {
        if self.granted {
            if let Some(stream) = &mut self.stream {
                let _ = write_message(
                    stream,
                    &Message::Release {
                        session: self.session,
                    },
                );
            }
        }
        self.stream = None;
    }
}

/// One full admission attempt followed (on success) by the streaming
/// session. Returns the outcome and the received segments.
pub(crate) fn attempt_and_stream(
    candidates: Vec<CandidateRecord>,
    class: PeerClass,
    session: u64,
    info: &MediaInfo,
    policy: &dyn SelectionPolicy,
) -> Result<(StreamOutcome, SegmentStore), NodeError> {
    let mut net: Vec<NetCandidate> = candidates
        .into_iter()
        .map(|rec| NetCandidate::new(rec, session, class))
        .collect();

    let outcome = attempt_admission(class, &mut net);
    match outcome {
        ProbeOutcome::Admitted { granted } => {
            let mut suppliers: Vec<(PeerClass, TcpStream)> = Vec::with_capacity(granted.len());
            for i in granted {
                let stream = net[i]
                    .take_stream()
                    .ok_or_else(|| NodeError::Protocol("granted candidate lost stream".into()))?;
                suppliers.push((net[i].class(), stream));
            }
            receive_stream(suppliers, session, info, policy)
        }
        ProbeOutcome::Rejected { reminders, .. } => Err(NodeError::Rejected {
            reminders_left: reminders.len(),
        }),
    }
}

/// Plans the segment → supplier assignment over the granted suppliers
/// through the configured [`SelectionPolicy`], starts the session on
/// every assigned connection and receives until all suppliers finish.
///
/// With the default `Otsp2p` policy the emitted `SessionPlan`s are
/// byte-identical to the pre-policy code path (the plan *is* the §3
/// assignment, back-mapped to the granted order); other policies ship
/// explicit one-shot plans over the same wire format.
fn receive_stream(
    mut suppliers: Vec<(PeerClass, TcpStream)>,
    session: u64,
    info: &MediaInfo,
    policy: &dyn SelectionPolicy,
) -> Result<(StreamOutcome, SegmentStore), NodeError> {
    let classes: Vec<PeerClass> = suppliers.iter().map(|(c, _)| *c).collect();
    let ctx = SessionContext::full(&classes, info.segment_count()).with_seed(session);
    let plan = policy
        .plan(&ctx)
        .map_err(|e| NodeError::Protocol(format!("policy '{}' failed: {e}", policy.name())))?;
    if plan.slot_count() != suppliers.len() {
        return Err(NodeError::Protocol(format!(
            "policy '{}' planned {} slots for {} suppliers",
            policy.name(),
            plan.slot_count(),
            suppliers.len()
        )));
    }
    let theoretical_slots = plan.min_delay_slots(&ctx);
    let dt_ms = info.segment_duration().as_millis();
    let started = Instant::now();

    // Kick off every assigned supplier with its share of the plan; a
    // supplier the policy left empty-handed is released (its grant held
    // bandwidth the plan does not use) and plays no further part.
    let mut active: Vec<(PeerClass, TcpStream)> = Vec::with_capacity(suppliers.len());
    for (slot, (class, mut stream)) in suppliers.drain(..).enumerate() {
        let segments = plan.slot(slot);
        if segments.is_empty() {
            let _ = write_message(&mut stream, &Message::Release { session });
            continue;
        }
        let wire_plan = SessionPlan {
            item: info.name().to_owned(),
            segments: segments.to_vec(),
            period: plan.period(),
            total_segments: info.segment_count(),
            dt_ms: dt_ms as u32,
        };
        write_message(
            &mut stream,
            &Message::StartSession {
                session,
                plan: wire_plan,
            },
        )
        .map_err(NodeError::Io)?;
        active.push((class, stream));
    }
    if active.is_empty() {
        return Err(NodeError::Protocol(format!(
            "policy '{}' assigned no segments to any supplier",
            policy.name()
        )));
    }
    let classes: Vec<PeerClass> = active.iter().map(|(c, _)| *c).collect();

    // One reader thread per supplier feeding a common channel.
    let (tx, rx) = channel::unbounded::<(u64, bytes::Bytes, u64)>();
    let mut readers = Vec::new();
    for (_, stream) in active {
        let tx = tx.clone();
        readers.push(std::thread::spawn(move || -> io::Result<()> {
            let mut stream = stream;
            stream.set_read_timeout(Some(STREAM_READ_TIMEOUT))?;
            loop {
                match read_message(&mut stream)? {
                    Message::SegmentData { index, payload, .. } => {
                        let at = started.elapsed().as_millis() as u64;
                        let _ = tx.send((index, payload, at));
                    }
                    Message::EndSession { .. } => return Ok(()),
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("expected segment data, got {}", other.name()),
                        ));
                    }
                }
            }
        }));
    }
    drop(tx);

    let mut store = SegmentStore::new(info.segment_count());
    let mut buffer = PlaybackBuffer::new(info.segment_count(), info.segment_duration());
    while let Ok((index, payload, at_ms)) = rx.recv() {
        if index < info.segment_count() {
            buffer.record_arrival(index, at_ms);
            store.insert(Segment::new(index, payload));
        }
    }
    for handle in readers {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(NodeError::Io(e)),
            Err(_) => return Err(NodeError::Protocol("reader thread panicked".into())),
        }
    }

    if !store.is_complete() {
        return Err(NodeError::IncompleteStream {
            received: store.len() as u64,
            expected: info.segment_count(),
        });
    }

    let measured = buffer
        .min_feasible_delay_ms()
        .expect("store is complete, so is the buffer");
    let outcome = StreamOutcome {
        supplier_count: classes.len(),
        supplier_classes: classes,
        measured_delay_ms: measured,
        theoretical_delay_ms: theoretical_slots * dt_ms,
        duration_ms: started.elapsed().as_millis() as u64,
    };
    Ok((outcome, store))
}
