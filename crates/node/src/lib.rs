//! A runnable peer-to-peer media streaming node.
//!
//! This crate turns the paper's algorithms into a working system: real OS
//! threads, real TCP sockets on the loopback interface, real paced segment
//! transmission. A deployment consists of one [`DirectoryServer`]
//! (the Napster-style lookup service of §4.2) and any number of
//! [`PeerNode`]s:
//!
//! * A **seed** node owns the media file from the start and registers as a
//!   supplier (paper §2(1) "seed supplying peers").
//! * Any other node calls [`PeerNode::request_stream`]: it queries the
//!   directory for `M` candidates, runs the `DACp2p` admission handshake
//!   against them (grants, denials, reminders, releases — the exact
//!   protocol logic of `p2ps-core`, driven over TCP), computes the
//!   `OTSp2p` assignment across the granting suppliers, and receives the
//!   stream while measuring its real buffering delay. When the session
//!   completes the node stores the file and registers as a supplier
//!   itself — the system's capacity grows exactly as the paper describes.
//!
//! The admission state machines are shared verbatim with the simulator
//! (`p2ps-core::admission`); only the transport differs.
//!
//! Both halves are event-driven: the directory, every node's supplier
//! side (admission handshake, reminder collection, §3 paced streaming)
//! *and* every node's requester side (paced reception, reassembly, live
//! replanning on supplier departure) run as sans-io state machines on a
//! `p2ps-net` epoll reactor, with pacing and read timeouts on its timer
//! wheel. A [`NodeReactor`] is a pool of 1..N such reactor threads:
//! nodes shard across it by tag, requester sessions by session id, so
//! one process carries thousands of full-duplex sessions and scales
//! across cores ([`NodeReactor::with_threads`]). The §4.2 admission
//! round is reactor-hosted too: a pipelined sans-io
//! [`AdmissionDriver`](p2ps_proto::AdmissionDriver) probes every
//! candidate lane *concurrently*, so `M` candidates cost ~max(RTT)
//! instead of Σ(RTT) and a frozen candidate burns only its own timeout.
//! [`PeerNode::begin_stream`] just connects and returns a
//! [`PendingStream`] — the verdict (including
//! [`NodeError::Rejected`]) surfaces at [`PendingStream::wait`] — so
//! hundreds of receiving sessions can be in flight without a thread
//! each.
//!
//! One deliberate addition over the paper: a supplier that issues a grant
//! holds a short *reservation* until the requester either confirms
//! (`StartSession`) or releases it. Without this, two concurrent
//! requesters could both secure the same supplier — a race the paper's
//! event-ordered simulation never exhibits but a real system must handle.
//!
//! # Examples
//!
//! ```no_run
//! use p2ps_node::{DirectoryServer, NodeConfig, PeerNode, Swarm};
//! use p2ps_core::PeerClass;
//! use p2ps_media::MediaInfo;
//! use p2ps_core::assignment::SegmentDuration;
//!
//! // A 2-second "video" of 25 ms segments, streamed across a small swarm.
//! let info = MediaInfo::new("demo", 80, SegmentDuration::from_millis(25), 2_048);
//! let mut swarm = Swarm::start(info, 4)?; // 4 class-1 seeds
//! let outcome = swarm.stream_one(PeerClass::new(2)?, 8)?;
//! println!("streamed from {} suppliers", outcome.supplier_count);
//! # Ok::<(), p2ps_node::NodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission_host;
mod args;
mod clock;
mod directory;
mod driver;
mod error;
mod node;
mod requester;
mod serve;
mod supplier;
mod swarm;
mod watchdog;

pub use args::{Args, ArgsError};
pub use clock::Clock;
pub use directory::{query_candidates, register_supplier, DirectoryServer, ShardedRegistry};
pub use driver::{DriverStep, SessionDriver};
pub use error::NodeError;
pub use node::{NodeConfig, PeerNode, PendingStream, StreamOutcome};
pub use serve::NodeReactor;
pub use swarm::Swarm;
pub use watchdog::WatchdogConfig;
