//! A tiny dependency-free command-line argument parser for the `p2psd`
//! binary.
//!
//! Supports `--flag value` and `--flag=value` forms plus positional
//! arguments; unknown flags are errors so typos fail loudly.

use std::collections::HashMap;

/// Parsed command line: positionals in order plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
}

/// Argument parsing failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses raw arguments (without the program name), validating flags
    /// against the allowed set.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] for unknown flags or flags missing a value.
    pub fn parse<I, S>(raw: I, allowed: &[&str]) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut positionals = Vec::new();
        let mut options = HashMap::new();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                let (key, value) = match stripped.split_once('=') {
                    Some((k, v)) => (k.to_owned(), v.to_owned()),
                    None => {
                        let key = stripped.to_owned();
                        let value = iter
                            .next()
                            .ok_or_else(|| ArgsError(format!("--{key} needs a value")))?;
                        (key, value)
                    }
                };
                if !allowed.contains(&key.as_str()) {
                    return Err(ArgsError(format!("unknown flag --{key}")));
                }
                options.insert(key, value);
            } else {
                positionals.push(arg);
            }
        }
        Ok(Args {
            positionals,
            options,
        })
    }

    /// Positional argument `i`, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// The raw value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of `--key` parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// The value of `--key` parsed as `T`; an error when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] when missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgsError> {
        let v = self
            .options
            .get(key)
            .ok_or_else(|| ArgsError(format!("--{key} is required")))?;
        v.parse()
            .map_err(|_| ArgsError(format!("--{key}: cannot parse {v:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALLOWED: &[&str] = &["dir", "class", "m"];

    #[test]
    fn parses_positionals_and_flags() {
        let a = Args::parse(["stream", "--dir", "127.0.0.1:9000", "--class=3"], ALLOWED).unwrap();
        assert_eq!(a.positional(0), Some("stream"));
        assert_eq!(a.positional_count(), 1);
        assert_eq!(a.get("dir"), Some("127.0.0.1:9000"));
        assert_eq!(a.get("class"), Some("3"));
        assert_eq!(a.get("m"), None);
    }

    #[test]
    fn typed_accessors() {
        let a = Args::parse(["--class", "3"], ALLOWED).unwrap();
        assert_eq!(a.get_or("class", 1u8).unwrap(), 3);
        assert_eq!(a.get_or("m", 8usize).unwrap(), 8);
        assert_eq!(a.require::<u8>("class").unwrap(), 3);
        assert!(a.require::<u8>("m").is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = Args::parse(["--bogus", "1"], ALLOWED).unwrap_err();
        assert!(err.to_string().contains("unknown flag --bogus"));
    }

    #[test]
    fn missing_value_is_rejected() {
        let err = Args::parse(["--class"], ALLOWED).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn unparsable_value_is_rejected() {
        let a = Args::parse(["--class", "banana"], ALLOWED).unwrap();
        assert!(a.get_or("class", 1u8).is_err());
    }

    #[test]
    fn empty_input() {
        let a = Args::parse(Vec::<String>::new(), ALLOWED).unwrap();
        assert_eq!(a.positional_count(), 0);
        assert_eq!(a, Args::default());
    }
}
