//! An in-process swarm harness for examples and integration tests.

use std::time::Duration;

use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;

use crate::{Clock, DirectoryServer, NodeConfig, NodeError, NodeReactor, PeerNode, StreamOutcome};

/// A complete local deployment: one directory server plus a growing set
/// of peer nodes, all in this process, talking real TCP on loopback.
///
/// Mirrors the paper's system at laptop scale: seeds own the file,
/// requesters stream it and become suppliers, so the swarm's capacity
/// grows with every completed session. All nodes — supplier *and*
/// requester sides — share one [`NodeReactor`] pool, so the swarm's
/// footprint is one event loop per configured thread
/// ([`start_with_threads`](Self::start_with_threads)) no matter how many
/// peers join.
///
/// # Examples
///
/// ```no_run
/// use p2ps_node::Swarm;
/// use p2ps_core::PeerClass;
/// use p2ps_core::assignment::SegmentDuration;
/// use p2ps_media::MediaInfo;
///
/// let info = MediaInfo::new("clip", 40, SegmentDuration::from_millis(25), 1_024);
/// let mut swarm = Swarm::start(info, 2)?;
/// for k in [2u8, 3, 3, 4] {
///     let outcome = swarm.stream_one(PeerClass::new(k).unwrap(), 8)?;
///     println!("class-{k} served by {} suppliers", outcome.supplier_count);
/// }
/// # Ok::<(), p2ps_node::NodeError>(())
/// ```
pub struct Swarm {
    directory: DirectoryServer,
    reactor: NodeReactor,
    clock: Clock,
    info: MediaInfo,
    nodes: Vec<PeerNode>,
    next_id: u64,
    policy: p2ps_policy::SharedPolicy,
}

impl std::fmt::Debug for Swarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Swarm")
            .field("item", &self.info.name())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Swarm {
    /// Starts a directory server and `seed_count` class-1 seed suppliers
    /// for the given media item, on a single-threaded reactor.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from starting the servers.
    pub fn start(info: MediaInfo, seed_count: usize) -> Result<Self, NodeError> {
        Self::start_inner(info, seed_count, DirectoryServer::start()?, 1)
    }

    /// Like [`start`](Self::start) but the swarm's nodes and sessions are
    /// sharded across `threads` reactor threads — the multi-core knob for
    /// swarms whose aggregate traffic outgrows one event loop.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from starting the servers.
    pub fn start_with_threads(
        info: MediaInfo,
        seed_count: usize,
        threads: usize,
    ) -> Result<Self, NodeError> {
        Self::start_inner(info, seed_count, DirectoryServer::start()?, threads)
    }

    /// Like [`start`](Self::start) but the lookup service indexes
    /// suppliers through a Chord ring of `index_nodes` nodes (the paper's
    /// distributed lookup option).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from starting the servers.
    pub fn start_with_chord(
        info: MediaInfo,
        seed_count: usize,
        index_nodes: u64,
    ) -> Result<Self, NodeError> {
        Self::start_inner(
            info,
            seed_count,
            DirectoryServer::start_with_chord(index_nodes)?,
            1,
        )
    }

    fn start_inner(
        info: MediaInfo,
        seed_count: usize,
        directory: DirectoryServer,
        threads: usize,
    ) -> Result<Self, NodeError> {
        let clock = Clock::new();
        let mut swarm = Swarm {
            directory,
            reactor: NodeReactor::with_threads(threads).map_err(NodeError::Io)?,
            clock,
            info,
            nodes: Vec::new(),
            next_id: 0,
            policy: p2ps_policy::SharedPolicy::default(),
        };
        for _ in 0..seed_count {
            swarm.add_seed(PeerClass::HIGHEST)?;
        }
        Ok(swarm)
    }

    /// Adds one seed supplier of the given class.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn add_seed(&mut self, class: PeerClass) -> Result<PeerId, NodeError> {
        let id = PeerId::new(self.next_id);
        self.next_id += 1;
        let config = NodeConfig::new(id, class, self.info.clone(), self.directory.addr());
        let node = PeerNode::spawn_seed_on(config, self.clock.clone(), &self.reactor)?;
        self.nodes.push(node);
        Ok(id)
    }

    /// Adds a requesting peer of the given class, has it stream the item
    /// (retrying a few times on rejection) and keeps it in the swarm as a
    /// new supplier.
    ///
    /// # Errors
    ///
    /// The final [`NodeError`] if every attempt failed.
    pub fn stream_one(&mut self, class: PeerClass, m: usize) -> Result<StreamOutcome, NodeError> {
        let id = PeerId::new(self.next_id);
        self.next_id += 1;
        let mut config = NodeConfig::new(id, class, self.info.clone(), self.directory.addr());
        config.policy = self.policy.clone();
        let node = PeerNode::spawn_on(config, self.clock.clone(), &self.reactor)?;
        let outcome = node.request_stream_with_retry(m, 10, Duration::from_millis(50))?;
        self.nodes.push(node);
        Ok(outcome)
    }

    /// Sets the selection policy future requesters stream with (the
    /// paper's `OTSp2p` by default). Nodes already in the swarm keep the
    /// policy they streamed with.
    pub fn set_policy(&mut self, policy: p2ps_policy::SharedPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Address of the swarm's directory server.
    pub fn directory_addr(&self) -> std::net::SocketAddr {
        self.directory.addr()
    }

    /// The media item this swarm streams.
    pub fn info(&self) -> &MediaInfo {
        &self.info
    }

    /// The swarm's shared clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Reactor threads carrying the swarm's nodes and sessions.
    pub fn thread_count(&self) -> usize {
        self.reactor.thread_count()
    }

    /// Number of peer nodes (seeds + converted requesters).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes currently able to supply the file.
    pub fn supplier_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_supplier()).count()
    }

    /// Shuts every node, the shared serving reactor and the directory
    /// down.
    pub fn shutdown(self) {
        for node in self.nodes {
            node.shutdown();
        }
        self.reactor.shutdown();
        self.directory.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_core::assignment::SegmentDuration;

    fn tiny_info(segments: u64) -> MediaInfo {
        MediaInfo::new(
            "swarm-test",
            segments,
            SegmentDuration::from_millis(10),
            512,
        )
    }

    #[test]
    fn single_seed_single_requester() {
        let mut swarm = Swarm::start(tiny_info(16), 1).unwrap();
        assert_eq!(swarm.supplier_count(), 1);
        let outcome = swarm.stream_one(PeerClass::new(2).unwrap(), 8).unwrap();
        // One class-1 seed covers R0 alone.
        assert_eq!(outcome.supplier_count, 1);
        assert_eq!(outcome.theoretical_delay_ms, 10);
        assert_eq!(swarm.supplier_count(), 2);
        swarm.shutdown();
    }

    #[test]
    fn capacity_grows_and_multi_supplier_sessions_happen() {
        let mut swarm = Swarm::start(tiny_info(16), 2).unwrap();
        for k in [2u8, 2, 3, 4] {
            let outcome = swarm
                .stream_one(PeerClass::new(k).unwrap(), 8)
                .unwrap_or_else(|e| panic!("class-{k} failed: {e}"));
            assert!(outcome.supplier_count >= 1);
            assert_eq!(
                outcome.theoretical_delay_ms,
                outcome.supplier_count as u64 * 10
            );
        }
        assert_eq!(swarm.node_count(), 6);
        assert_eq!(swarm.supplier_count(), 6);
        swarm.shutdown();
    }

    #[test]
    fn chord_indexed_swarm_streams_too() {
        let mut swarm = Swarm::start_with_chord(tiny_info(16), 2, 8).unwrap();
        let outcome = swarm.stream_one(PeerClass::new(3).unwrap(), 8).unwrap();
        assert_eq!(outcome.supplier_count, 1);
        assert_eq!(swarm.supplier_count(), 3);
        // A second requester may now be served by the converted peer that
        // registered itself through the Chord ring.
        let outcome = swarm.stream_one(PeerClass::new(4).unwrap(), 8).unwrap();
        assert!(outcome.supplier_count >= 1);
        swarm.shutdown();
    }

    #[test]
    fn measured_delay_tracks_theorem_one() {
        let mut swarm = Swarm::start(tiny_info(32), 1).unwrap();
        let outcome = swarm.stream_one(PeerClass::new(3).unwrap(), 8).unwrap();
        // Real scheduling jitter exists, but the measured minimum feasible
        // delay must be within a couple of slots of n·δt.
        assert!(
            outcome.measured_delay_ms <= outcome.theoretical_delay_ms + 30,
            "measured {}ms vs theoretical {}ms",
            outcome.measured_delay_ms,
            outcome.theoretical_delay_ms
        );
        swarm.shutdown();
    }
}
