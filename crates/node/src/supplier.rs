//! Supplier-side connection handling and paced streaming.

use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use p2ps_core::admission::{RequestDecision, SupplierState};
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaFile;
use p2ps_proto::{read_message, write_message, Message, SessionPlan};

use crate::Clock;

/// How long a grant reserves the supplier while the requester assembles
/// its supplier set (see the crate docs on the grant/confirm race).
pub(crate) const GRANT_TTL_MS: u64 = 3_000;

/// State shared between a node's listener threads and its public handle.
pub(crate) struct SupplierShared {
    /// Kept for diagnostics/log context even though the protocol itself
    /// never needs the supplier's own id after registration.
    #[allow(dead_code)]
    pub id: PeerId,
    pub class: PeerClass,
    pub clock: Clock,
    pub admission: Mutex<AdmissionGuard>,
    /// The media file, present once the peer owns a complete copy.
    pub file: Mutex<Option<MediaFile>>,
    /// Set on shutdown: in-flight streaming sessions abort (modelling a
    /// supplier crash mid-session).
    pub stop: std::sync::atomic::AtomicBool,
}

/// The admission state plus the grant reservation extension.
pub(crate) struct AdmissionGuard {
    pub state: SupplierState,
    pub rng: SmallRng,
    /// Tick (ms) at which an unconfirmed grant was issued, if any.
    pub reserved_at: Option<u64>,
}

impl AdmissionGuard {
    fn reservation_active(&mut self, now: u64) -> bool {
        match self.reserved_at {
            Some(at) if now.saturating_sub(at) <= GRANT_TTL_MS => true,
            Some(_) => {
                self.reserved_at = None; // expired: requester went away
                false
            }
            None => false,
        }
    }
}

/// Handles one inbound connection for the node.
pub(crate) fn handle_connection(shared: &Arc<SupplierShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(GRANT_TTL_MS * 2)));
    let Ok(first) = read_message(&mut stream) else {
        return;
    };
    // Anything other than a stream request on a fresh connection is a
    // protocol violation; drop the connection.
    if let Message::StreamRequest { session, class } = first {
        let _ = handle_stream_request(shared, stream, session, class);
    }
}

fn handle_stream_request(
    shared: &Arc<SupplierShared>,
    mut stream: TcpStream,
    session: u64,
    requester_class: PeerClass,
) -> io::Result<()> {
    let now = shared.clock.now_ms();
    let has_file = shared.file.lock().is_some();

    let decision = {
        let mut guard = shared.admission.lock();
        if !has_file {
            // Not yet a supplier: refuse outright (never advertised in the
            // directory, but a stale candidate record could still point
            // here).
            RequestDecision::Refused
        } else if guard.reservation_active(now) {
            // Reserved by a concurrent requester: behave as busy. The
            // favored flag still reflects the current vector so the
            // requester's reminder logic stays sound.
            let favored = guard.state.vector_at(now).favors(requester_class);
            RequestDecision::Busy { favored }
        } else {
            let mut rng_ptr = std::mem::replace(&mut guard.rng, SmallRng::seed_from_u64(0));
            let d = guard
                .state
                .handle_request(now, requester_class, &mut rng_ptr);
            guard.rng = rng_ptr;
            if d.is_granted() {
                guard.reserved_at = Some(now);
            }
            d
        }
    };

    match decision {
        RequestDecision::Granted => {
            write_message(
                &mut stream,
                &Message::Grant {
                    session,
                    class: shared.class,
                },
            )?;
            await_confirmation(shared, stream, session)
        }
        RequestDecision::Refused => write_message(
            &mut stream,
            &Message::Deny {
                session,
                busy: false,
                favored: false,
            },
        ),
        RequestDecision::Busy { favored } => {
            write_message(
                &mut stream,
                &Message::Deny {
                    session,
                    busy: true,
                    favored,
                },
            )?;
            collect_reminders(shared, stream)
        }
    }
}

/// After a grant: wait for `StartSession`, `Release`, or silence.
fn await_confirmation(
    shared: &Arc<SupplierShared>,
    mut stream: TcpStream,
    session: u64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(GRANT_TTL_MS)))?;
    let msg = read_message(&mut stream);
    match msg {
        Ok(Message::StartSession {
            session: confirmed,
            plan,
        }) if confirmed == session => {
            {
                let mut guard = shared.admission.lock();
                guard.reserved_at = None;
                guard.state.begin_session(shared.clock.now_ms());
            }
            let result = stream_session(shared, &mut stream, session, &plan);
            shared
                .admission
                .lock()
                .state
                .end_session(shared.clock.now_ms());
            result
        }
        _ => {
            // Release, timeout, disconnect or junk: drop the reservation.
            shared.admission.lock().reserved_at = None;
            Ok(())
        }
    }
}

/// After a busy denial: absorb reminders until the requester hangs up.
fn collect_reminders(shared: &Arc<SupplierShared>, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(GRANT_TTL_MS)))?;
    while let Ok(msg) = read_message(&mut stream) {
        if let Message::Reminder { class, .. } = msg {
            shared.admission.lock().state.leave_reminder(class);
        } else {
            break;
        }
    }
    Ok(())
}

/// Streams this supplier's share of the assignment, paced so that segment
/// `p` (the supplier's `p`-th transmission, 0-based) finishes arriving at
/// `(p+1) · spp · δt` after session start — the §3 transmission model.
fn stream_session(
    shared: &Arc<SupplierShared>,
    stream: &mut TcpStream,
    session: u64,
    plan: &SessionPlan,
) -> io::Result<()> {
    // O(1) snapshot: MediaFile is a shared view of one allocation, so
    // taking a per-session copy out of the mutex duplicates no payload
    // bytes, and the serving loop below never copies them either —
    // `segment` returns a view and `write_message` splices it onto the
    // socket behind a fixed-size header.
    let file = shared
        .file
        .lock()
        .clone()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "media file vanished"))?;

    let per_period = plan.segments.len() as u64;
    if per_period == 0 || plan.period == 0 || !(plan.period as u64).is_multiple_of(per_period) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed session plan",
        ));
    }
    let spp = plan.period as u64 / per_period;
    let start = std::time::Instant::now();

    for p in 0u64.. {
        if shared.stop.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "supplier shutting down mid-session",
            ));
        }
        let seg =
            (p / per_period) * plan.period as u64 + plan.segments[(p % per_period) as usize] as u64;
        if seg >= plan.total_segments || seg >= file.info().segment_count() {
            break;
        }
        let arrival = Duration::from_millis((p + 1) * spp * plan.dt_ms as u64);
        if let Some(wait) = arrival.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let segment = file.segment(seg);
        write_message(
            &mut *stream,
            &Message::SegmentData {
                session,
                index: seg,
                payload: segment.into_payload(),
            },
        )?;
    }
    write_message(&mut *stream, &Message::EndSession { session })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_core::admission::{Protocol, SupplierConfig};
    use rand::SeedableRng;

    fn guard() -> AdmissionGuard {
        let cfg = SupplierConfig::new(4, 0, Protocol::Dac).unwrap();
        AdmissionGuard {
            state: SupplierState::new(PeerClass::HIGHEST, cfg, 0).unwrap(),
            rng: SmallRng::seed_from_u64(1),
            reserved_at: None,
        }
    }

    #[test]
    fn reservation_expires_after_ttl() {
        let mut g = guard();
        g.reserved_at = Some(1_000);
        assert!(g.reservation_active(1_000 + GRANT_TTL_MS));
        assert!(!g.reservation_active(1_001 + GRANT_TTL_MS));
        assert_eq!(g.reserved_at, None, "expired reservation is cleared");
    }

    #[test]
    fn no_reservation_is_inactive() {
        let mut g = guard();
        assert!(!g.reservation_active(0));
    }
}
