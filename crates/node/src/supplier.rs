//! Shared supplier-side state: admission guard, media file, clock.
//!
//! The connection handling itself is event-driven and lives in
//! [`crate::serve`]; this module owns the state a node's public handle
//! and its reactor-hosted connections share.

use parking_lot::Mutex;
use rand::rngs::SmallRng;

use p2ps_core::admission::SupplierState;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaFile;

use crate::Clock;

/// How long a grant reserves the supplier while the requester assembles
/// its supplier set (see the crate docs on the grant/confirm race).
pub(crate) const GRANT_TTL_MS: u64 = 3_000;

/// State shared between a node's reactor-hosted connections and its
/// public handle.
pub(crate) struct SupplierShared {
    /// Kept for diagnostics/log context even though the protocol itself
    /// never needs the supplier's own id after registration.
    #[allow(dead_code)]
    pub id: PeerId,
    pub class: PeerClass,
    pub clock: Clock,
    pub admission: Mutex<AdmissionGuard>,
    /// The media file, present once the peer owns a complete copy.
    pub file: Mutex<Option<MediaFile>>,
    /// Set on shutdown: in-flight streaming sessions abort (modelling a
    /// supplier crash mid-session).
    pub stop: std::sync::atomic::AtomicBool,
}

/// The admission state plus the grant reservation extension.
pub(crate) struct AdmissionGuard {
    pub state: SupplierState,
    pub rng: SmallRng,
    /// Tick (ms) at which an unconfirmed grant was issued, if any.
    pub reserved_at: Option<u64>,
}

impl AdmissionGuard {
    pub(crate) fn reservation_active(&mut self, now: u64) -> bool {
        match self.reserved_at {
            Some(at) if now.saturating_sub(at) <= GRANT_TTL_MS => true,
            Some(_) => {
                self.reserved_at = None; // expired: requester went away
                false
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_core::admission::{Protocol, SupplierConfig};
    use rand::SeedableRng;

    fn guard() -> AdmissionGuard {
        let cfg = SupplierConfig::new(4, 0, Protocol::Dac).unwrap();
        AdmissionGuard {
            state: SupplierState::new(PeerClass::HIGHEST, cfg, 0).unwrap(),
            rng: SmallRng::seed_from_u64(1),
            reserved_at: None,
        }
    }

    #[test]
    fn reservation_expires_after_ttl() {
        let mut g = guard();
        g.reserved_at = Some(1_000);
        assert!(g.reservation_active(1_000 + GRANT_TTL_MS));
        assert!(!g.reservation_active(1_001 + GRANT_TTL_MS));
        assert_eq!(g.reserved_at, None, "expired reservation is cleared");
    }

    #[test]
    fn no_reservation_is_inactive() {
        let mut g = guard();
        assert!(!g.reservation_active(0));
    }
}
