//! The reactor-backed node runtime: supplier serving + requester hosting.
//!
//! A [`NodeReactor`] is a [`ReactorPool`] of 1..N epoll threads carrying
//! *both* halves of any number of peer nodes. The supplier side — the
//! `DACp2p` admission handshake, reminder collection, and §3 paced
//! segment streaming — runs as event-driven per-connection state
//! machines, pacing on timer-wheel deadlines instead of `thread::sleep`.
//! The requester side ([`crate::requester`]) hands its granted
//! connections here too: a sans-io `RequesterSession` per session
//! receives the paced stream, with supplier departures replanned live.
//! A session occupies connection slots and timers — never a thread — so
//! one process sustains thousands of full-duplex sessions, sharded
//! across reactor threads by node tag (supplier side) and session id
//! (requester side).

use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use p2ps_core::admission::RequestDecision;
use p2ps_core::PeerClass;
use p2ps_media::MediaFile;
use p2ps_monitor::{Counter, Gauge, Monitor};
use p2ps_net::{ConnId, Ctx, Handler, PoolHandle, ReactorConfig, ReactorPool};
use p2ps_proto::{FrameDecoder, FrameEncoder, Message, SessionPlan, SupplierSchedule};

use crate::admission_host::{AdmissionLaunch, Admissions};
use crate::requester::ReqSessions;
use crate::supplier::{SupplierShared, GRANT_TTL_MS};
use crate::watchdog::{Watchdog, WatchdogConfig};

/// Read-progress timer: fires when the peer goes quiet in a phase that
/// expects it to speak.
const K_READ: u32 = 0;
/// Pacing timer: fires at the next segment's §3 arrival deadline.
const K_PACE: u32 = 1;

/// Soft backpressure bound: while more than this many bytes sit unsent
/// in the socket queue, pacing yields and retries shortly instead of
/// piling on (only reachable when deadlines are far behind, e.g. dt=0
/// throughput runs).
const PACE_BACKPRESSURE_BYTES: usize = 1 << 20;

/// Commands other threads send a running node reactor.
pub(crate) enum NodeCmd {
    /// A peer node starts serving: its listener connections (tagged
    /// `tag`) are handled against this shared supplier state.
    Attach {
        /// The listener tag (one per peer node).
        tag: u64,
        /// The node's admission + media state.
        shared: Arc<SupplierShared>,
    },
    /// The peer node is shutting down: drop its state and connections.
    Detach {
        /// The tag passed at attach time.
        tag: u64,
    },
    /// Run a requesting peer's §4.2 admission round on this shard:
    /// adopt one connection per candidate lane, drive the pipelined
    /// sans-io `AdmissionDriver`, and on admission transition the
    /// granted lanes straight into a receiving session (boxed: the
    /// launch carries streams, classes and a result channel).
    StartAdmission(Box<AdmissionLaunch>),
    /// The stall watchdog flagged `session` on this shard: fail its
    /// stalest quiet lane and replan the share over the survivors
    /// (`grace_ms` is the watchdog's own quiet bound, reused for the
    /// per-lane staleness test).
    Recover {
        /// The flagged session's id.
        session: u64,
        /// Slack past the session stride before a lane counts as quiet.
        grace_ms: u64,
    },
}

/// Per-connection protocol phase (the supplier half of §4.2).
enum Phase {
    /// Fresh connection: the first frame must be a `StreamRequest`.
    AwaitRequest,
    /// Grant sent; a `StartSession` must confirm within the grant TTL.
    AwaitStart { session: u64 },
    /// Busy denial sent; absorbing `Reminder`s until the peer hangs up.
    Reminders,
    /// Boxed: the stream state dwarfs the handshake phases.
    Streaming(Box<StreamState>),
}

/// An in-flight paced streaming session.
struct StreamState {
    session: u64,
    /// O(1) snapshot: a shared view of the node's media allocation.
    file: MediaFile,
    /// The sans-io transmission schedule (base plan expansion, appended
    /// replan shares, §3 pacing stride) — the same machine the
    /// deterministic simulation harness drives without sockets.
    sched: SupplierSchedule,
    /// Reactor time at `StartSession`.
    start_ms: u64,
}

struct ConnState {
    tag: u64,
    shared: Arc<SupplierShared>,
    dec: FrameDecoder,
    phase: Phase,
}

/// What to do with a connection after handling one message.
enum Flow {
    /// Keep decoding.
    Keep,
    /// Protocol violation or finished without pending bytes: close now.
    CloseNow,
    /// Goodbye frames queued; close once they flush.
    CloseAfterFlush,
}

/// Supplier-side shard metrics, registered on the shard's
/// `reactor={i}` monitor scope next to the `p2ps-net` reactor stats.
/// Updates are single relaxed atomics — no locks on the serving path.
struct ServeStats {
    /// Peer nodes attached to this shard.
    hosted_nodes: Gauge,
    /// Supplier-side paced sessions currently streaming.
    active_streams: Gauge,
    segments_sent: Counter,
    bytes_sent: Counter,
    /// Supplier-side sessions whose whole schedule was served.
    streams_completed: Counter,
}

impl ServeStats {
    fn register(monitor: &Monitor) -> ServeStats {
        ServeStats {
            hosted_nodes: monitor.gauge("hosted_nodes", "peer nodes attached to this shard"),
            active_streams: monitor.gauge(
                "active_streams",
                "supplier-side paced sessions currently streaming",
            ),
            segments_sent: monitor.counter("segments_sent_total", "media segments served"),
            bytes_sent: monitor.counter("bytes_sent_total", "segment payload bytes served"),
            streams_completed: monitor.counter(
                "streams_completed_total",
                "supplier-side sessions whose whole schedule was served",
            ),
        }
    }
}

/// The reactor handler multiplexing every attached node's supplier side
/// plus every requester session routed to this shard.
pub(crate) struct NodeServeHandler {
    nodes: HashMap<u64, Arc<SupplierShared>>,
    conns: HashMap<ConnId, ConnState>,
    /// Reactor-hosted receiving sessions (the requester half).
    req: ReqSessions,
    /// Reactor-hosted admission rounds (the requester's §4.2 probe).
    adm: Admissions,
    stats: ServeStats,
    /// Root counter: watchdog-escalated recoveries where survivors
    /// absorbed the stalest lane's share.
    recoveries: Counter,
    /// Root counter: watchdog-escalated recoveries that ended the
    /// session (`SuppliersLost`).
    giveups: Counter,
}

impl Default for NodeServeHandler {
    /// A handler reporting to a detached monitor (tests and embedders
    /// that don't scrape).
    fn default() -> Self {
        let detached = Monitor::default();
        let (recoveries, giveups) = recovery_counters(&detached);
        NodeServeHandler::new(&detached, recoveries, giveups)
    }
}

/// Registers the watchdog-recovery outcome counters on `root` (shared by
/// every shard's handler, so the totals are process-wide).
pub(crate) fn recovery_counters(root: &Monitor) -> (Counter, Counter) {
    (
        root.counter(
            "watchdog_recoveries_total",
            "stalled sessions replanned onto surviving suppliers",
        ),
        root.counter(
            "watchdog_giveups_total",
            "stalled sessions abandoned after bounded recovery attempts",
        ),
    )
}

/// Queues every chunk of `msg`'s frame on `conn` — the one place that
/// knows a frame may be two chunks (header + zero-copy payload), so no
/// call site can truncate a payload-bearing message.
pub(crate) fn send(ctx: &mut Ctx<'_>, conn: ConnId, msg: &Message) {
    let (head, payload) = FrameEncoder::frame(msg);
    // Both chunks queue before the one flush: header + payload leave in
    // a single writev, the same syscall shape as the blocking path.
    ctx.send_all(conn, std::iter::once(head).chain(payload));
}

impl NodeServeHandler {
    /// A handler whose shard metrics register on `monitor` (the shard's
    /// `reactor={i}` scope); the recovery counters live at the root,
    /// shared across shards.
    pub(crate) fn new(monitor: &Monitor, recoveries: Counter, giveups: Counter) -> Self {
        NodeServeHandler {
            nodes: HashMap::new(),
            conns: HashMap::new(),
            req: ReqSessions::default(),
            adm: Admissions::default(),
            stats: ServeStats::register(monitor),
            recoveries,
            giveups,
        }
    }

    /// Runs the admission decision for a fresh `StreamRequest` — the same
    /// logic the blocking path used, shared state and all.
    fn decide(shared: &SupplierShared, requester_class: PeerClass) -> RequestDecision {
        let now = shared.clock.now_ms();
        let has_file = shared.file.lock().is_some();
        let mut guard = shared.admission.lock();
        if !has_file {
            // Not yet a supplier: refuse outright (never advertised in the
            // directory, but a stale candidate record could still point
            // here).
            RequestDecision::Refused
        } else if guard.reservation_active(now) {
            // Reserved by a concurrent requester: behave as busy. The
            // favored flag still reflects the current vector so the
            // requester's reminder logic stays sound.
            let favored = guard.state.vector_at(now).favors(requester_class);
            RequestDecision::Busy { favored }
        } else {
            let mut rng = std::mem::replace(&mut guard.rng, SmallRng::seed_from_u64(0));
            let d = guard.state.handle_request(now, requester_class, &mut rng);
            guard.rng = rng;
            if d.is_granted() {
                guard.reserved_at = Some(now);
            }
            d
        }
    }

    fn on_message(
        &self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        st: &mut ConnState,
        msg: Message,
    ) -> Flow {
        match (&mut st.phase, msg) {
            (Phase::AwaitRequest, Message::StreamRequest { session, class }) => {
                match Self::decide(&st.shared, class) {
                    RequestDecision::Granted => {
                        send(
                            ctx,
                            conn,
                            &Message::Grant {
                                session,
                                class: st.shared.class,
                            },
                        );
                        st.phase = Phase::AwaitStart { session };
                        ctx.set_timer(conn, K_READ, GRANT_TTL_MS);
                        Flow::Keep
                    }
                    RequestDecision::Refused => {
                        send(
                            ctx,
                            conn,
                            &Message::Deny {
                                session,
                                busy: false,
                                favored: false,
                            },
                        );
                        Flow::CloseAfterFlush
                    }
                    RequestDecision::Busy { favored } => {
                        send(
                            ctx,
                            conn,
                            &Message::Deny {
                                session,
                                busy: true,
                                favored,
                            },
                        );
                        st.phase = Phase::Reminders;
                        ctx.set_timer(conn, K_READ, GRANT_TTL_MS);
                        Flow::Keep
                    }
                }
            }
            (
                Phase::AwaitStart { session },
                Message::StartSession {
                    session: confirmed,
                    plan,
                },
            ) if confirmed == *session => {
                let session = *session;
                match self.start_streaming(ctx, conn, st, session, plan) {
                    Ok(()) => Flow::Keep,
                    Err(_) => {
                        st.shared.admission.lock().reserved_at = None;
                        Flow::CloseNow
                    }
                }
            }
            (Phase::AwaitStart { .. }, _) => {
                // Release, junk, or a mismatched session id: drop the
                // reservation and hang up.
                st.shared.admission.lock().reserved_at = None;
                Flow::CloseNow
            }
            (Phase::Reminders, Message::Reminder { class, .. }) => {
                st.shared.admission.lock().state.leave_reminder(class);
                ctx.set_timer(conn, K_READ, GRANT_TTL_MS);
                Flow::Keep
            }
            (Phase::Reminders, _) => Flow::CloseNow,
            // Mid-stream replan: after losing another supplier the
            // requester appends an *explicit* share of the lost segments
            // to this one's schedule. Served after the running plan, at
            // the same pacing stride.
            (
                Phase::Streaming(ref mut s),
                Message::StartSession {
                    session: confirmed,
                    plan,
                },
            ) if confirmed == s.session && plan.is_explicit() => {
                s.sched.append(plan.segments.iter().copied());
                Flow::Keep
            }
            // Otherwise the requester does not speak during streaming;
            // tolerate noise (e.g. an early EndSession) without dropping
            // pacing.
            (Phase::Streaming(_), _) => Flow::Keep,
            (Phase::AwaitRequest, _) => Flow::CloseNow,
        }
    }

    /// Confirms the grant and arms the first pacing deadline.
    fn start_streaming(
        &self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        st: &mut ConnState,
        session: u64,
        plan: SessionPlan,
    ) -> io::Result<()> {
        let file = st
            .shared
            .file
            .lock()
            .clone()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "media file vanished"))?;
        // The schedule validates the plan and derives the pacing stride
        // (periodic §3 plans tile their period; explicit one-shot plans
        // pace at this supplier's own class rate).
        let sched = SupplierSchedule::new(plan, u64::from(st.shared.class.slots_per_segment()))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        {
            let mut guard = st.shared.admission.lock();
            guard.reserved_at = None;
            guard.state.begin_session(st.shared.clock.now_ms());
        }
        let stream = StreamState {
            session,
            file,
            sched,
            start_ms: ctx.now_ms(),
        };
        ctx.cancel_timer(conn, K_READ);
        st.phase = Phase::Streaming(Box::new(stream));
        self.stats.active_streams.add(1);
        // First deadline may be 0 ms out (dt=0 plans): fire promptly.
        ctx.set_timer(conn, K_PACE, 0);
        Ok(())
    }

    /// Sends every segment whose §3 deadline `(p+1)·spp·δt` has passed,
    /// then re-arms the pacing timer for the next one. Returns the flow
    /// for the connection.
    fn pace(&self, ctx: &mut Ctx<'_>, conn: ConnId, st: &mut ConnState) -> Flow {
        let Phase::Streaming(ref mut s) = st.phase else {
            return Flow::Keep; // stale pace timer from a replaced phase
        };
        if st.shared.stop.load(Ordering::Relaxed) {
            // Supplier shutting down mid-session (modelling a crash): the
            // requester sees the connection drop, not an EndSession.
            return Flow::CloseNow;
        }
        // The plan already bounds by its own total; a shorter local file
        // copy additionally caps what can be served.
        let cap = s.file.info().segment_count();
        loop {
            let Some(seg) = s.sched.next_unsent(cap) else {
                let session = s.session;
                send(ctx, conn, &Message::EndSession { session });
                return Flow::CloseAfterFlush;
            };
            let deadline = s.sched.next_deadline_ms(s.start_ms);
            let now = ctx.now_ms();
            if deadline > now {
                ctx.set_timer(conn, K_PACE, deadline - now);
                return Flow::Keep;
            }
            if ctx.pending_write_bytes(conn) > PACE_BACKPRESSURE_BYTES {
                // Far behind schedule and the socket can't drain: yield
                // briefly instead of ballooning the outbound queue.
                ctx.set_timer(conn, K_PACE, 1);
                return Flow::Keep;
            }
            let payload = s.file.segment(seg).into_payload();
            self.stats.segments_sent.incr();
            self.stats.bytes_sent.add(payload.len() as u64);
            send(
                ctx,
                conn,
                &Message::SegmentData {
                    session: s.session,
                    index: seg,
                    payload,
                },
            );
            s.sched.consume();
        }
    }

    /// Rolls back shared admission state for a connection that is going
    /// away in whatever phase it reached.
    fn settle(&self, st: &ConnState) {
        match st.phase {
            Phase::AwaitStart { .. } => {
                st.shared.admission.lock().reserved_at = None;
            }
            Phase::Streaming(_) => {
                self.stats.active_streams.add(-1);
                st.shared
                    .admission
                    .lock()
                    .state
                    .end_session(st.shared.clock.now_ms());
            }
            Phase::AwaitRequest | Phase::Reminders => {}
        }
    }

    /// Applies a [`Flow`] verdict, re-inserting live state.
    fn apply(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, st: ConnState, flow: Flow) -> bool {
        match flow {
            Flow::Keep => {
                self.conns.insert(conn, st);
                true
            }
            Flow::CloseNow => {
                self.settle(&st);
                ctx.close(conn);
                false
            }
            Flow::CloseAfterFlush => {
                self.settle_finished(&st);
                ctx.close_after_flush(conn);
                false
            }
        }
    }

    /// Like [`settle`](Self::settle) but for a cleanly finished exchange:
    /// a completed stream ends its session; other phases have nothing
    /// reserved.
    fn settle_finished(&self, st: &ConnState) {
        if let Phase::Streaming(_) = st.phase {
            self.stats.active_streams.add(-1);
            self.stats.streams_completed.incr();
            st.shared
                .admission
                .lock()
                .state
                .end_session(st.shared.clock.now_ms());
        }
    }
}

impl Handler for NodeServeHandler {
    type Cmd = NodeCmd;

    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: NodeCmd) {
        match cmd {
            NodeCmd::Attach { tag, shared } => {
                if self.nodes.insert(tag, shared).is_none() {
                    self.stats.hosted_nodes.add(1);
                }
            }
            NodeCmd::Detach { tag } => {
                if self.nodes.remove(&tag).is_some() {
                    self.stats.hosted_nodes.add(-1);
                }
                let doomed: Vec<ConnId> = self
                    .conns
                    .iter()
                    .filter(|(_, st)| st.tag == tag)
                    .map(|(id, _)| *id)
                    .collect();
                for id in doomed {
                    if let Some(st) = self.conns.remove(&id) {
                        self.settle(&st);
                        ctx.close(id);
                    }
                }
            }
            NodeCmd::StartAdmission(launch) => {
                if let Some(ready) = self.adm.start(ctx, *launch) {
                    self.req.start_adopted(ctx, ready);
                }
            }
            NodeCmd::Recover { session, grace_ms } => {
                self.req
                    .recover(ctx, session, grace_ms, &self.recoveries, &self.giveups);
            }
        }
    }

    fn on_accept(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, listener_tag: u64) {
        let Some(shared) = self.nodes.get(&listener_tag) else {
            ctx.close(conn);
            return;
        };
        self.conns.insert(
            conn,
            ConnState {
                tag: listener_tag,
                shared: Arc::clone(shared),
                dec: FrameDecoder::new(),
                phase: Phase::AwaitRequest,
            },
        );
        ctx.set_timer(conn, K_READ, GRANT_TTL_MS * 2);
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        if self.req.owns(conn) {
            self.req.on_data(ctx, conn, data);
            return;
        }
        if self.adm.owns(conn) {
            if let Some(ready) = self.adm.on_data(ctx, conn, data) {
                self.req.start_adopted(ctx, ready);
            }
            return;
        }
        let Some(mut st) = self.conns.remove(&conn) else {
            return;
        };
        st.dec.feed(data);
        loop {
            match st.dec.poll() {
                Ok(Some(msg)) => {
                    let flow = self.on_message(ctx, conn, &mut st, msg);
                    if !matches!(flow, Flow::Keep) {
                        self.apply(ctx, conn, st, flow);
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.apply(ctx, conn, st, Flow::CloseNow);
                    return;
                }
            }
        }
        self.conns.insert(conn, st);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, kind: u32) {
        if self.req.owns(conn) {
            self.req.on_timer(ctx, conn, kind);
            return;
        }
        if self.adm.owns(conn) {
            if let Some(ready) = self.adm.on_timer(ctx, conn, kind) {
                self.req.start_adopted(ctx, ready);
            }
            return;
        }
        let Some(mut st) = self.conns.remove(&conn) else {
            return;
        };
        match kind {
            K_PACE => {
                let flow = self.pace(ctx, conn, &mut st);
                self.apply(ctx, conn, st, flow);
            }
            // K_READ (and anything unknown): the peer went quiet in a
            // phase that expected progress.
            _ => {
                self.apply(ctx, conn, st, Flow::CloseNow);
            }
        }
    }

    fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        if self.req.owns(conn) {
            self.req.on_close(ctx, conn);
            return;
        }
        if self.adm.owns(conn) {
            if let Some(ready) = self.adm.on_close(ctx, conn) {
                self.req.start_adopted(ctx, ready);
            }
            return;
        }
        if let Some(st) = self.conns.remove(&conn) {
            self.settle(&st);
        }
    }
}

/// The node runtime's reactor pool, shared by any number of
/// [`PeerNode`](crate::PeerNode)s.
///
/// Each node registers its listener here
/// ([`PeerNode::spawn_on`](crate::PeerNode::spawn_on)) and routes its
/// requester sessions here too; with [`with_threads`](Self::with_threads)
/// the pool shards nodes (by tag) and sessions (by session id) across N
/// reactor threads, one epoll loop per core. [`new`](Self::new) keeps the
/// single-thread behavior of earlier releases. A node spawned without an
/// explicit reactor owns a private one.
///
/// # Examples
///
/// ```no_run
/// use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeReactor, PeerNode};
/// use p2ps_core::{PeerClass, PeerId};
/// use p2ps_core::assignment::SegmentDuration;
/// use p2ps_media::MediaInfo;
///
/// let dir = DirectoryServer::start()?;
/// // 8 supplier nodes sharded over 2 serving threads.
/// let reactor = NodeReactor::with_threads(2)?;
/// let clock = Clock::new();
/// let info = MediaInfo::new("demo", 16, SegmentDuration::from_millis(10), 512);
/// let nodes: Vec<PeerNode> = (0..8u64)
///     .map(|i| {
///         let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
///         PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor)
///     })
///     .collect::<std::io::Result<_>>()?;
/// # drop(nodes);
/// reactor.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct NodeReactor {
    pool: ReactorPool<NodeCmd>,
    monitor: Monitor,
    watchdog: Watchdog,
}

impl NodeReactor {
    /// Starts a single reactor thread (the source-compatible default).
    ///
    /// # Errors
    ///
    /// Propagates epoll / self-pipe creation errors.
    pub fn new() -> io::Result<Self> {
        Self::with_threads(1)
    }

    /// Starts a pool of `threads` reactor threads (clamped to at least
    /// one). Nodes and sessions registered through this reactor are
    /// hash-sharded across them; every connection's events stay on its
    /// shard's thread.
    ///
    /// # Errors
    ///
    /// Propagates epoll / self-pipe creation errors.
    pub fn with_threads(threads: usize) -> io::Result<Self> {
        Self::with_options(threads, WatchdogConfig::default())
    }

    /// Like [`with_threads`](Self::with_threads) with an explicit stall
    /// [`WatchdogConfig`] (tight graces for tests, long ones for
    /// production scrapes).
    ///
    /// # Errors
    ///
    /// Propagates epoll / self-pipe creation errors.
    pub fn with_options(threads: usize, watchdog: WatchdogConfig) -> io::Result<Self> {
        let monitor = Monitor::root();
        let cfg = ReactorConfig {
            monitor: monitor.clone(),
            ..ReactorConfig::default()
        };
        let (recoveries, giveups) = recovery_counters(&monitor);
        let pool = ReactorPool::spawn(threads, cfg, |i| {
            NodeServeHandler::new(
                &monitor.child("reactor", i),
                recoveries.clone(),
                giveups.clone(),
            )
        })?;
        // The watchdog escalates each flagged session back into its own
        // reactor shard, where the recovery replan runs.
        let watchdog = Watchdog::start(monitor.clone(), watchdog, Some(pool.handle()));
        Ok(NodeReactor {
            pool,
            monitor,
            watchdog,
        })
    }

    /// Number of reactor threads in the pool.
    pub fn thread_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// The root of this reactor's introspection tree: per-shard
    /// `reactor={i}` scopes carrying the epoll loop's own stats, the
    /// supplier-side serve stats and every hosted session's probe.
    /// Snapshot it directly or serve it via
    /// `p2ps_monitor::StatusServer`.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    pub(crate) fn handle(&self) -> PoolHandle<NodeCmd> {
        self.pool.handle()
    }

    /// Stops every reactor thread and joins it; all hosted connections
    /// drop (in-flight sessions abort like a supplier crash).
    pub fn shutdown(self) {
        let NodeReactor {
            pool,
            monitor: _,
            watchdog,
        } = self;
        drop(watchdog); // stop flagging before sessions abort
        pool.shutdown();
    }
}
