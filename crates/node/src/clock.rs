//! Millisecond ticks for the admission state machines.

use std::sync::Arc;
use std::time::Instant;

/// A shared monotonic clock translating wall time into the `u64`
/// millisecond ticks the `p2ps-core` admission state machines expect.
///
/// Every node of a deployment clones one clock so that their admission
/// timers (idle relaxation `T_out`, reservations) share an origin.
///
/// # Examples
///
/// ```
/// use p2ps_node::Clock;
///
/// let clock = Clock::new();
/// let t0 = clock.now_ms();
/// let later = clock.clone();
/// assert!(later.now_ms() >= t0);
/// ```
#[derive(Debug, Clone)]
pub struct Clock {
    origin: Arc<Instant>,
}

impl Clock {
    /// Creates a clock anchored at the current instant.
    pub fn new() -> Self {
        Clock {
            origin: Arc::new(Instant::now()),
        }
    }

    /// Milliseconds elapsed since the clock's origin.
    pub fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_shared() {
        let a = Clock::new();
        let b = a.clone();
        let t1 = a.now_ms();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t2 = b.now_ms();
        assert!(t2 >= t1 + 4, "clones share the origin: {t1} -> {t2}");
    }

    #[test]
    fn default_is_fresh() {
        assert!(Clock::default().now_ms() < 1_000);
    }
}
