//! The TCP directory server and its client helpers.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::{PeerClass, PeerId};
use p2ps_proto::{read_message, write_message, CandidateRecord, Message};

/// How the lookup service indexes its supplier records.
///
/// The paper names two options (§4.2 footnote 4): a Napster-style central
/// table and a Chord ring. Both are served through the same TCP front-end.
trait LookupBackend: Send {
    fn register(&mut self, item: &str, rec: CandidateRecord);
    fn sample(&mut self, item: &str, m: usize, rng: &mut SmallRng) -> Vec<CandidateRecord>;
}

/// In-memory registry behind the directory server: item → suppliers.
#[derive(Debug, Default)]
struct Registry {
    items: HashMap<String, Vec<CandidateRecord>>,
}

impl LookupBackend for Registry {
    fn register(&mut self, item: &str, rec: CandidateRecord) {
        let list = self.items.entry(item.to_owned()).or_default();
        match list.iter_mut().find(|c| c.id == rec.id) {
            Some(existing) => *existing = rec,
            None => list.push(rec),
        }
    }

    fn sample(&mut self, item: &str, m: usize, rng: &mut SmallRng) -> Vec<CandidateRecord> {
        let Some(list) = self.items.get(item) else {
            return Vec::new();
        };
        let n = list.len();
        let m = m.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let j = i + rng.gen_range(0..n - i);
            pool.swap(i, j);
            out.push(list[pool[i]]);
        }
        out
    }
}

/// A Chord ring as the lookup index: supplier lists live at the item
/// key's successor node and every query routes through finger tables.
/// Ports (not part of the generic `CandidateInfo`) ride in a side table.
struct ChordBackend {
    ring: p2ps_lookup::chord::ChordRing,
    ports: HashMap<u64, u16>,
}

impl ChordBackend {
    fn new(index_nodes: u64) -> Self {
        let mut ring = p2ps_lookup::chord::ChordRing::new();
        for i in 0..index_nodes.max(1) {
            // Index nodes get ids far away from peer ids to avoid clashes.
            ring.join(p2ps_core::PeerId::new(u64::MAX - i));
        }
        ChordBackend {
            ring,
            ports: HashMap::new(),
        }
    }
}

impl LookupBackend for ChordBackend {
    fn register(&mut self, item: &str, rec: CandidateRecord) {
        use p2ps_lookup::Rendezvous;
        self.ring.register(item, rec.id, rec.class);
        self.ports.insert(rec.id.get(), rec.port);
    }

    fn sample(&mut self, item: &str, m: usize, rng: &mut SmallRng) -> Vec<CandidateRecord> {
        use p2ps_lookup::Rendezvous;
        self.ring
            .sample(item, m, rng)
            .into_iter()
            .filter_map(|c| {
                Some(CandidateRecord {
                    id: c.id,
                    class: c.class,
                    port: *self.ports.get(&c.id.get())?,
                })
            })
            .collect()
    }
}

/// A Napster-style directory server listening on a loopback TCP port
/// (paper §4.2 footnote 4).
///
/// Peers send [`Message::Register`] to announce themselves as suppliers
/// and [`Message::QueryCandidates`] to obtain `M` random candidates with
/// their classes and ports.
///
/// # Examples
///
/// ```
/// use p2ps_node::DirectoryServer;
///
/// let dir = DirectoryServer::start()?;
/// assert_ne!(dir.port(), 0);
/// dir.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct DirectoryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DirectoryServer {
    /// Binds an ephemeral loopback port and starts serving with a
    /// centralized (Napster-style) index.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn start() -> io::Result<Self> {
        Self::start_on(0)
    }

    /// Like [`start`](Self::start), but binds the loopback port `port`
    /// (`0` picks an ephemeral port). Scripts that must hand the
    /// directory address to other processes use this to get a
    /// predictable address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener — in
    /// particular `AddrInUse` when `port` is already taken.
    pub fn start_on(port: u16) -> io::Result<Self> {
        Self::start_with_backend(Box::new(Registry::default()), port)
    }

    /// Like [`start`](Self::start), but the index is a Chord ring of
    /// `index_nodes` nodes: supplier lists live at each item key's
    /// successor and queries route through finger tables — the paper's
    /// distributed lookup option, behind the same wire protocol.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn start_with_chord(index_nodes: u64) -> io::Result<Self> {
        Self::start_with_backend(Box::new(ChordBackend::new(index_nodes)), 0)
    }

    fn start_with_backend(backend: Box<dyn LookupBackend>, port: u16) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Mutex::new(backend));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("p2ps-directory".into())
            .spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5eed);
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = Self::serve_connection(stream, &registry, &mut rng);
                }
            })
            .expect("spawning the directory thread cannot fail");
        Ok(DirectoryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    fn serve_connection(
        mut stream: TcpStream,
        registry: &Mutex<Box<dyn LookupBackend>>,
        rng: &mut SmallRng,
    ) -> io::Result<()> {
        stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
        loop {
            let msg = match read_message(&mut stream) {
                Ok(m) => m,
                Err(_) => return Ok(()), // peer closed or timed out
            };
            match msg {
                Message::Register {
                    item,
                    peer,
                    class,
                    port,
                } => {
                    registry.lock().register(
                        &item,
                        CandidateRecord {
                            id: peer,
                            class,
                            port,
                        },
                    );
                }
                Message::QueryCandidates { item, m } => {
                    let list = registry.lock().sample(&item, m as usize, rng);
                    write_message(&mut stream, &Message::Candidates { list })?;
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("directory got unexpected {}", other.name()),
                    ));
                }
            }
        }
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The listening port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with one dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DirectoryServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

/// Registers `peer` as a supplier of `item` with the directory at `dir`.
///
/// # Errors
///
/// Propagates socket errors.
pub fn register_supplier(
    dir: SocketAddr,
    item: &str,
    peer: PeerId,
    class: PeerClass,
    port: u16,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(dir)?;
    write_message(
        &mut stream,
        &Message::Register {
            item: item.to_owned(),
            peer,
            class,
            port,
        },
    )
}

/// Queries the directory at `dir` for up to `m` candidates for `item`.
///
/// # Errors
///
/// Propagates socket errors; a malformed response surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn query_candidates(dir: SocketAddr, item: &str, m: usize) -> io::Result<Vec<CandidateRecord>> {
    let mut stream = TcpStream::connect(dir)?;
    write_message(
        &mut stream,
        &Message::QueryCandidates {
            item: item.to_owned(),
            m: m as u16,
        },
    )?;
    match read_message(&mut stream)? {
        Message::Candidates { list } => Ok(list),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected candidates, got {}", other.name()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    #[test]
    fn register_then_query() {
        let dir = DirectoryServer::start().unwrap();
        for i in 0..10u64 {
            register_supplier(
                dir.addr(),
                "video",
                PeerId::new(i),
                class(1 + (i % 4) as u8),
                9000 + i as u16,
            )
            .unwrap();
        }
        // Registration is async relative to the query connection; retry
        // briefly until all writes are applied.
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "video", 8).unwrap();
            if got.len() == 8 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 8);
        let mut ids: Vec<u64> = got.iter().map(|c| c.id.get()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "candidates are distinct");
        dir.shutdown();
    }

    #[test]
    fn start_on_binds_the_requested_port() {
        // Grab a free port, release it, then ask the directory for it.
        // Another thread/process can steal the port in the gap, so retry
        // with a fresh probe instead of flaking.
        let (dir, port) = (0..16)
            .find_map(|_| {
                let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
                let port = probe.local_addr().unwrap().port();
                drop(probe);
                DirectoryServer::start_on(port).ok().map(|d| (d, port))
            })
            .expect("a freshly released loopback port should be bindable");
        assert_eq!(dir.port(), port);
        register_supplier(dir.addr(), "v", PeerId::new(1), class(2), 4242).unwrap();
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "v", 4).unwrap();
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 1, "directory on the requested port serves");
        // A second bind on the same port must fail loudly, not silently
        // fall back to an ephemeral port.
        assert!(DirectoryServer::start_on(port).is_err());
        dir.shutdown();
    }

    #[test]
    fn unknown_item_yields_empty() {
        let dir = DirectoryServer::start().unwrap();
        let got = query_candidates(dir.addr(), "nope", 8).unwrap();
        assert!(got.is_empty());
        dir.shutdown();
    }

    #[test]
    fn reregistration_replaces_record() {
        let dir = DirectoryServer::start().unwrap();
        register_supplier(dir.addr(), "v", PeerId::new(1), class(4), 1111).unwrap();
        register_supplier(dir.addr(), "v", PeerId::new(1), class(2), 2222).unwrap();
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "v", 8).unwrap();
            if got.len() == 1 && got[0].port == 2222 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].class, class(2));
        assert_eq!(got[0].port, 2222);
        dir.shutdown();
    }

    #[test]
    fn chord_backend_round_trips() {
        let dir = DirectoryServer::start_with_chord(16).unwrap();
        for i in 0..6u64 {
            register_supplier(
                dir.addr(),
                "chord-item",
                PeerId::new(i),
                class(1 + (i % 4) as u8),
                7000 + i as u16,
            )
            .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "chord-item", 8).unwrap();
            if got.len() == 6 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 6, "all suppliers reachable through the ring");
        for c in &got {
            assert_eq!(c.port, 7000 + c.id.get() as u16, "ports survive the ring");
        }
        assert!(query_candidates(dir.addr(), "other-item", 4)
            .unwrap()
            .is_empty());
        dir.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let dir = DirectoryServer::start().unwrap();
        let addr = dir.addr();
        drop(dir);
        // After shutdown new queries fail (connection refused) or at least
        // the port is no longer served; give the OS a moment.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let res = query_candidates(addr, "v", 1);
        assert!(res.is_err() || res.unwrap().is_empty());
    }
}
