//! The TCP directory server and its client helpers.
//!
//! Since the sans-io refactor the server is a [`p2ps_net::Reactor`]
//! handler: every client connection gets its own
//! [`FrameDecoder`](p2ps_proto::FrameDecoder) and a per-connection read
//! timer on the reactor's wheel, so one idle (or malicious) client can
//! never stall other peers' registrations and queries — the flash-crowd
//! property the paper's lookup service needs (§4.2 footnote 4).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::{PeerClass, PeerId};
use p2ps_monitor::{Counter, Gauge, Monitor};
use p2ps_net::{ConnId, Ctx, Handler, Reactor, ReactorConfig};
use p2ps_proto::{read_message, write_message, CandidateRecord, FrameDecoder, Message};

/// How long a directory connection may sit idle before it is dropped.
/// Enforced per connection by the reactor's timer wheel — an idle client
/// holds no thread and blocks nobody.
const DIR_IDLE_TIMEOUT_MS: u64 = 5_000;

/// The read-timeout timer kind on directory connections.
const K_READ: u32 = 0;

/// In-memory registry shard: item → suppliers.
#[derive(Debug, Default)]
struct Registry {
    items: HashMap<String, Vec<CandidateRecord>>,
}

impl Registry {
    /// Returns `true` when the record is new (not a refresh of an
    /// existing supplier), so the caller can track occupancy by delta.
    fn register(&mut self, item: &str, rec: CandidateRecord) -> bool {
        let list = self.items.entry(item.to_owned()).or_default();
        match list.iter_mut().find(|c| c.id == rec.id) {
            Some(existing) => {
                *existing = rec;
                false
            }
            None => {
                list.push(rec);
                true
            }
        }
    }

    fn sample(&self, item: &str, m: usize, rng: &mut SmallRng) -> Vec<CandidateRecord> {
        let Some(list) = self.items.get(item) else {
            return Vec::new();
        };
        let n = list.len();
        let m = m.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let j = i + rng.gen_range(0..n - i);
            pool.swap(i, j);
            out.push(list[pool[i]]);
        }
        out
    }
}

/// The Napster-style supplier index, striped into shards keyed by item
/// hash so registrations and queries touching *different* items never
/// contend on one lock (the write-heavy churn case: every completed
/// session triggers a registration, §2's self-growing property).
///
/// All methods take `&self`; each shard serializes internally. The
/// directory server owns one of these, and the `directory_churn` bench
/// drives it from many threads directly.
///
/// # Examples
///
/// ```
/// use p2ps_node::ShardedRegistry;
/// use p2ps_proto::CandidateRecord;
/// use p2ps_core::{PeerClass, PeerId};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let reg = ShardedRegistry::new(8);
/// reg.register("video", CandidateRecord {
///     id: PeerId::new(1),
///     class: PeerClass::new(2)?,
///     port: 9000,
/// });
/// let mut rng = SmallRng::seed_from_u64(1);
/// assert_eq!(reg.sample("video", 4, &mut rng).len(), 1);
/// assert!(reg.sample("other", 4, &mut rng).is_empty());
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Box<[RegistryStripe]>,
}

/// One stripe: its lock plus an occupancy gauge updated by delta on the
/// stripe's own register path (no extra lock, no full-table walks).
#[derive(Debug)]
struct RegistryStripe {
    registry: Mutex<Registry>,
    /// Supplier records held by this stripe.
    records: Gauge,
}

impl ShardedRegistry {
    /// A registry striped over `shards` locks (at least one).
    pub fn new(shards: usize) -> Self {
        Self::with_monitor(shards, &Monitor::default())
    }

    /// Like [`new`](Self::new), but each stripe registers an occupancy
    /// gauge (`stripe={i}` / `records`) on the given monitor scope, so
    /// `p2psd status` and the exposition endpoint can show how evenly
    /// the supplier index spreads over its locks.
    pub fn with_monitor(shards: usize, monitor: &Monitor) -> Self {
        ShardedRegistry {
            shards: (0..shards.max(1))
                .map(|i| RegistryStripe {
                    registry: Mutex::new(Registry::default()),
                    records: monitor
                        .child("stripe", i)
                        .gauge("records", "supplier records held by this stripe"),
                })
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, item: &str) -> &RegistryStripe {
        let mut h = DefaultHasher::new();
        item.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Registers (or refreshes) `rec` as a supplier of `item`.
    pub fn register(&self, item: &str, rec: CandidateRecord) {
        let stripe = self.shard(item);
        if stripe.registry.lock().register(item, rec) {
            stripe.records.add(1);
        }
    }

    /// Samples up to `m` distinct candidates for `item`.
    pub fn sample(&self, item: &str, m: usize, rng: &mut SmallRng) -> Vec<CandidateRecord> {
        self.shard(item).registry.lock().sample(item, m, rng)
    }
}

/// A Chord ring as the lookup index: supplier lists live at the item
/// key's successor node and every query routes through finger tables.
/// Ports (not part of the generic `CandidateInfo`) ride in a side table.
struct ChordBackend {
    ring: p2ps_lookup::chord::ChordRing,
    ports: HashMap<u64, u16>,
}

impl ChordBackend {
    fn new(index_nodes: u64) -> Self {
        let mut ring = p2ps_lookup::chord::ChordRing::new();
        for i in 0..index_nodes.max(1) {
            // Index nodes get ids far away from peer ids to avoid clashes.
            ring.join(p2ps_core::PeerId::new(u64::MAX - i));
        }
        ChordBackend {
            ring,
            ports: HashMap::new(),
        }
    }

    fn register(&mut self, item: &str, rec: CandidateRecord) {
        use p2ps_lookup::Rendezvous;
        self.ring.register(item, rec.id, rec.class);
        self.ports.insert(rec.id.get(), rec.port);
    }

    fn sample(&mut self, item: &str, m: usize, rng: &mut SmallRng) -> Vec<CandidateRecord> {
        use p2ps_lookup::Rendezvous;
        self.ring
            .sample(item, m, rng)
            .into_iter()
            .filter_map(|c| {
                Some(CandidateRecord {
                    id: c.id,
                    class: c.class,
                    port: *self.ports.get(&c.id.get())?,
                })
            })
            .collect()
    }
}

/// How the lookup service indexes its supplier records: the paper names
/// both a Napster-style central table and a Chord ring (§4.2 footnote 4);
/// both are served through the same reactor front-end.
enum Backend {
    Napster(ShardedRegistry),
    Chord(ChordBackend),
}

impl Backend {
    fn register(&mut self, item: &str, rec: CandidateRecord) {
        match self {
            Backend::Napster(reg) => reg.register(item, rec),
            Backend::Chord(ring) => ring.register(item, rec),
        }
    }

    fn sample(&mut self, item: &str, m: usize, rng: &mut SmallRng) -> Vec<CandidateRecord> {
        match self {
            Backend::Napster(reg) => reg.sample(item, m, rng),
            Backend::Chord(ring) => ring.sample(item, m, rng),
        }
    }
}

/// Per-connection directory state: the frame accumulator plus the last
/// time the client sent anything (for lazy idle-timeout accounting: the
/// timer fires once per timeout window and re-arms from this timestamp,
/// instead of pushing a fresh wheel entry on every received chunk).
struct DirConn {
    dec: FrameDecoder,
    last_data_ms: u64,
}

/// The reactor handler serving the directory protocol: one frame decoder
/// and one idle timer per connection, any number of concurrent clients.
struct DirectoryHandler {
    backend: Backend,
    rng: SmallRng,
    conns: HashMap<ConnId, DirConn>,
    registrations: Counter,
    queries: Counter,
}

impl DirectoryHandler {
    fn handle_message(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Message) -> bool {
        match msg {
            Message::Register {
                item,
                peer,
                class,
                port,
            } => {
                self.registrations.incr();
                self.backend.register(
                    &item,
                    CandidateRecord {
                        id: peer,
                        class,
                        port,
                    },
                );
                true
            }
            Message::QueryCandidates { item, m } => {
                self.queries.incr();
                let list = self.backend.sample(&item, m as usize, &mut self.rng);
                crate::serve::send(ctx, conn, &Message::Candidates { list });
                true
            }
            // Anything else is a protocol violation: hang up.
            _ => false,
        }
    }
}

impl Handler for DirectoryHandler {
    type Cmd = ();

    fn on_command(&mut self, _ctx: &mut Ctx<'_>, _cmd: ()) {}

    fn on_accept(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _tag: u64) {
        self.conns.insert(
            conn,
            DirConn {
                dec: FrameDecoder::new(),
                last_data_ms: ctx.now_ms(),
            },
        );
        ctx.set_timer(conn, K_READ, DIR_IDLE_TIMEOUT_MS);
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let Some(st) = self.conns.get_mut(&conn) else {
            return;
        };
        // Progress: record it; the (single, lazily re-armed) idle timer
        // checks this timestamp when it fires.
        st.last_data_ms = ctx.now_ms();
        st.dec.feed(data);
        loop {
            // Re-borrow the decoder each round: handle_message needs all
            // of `self` in between.
            let polled = self
                .conns
                .get_mut(&conn)
                .expect("conn present while dispatching")
                .dec
                .poll();
            match polled {
                Ok(Some(msg)) => {
                    if !self.handle_message(ctx, conn, msg) {
                        ctx.close(conn);
                        self.conns.remove(&conn);
                        return;
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    ctx.close(conn);
                    self.conns.remove(&conn);
                    return;
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _kind: u32) {
        // Lazy idle check: one wheel entry per timeout window per
        // connection, however chatty the client is.
        let Some(st) = self.conns.get_mut(&conn) else {
            return;
        };
        let idle = ctx.now_ms().saturating_sub(st.last_data_ms);
        if idle >= DIR_IDLE_TIMEOUT_MS {
            ctx.close(conn);
            self.conns.remove(&conn);
        } else {
            ctx.set_timer(conn, K_READ, DIR_IDLE_TIMEOUT_MS - idle);
        }
    }

    fn on_close(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId) {
        self.conns.remove(&conn);
    }
}

/// A directory server listening on a loopback TCP port (paper §4.2
/// footnote 4), serving all clients concurrently from one reactor thread.
///
/// Peers send [`Message::Register`] to announce themselves as suppliers
/// and [`Message::QueryCandidates`] to obtain `M` random candidates with
/// their classes and ports.
///
/// # Examples
///
/// ```
/// use p2ps_node::DirectoryServer;
///
/// let dir = DirectoryServer::start()?;
/// assert_ne!(dir.port(), 0);
/// dir.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct DirectoryServer {
    addr: SocketAddr,
    handle: p2ps_net::Handle<()>,
    thread: Option<JoinHandle<io::Result<()>>>,
    monitor: Monitor,
}

impl DirectoryServer {
    /// Binds an ephemeral loopback port and starts serving with a
    /// centralized (Napster-style) index.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn start() -> io::Result<Self> {
        Self::start_on(0)
    }

    /// Like [`start`](Self::start), but binds the loopback port `port`
    /// (`0` picks an ephemeral port). Scripts that must hand the
    /// directory address to other processes use this to get a
    /// predictable address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener — in
    /// particular `AddrInUse` when `port` is already taken.
    pub fn start_on(port: u16) -> io::Result<Self> {
        Self::start_with_backend(
            |m| Backend::Napster(ShardedRegistry::with_monitor(16, m)),
            port,
        )
    }

    /// Like [`start`](Self::start), but the index is a Chord ring of
    /// `index_nodes` nodes: supplier lists live at each item key's
    /// successor and queries route through finger tables — the paper's
    /// distributed lookup option, behind the same wire protocol.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn start_with_chord(index_nodes: u64) -> io::Result<Self> {
        Self::start_with_chord_on(index_nodes, 0)
    }

    /// [`start_with_chord`](Self::start_with_chord) on a chosen loopback
    /// `port` (`0` picks an ephemeral port): backend choice and port
    /// compose through the one shared construction path.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener — in
    /// particular `AddrInUse` when `port` is already taken.
    pub fn start_with_chord_on(index_nodes: u64, port: u16) -> io::Result<Self> {
        Self::start_with_backend(|_| Backend::Chord(ChordBackend::new(index_nodes)), port)
    }

    fn start_with_backend(
        backend: impl FnOnce(&Monitor) -> Backend,
        port: u16,
    ) -> io::Result<Self> {
        let monitor = Monitor::root();
        let backend = backend(&monitor);
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let cfg = ReactorConfig {
            monitor: monitor.child("reactor", 0),
            ..ReactorConfig::default()
        };
        let (reactor, handle) = Reactor::new(cfg)?;
        handle.add_listener(listener, 0)?;
        let mut handler = DirectoryHandler {
            backend,
            rng: SmallRng::seed_from_u64(0x5eed),
            conns: HashMap::new(),
            registrations: monitor.counter("registrations_total", "supplier registrations applied"),
            queries: monitor.counter("queries_total", "candidate queries answered"),
        };
        let thread = std::thread::Builder::new()
            .name("p2ps-directory".into())
            .spawn(move || reactor.run(&mut handler))
            .expect("spawning the directory thread cannot fail");
        Ok(DirectoryServer {
            addr,
            handle,
            thread: Some(thread),
            monitor,
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's introspection tree root: registration/query counters,
    /// per-stripe index occupancy (`stripe={i}` scopes, Napster backend)
    /// and the serving reactor's own stats under `reactor=0`.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The listening port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stops the server and joins its reactor thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.handle.shutdown();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DirectoryServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_inner();
        }
    }
}

/// Registers `peer` as a supplier of `item` with the directory at `dir`.
///
/// Registration is fire-and-forget on the wire (`Register` has no
/// acknowledgment) and therefore **eventually visible**: a query sent on
/// a *different* connection immediately afterwards may not see the new
/// record yet. This was always the protocol's contract — the paper's
/// requesters tolerate stale candidate lists by retrying admission — but
/// the pre-reactor serial accept loop happened to serialize
/// register-then-query sequences as a side effect of its one-client-at-
/// a-time design. Callers that need read-your-write should retry the
/// query briefly (see the tests) or multiplex both operations on one
/// connection, where ordering is guaranteed.
///
/// # Errors
///
/// Propagates socket errors.
pub fn register_supplier(
    dir: SocketAddr,
    item: &str,
    peer: PeerId,
    class: PeerClass,
    port: u16,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(dir)?;
    write_message(
        &mut stream,
        &Message::Register {
            item: item.to_owned(),
            peer,
            class,
            port,
        },
    )
}

/// Queries the directory at `dir` for up to `m` candidates for `item`.
///
/// # Errors
///
/// Propagates socket errors; a malformed response surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn query_candidates(dir: SocketAddr, item: &str, m: usize) -> io::Result<Vec<CandidateRecord>> {
    let mut stream = TcpStream::connect(dir)?;
    write_message(
        &mut stream,
        &Message::QueryCandidates {
            item: item.to_owned(),
            m: m as u16,
        },
    )?;
    match read_message(&mut stream)? {
        Message::Candidates { list } => Ok(list),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected candidates, got {}", other.name()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    #[test]
    fn register_then_query() {
        let dir = DirectoryServer::start().unwrap();
        for i in 0..10u64 {
            register_supplier(
                dir.addr(),
                "video",
                PeerId::new(i),
                class(1 + (i % 4) as u8),
                9000 + i as u16,
            )
            .unwrap();
        }
        // Registration is async relative to the query connection; retry
        // briefly until all writes are applied.
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "video", 8).unwrap();
            if got.len() == 8 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 8);
        let mut ids: Vec<u64> = got.iter().map(|c| c.id.get()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "candidates are distinct");
        dir.shutdown();
    }

    #[test]
    fn start_on_binds_the_requested_port() {
        // Grab a free port, release it, then ask the directory for it.
        // Another thread/process can steal the port in the gap, so retry
        // with a fresh probe instead of flaking.
        let (dir, port) = (0..16)
            .find_map(|_| {
                let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
                let port = probe.local_addr().unwrap().port();
                drop(probe);
                DirectoryServer::start_on(port).ok().map(|d| (d, port))
            })
            .expect("a freshly released loopback port should be bindable");
        assert_eq!(dir.port(), port);
        register_supplier(dir.addr(), "v", PeerId::new(1), class(2), 4242).unwrap();
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "v", 4).unwrap();
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 1, "directory on the requested port serves");
        // A second bind on the same port must fail loudly, not silently
        // fall back to an ephemeral port.
        assert!(DirectoryServer::start_on(port).is_err());
        dir.shutdown();
    }

    #[test]
    fn chord_on_a_requested_port_composes() {
        // The satellite fix: backend choice and port choice go through
        // one construction path instead of being mutually exclusive.
        let (dir, port) = (0..16)
            .find_map(|_| {
                let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
                let port = probe.local_addr().unwrap().port();
                drop(probe);
                DirectoryServer::start_with_chord_on(8, port)
                    .ok()
                    .map(|d| (d, port))
            })
            .expect("a freshly released loopback port should be bindable");
        assert_eq!(dir.port(), port);
        register_supplier(dir.addr(), "c", PeerId::new(9), class(1), 1234).unwrap();
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "c", 4).unwrap();
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 1, "chord index serves on the requested port");
        assert_eq!(got[0].port, 1234);
        dir.shutdown();
    }

    #[test]
    fn unknown_item_yields_empty() {
        let dir = DirectoryServer::start().unwrap();
        let got = query_candidates(dir.addr(), "nope", 8).unwrap();
        assert!(got.is_empty());
        dir.shutdown();
    }

    #[test]
    fn reregistration_replaces_record() {
        let dir = DirectoryServer::start().unwrap();
        register_supplier(dir.addr(), "v", PeerId::new(1), class(4), 1111).unwrap();
        register_supplier(dir.addr(), "v", PeerId::new(1), class(2), 2222).unwrap();
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "v", 8).unwrap();
            if got.len() == 1 && got[0].port == 2222 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].class, class(2));
        assert_eq!(got[0].port, 2222);
        dir.shutdown();
    }

    #[test]
    fn chord_backend_round_trips() {
        let dir = DirectoryServer::start_with_chord(16).unwrap();
        for i in 0..6u64 {
            register_supplier(
                dir.addr(),
                "chord-item",
                PeerId::new(i),
                class(1 + (i % 4) as u8),
                7000 + i as u16,
            )
            .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got = query_candidates(dir.addr(), "chord-item", 8).unwrap();
            if got.len() == 6 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(got.len(), 6, "all suppliers reachable through the ring");
        for c in &got {
            assert_eq!(c.port, 7000 + c.id.get() as u16, "ports survive the ring");
        }
        assert!(query_candidates(dir.addr(), "other-item", 4)
            .unwrap()
            .is_empty());
        dir.shutdown();
    }

    #[test]
    fn sharded_registry_stripes_by_item() {
        let reg = ShardedRegistry::new(4);
        assert_eq!(reg.shard_count(), 4);
        for i in 0..64u64 {
            reg.register(
                &format!("item-{i}"),
                CandidateRecord {
                    id: PeerId::new(i),
                    class: class(1),
                    port: 1000 + i as u16,
                },
            );
        }
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..64u64 {
            let got = reg.sample(&format!("item-{i}"), 8, &mut rng);
            assert_eq!(got.len(), 1, "item-{i} lands in exactly one shard");
            assert_eq!(got[0].id.get(), i);
        }
        assert!(ShardedRegistry::new(0).shard_count() >= 1, "clamped");
    }

    #[test]
    fn one_connection_can_register_and_query_repeatedly() {
        // The reactor keeps per-connection decode state across frames.
        let dir = DirectoryServer::start().unwrap();
        let mut stream = TcpStream::connect(dir.addr()).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        for i in 0..5u64 {
            write_message(
                &mut stream,
                &Message::Register {
                    item: "multi".into(),
                    peer: PeerId::new(i),
                    class: class(1),
                    port: 4000 + i as u16,
                },
            )
            .unwrap();
            write_message(
                &mut stream,
                &Message::QueryCandidates {
                    item: "multi".into(),
                    m: 16,
                },
            )
            .unwrap();
            match read_message(&mut stream).unwrap() {
                Message::Candidates { list } => {
                    assert_eq!(list.len(), (i + 1) as usize, "same-conn writes are ordered")
                }
                other => panic!("expected candidates, got {}", other.name()),
            }
        }
        dir.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let dir = DirectoryServer::start().unwrap();
        let addr = dir.addr();
        drop(dir);
        // After shutdown new queries fail (connection refused) or at least
        // the port is no longer served; give the OS a moment.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let res = query_candidates(addr, "v", 1);
        assert!(res.is_err() || res.unwrap().is_empty());
    }
}
