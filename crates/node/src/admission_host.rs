//! Reactor hosting for the pipelined §4.2 admission handshake.
//!
//! [`Admissions`] is the transport half of
//! [`AdmissionDriver`](p2ps_proto::AdmissionDriver): it adopts one
//! connection per candidate lane, fires the concurrent `StreamRequest`
//! burst, feeds decoded replies (and lane timeouts, and peer closes)
//! back into the driver, and executes whatever the driver says — sends,
//! reminder drops, releases. All lanes are in flight at once, so a round
//! over N candidates costs ~max(RTT), not Σ(RTT), and a frozen
//! candidate burns only its own [`ADMISSION_REPLY_TIMEOUT_MS`].
//!
//! When the driver's verdict settles:
//!
//! * **Admitted** — the granted lanes' connections (already adopted,
//!   already on this shard) are planned via
//!   [`plan_session`](crate::requester::plan_session) and handed
//!   straight to [`ReqSessions`](crate::requester::ReqSessions) as a
//!   [`ReadyLaunch`] — no socket changes hands, no thread is woken.
//! * **Rejected** — reminders are already on the wire (driver actions);
//!   the waiting caller gets [`NodeError::Rejected`] through the same
//!   channel that would have carried the stream outcome.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::mpsc::Sender;

use p2ps_core::PeerClass;
use p2ps_media::MediaInfo;
use p2ps_net::{ConnId, Ctx};
use p2ps_policy::SharedPolicy;
use p2ps_proto::{
    AdmissionAction, AdmissionDriver, AdmissionVerdict, FrameDecoder, Message, SessionEvent,
};

use crate::requester::{plan_session, AdoptedLane, ReadyLaunch, SessionProbe, SessionResult};
use crate::serve::send;
use crate::NodeError;

/// How long a lane may stay silent after its `StreamRequest` before it
/// settles as refused — the pipelined analogue of the old blocking
/// path's 2 s per-candidate read timeout. One frozen candidate delays
/// the round by at most this much (and only when it precedes the
/// deciding prefix in class order).
pub(crate) const ADMISSION_REPLY_TIMEOUT_MS: u64 = 2_000;

/// Admission-lane read timer. Deliberately the same kind the requester
/// session uses on surviving connections: the hand-off's `set_timer`
/// replaces this one in place, so no stale admission timer can fire
/// into a streaming lane.
const K_ADM_READ: u32 = 0;

/// Everything a reactor shard needs to run one admission round.
pub(crate) struct AdmissionLaunch {
    pub session: u64,
    /// The requesting peer's class (sent in every `StreamRequest`).
    pub class: PeerClass,
    pub info: MediaInfo,
    pub policy: SharedPolicy,
    /// One advertised class per candidate lane.
    pub classes: Vec<PeerClass>,
    /// One connected stream per lane; `None` when the connect itself
    /// failed (the lane settles refused at start).
    pub streams: Vec<Option<TcpStream>>,
    /// The session's monitor scope, registered by the caller (phase
    /// `probing` while the round runs).
    pub probe: SessionProbe,
    pub done: Sender<SessionResult>,
}

/// One in-flight admission round.
struct AdmSession {
    driver: AdmissionDriver,
    /// Lane → live connection (None once closed or handed off).
    lane_conns: Vec<Option<ConnId>>,
    classes: Vec<PeerClass>,
    info: MediaInfo,
    policy: SharedPolicy,
    probe: SessionProbe,
    done: Sender<SessionResult>,
}

/// An admission-phase connection's reactor bookkeeping.
struct AdmConn {
    session: u64,
    lane: usize,
    dec: FrameDecoder,
}

/// All admission rounds hosted on one reactor shard. Owned by the
/// node's serve handler; callbacks are dispatched here when the
/// connection belongs to an admission lane. Methods return a
/// [`ReadyLaunch`] when their round was admitted — the handler feeds it
/// to `ReqSessions` on the same shard.
#[derive(Default)]
pub(crate) struct Admissions {
    sessions: HashMap<u64, AdmSession>,
    conns: HashMap<ConnId, AdmConn>,
}

impl Admissions {
    /// Whether `conn` is an admission-phase connection on this shard.
    pub(crate) fn owns(&self, conn: ConnId) -> bool {
        self.conns.contains_key(&conn)
    }

    /// Starts a round: adopts every lane's connection, bursts the
    /// `StreamRequest`s, and settles lanes whose connect or adoption
    /// already failed. May resolve immediately (all lanes dead, or an
    /// empty candidate list).
    pub(crate) fn start(
        &mut self,
        ctx: &mut Ctx<'_>,
        launch: AdmissionLaunch,
    ) -> Option<ReadyLaunch> {
        let AdmissionLaunch {
            session,
            class,
            info,
            policy,
            classes,
            streams,
            probe,
            done,
        } = launch;
        let mut driver = AdmissionDriver::new(session, class, &classes);
        let mut lane_conns = Vec::with_capacity(streams.len());
        let mut dead_lanes = Vec::new();
        for (lane, stream) in streams.into_iter().enumerate() {
            match stream.map(|s| ctx.adopt(s)) {
                Some(Ok(conn)) => {
                    self.conns.insert(
                        conn,
                        AdmConn {
                            session,
                            lane,
                            dec: FrameDecoder::new(),
                        },
                    );
                    ctx.set_timer(conn, K_ADM_READ, ADMISSION_REPLY_TIMEOUT_MS);
                    lane_conns.push(Some(conn));
                }
                Some(Err(_)) | None => {
                    lane_conns.push(None);
                    dead_lanes.push(lane);
                }
            }
        }
        driver.start();
        for lane in dead_lanes {
            driver.on_lane_error(lane);
        }
        self.sessions.insert(
            session,
            AdmSession {
                driver,
                lane_conns,
                classes,
                info,
                policy,
                probe,
                done,
            },
        );
        self.pump(ctx, session)
    }

    /// Bytes arrived on an admission lane.
    pub(crate) fn on_data(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        data: &[u8],
    ) -> Option<ReadyLaunch> {
        let mut ac = self.conns.remove(&conn)?;
        ac.dec.feed(data);
        let mut lane_failed = false;
        loop {
            let Some(sess) = self.sessions.get_mut(&ac.session) else {
                // Round already resolved; nothing more to say here.
                ctx.close(conn);
                return None;
            };
            match ac.dec.poll() {
                Ok(Some(msg)) => {
                    let lane = ac.lane as u64;
                    match &msg {
                        Message::Grant { .. } => {
                            sess.probe.record(SessionEvent::AdmissionGrant { lane });
                        }
                        Message::Deny { .. } => {
                            sess.probe.record(SessionEvent::AdmissionDeny { lane });
                        }
                        _ => {}
                    }
                    sess.driver.on_message(ac.lane, &msg)
                }
                Ok(None) => break,
                Err(_) => {
                    // Corrupt lane: it costs only itself.
                    sess.lane_conns[ac.lane] = None;
                    sess.driver.on_lane_error(ac.lane);
                    ctx.close(conn);
                    lane_failed = true;
                    break;
                }
            }
        }
        let ready = self.pump(ctx, ac.session);
        if !lane_failed {
            // Re-insert only while the round still needs this lane open
            // (pump may have closed it or handed it to the session).
            if let Some(sess) = self.sessions.get(&ac.session) {
                if sess.lane_conns[ac.lane] == Some(conn) {
                    ctx.set_timer(conn, K_ADM_READ, ADMISSION_REPLY_TIMEOUT_MS);
                    self.conns.insert(conn, ac);
                }
            }
        }
        ready
    }

    /// An admission lane's read timer fired: the candidate went quiet.
    pub(crate) fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: ConnId,
        _kind: u32,
    ) -> Option<ReadyLaunch> {
        let ac = self.conns.remove(&conn)?;
        ctx.close(conn);
        let sess = self.sessions.get_mut(&ac.session)?;
        sess.lane_conns[ac.lane] = None;
        sess.driver.on_lane_error(ac.lane);
        self.pump(ctx, ac.session)
    }

    /// The candidate's connection dropped (peer close or I/O error).
    pub(crate) fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) -> Option<ReadyLaunch> {
        let ac = self.conns.remove(&conn)?;
        let sess = self.sessions.get_mut(&ac.session)?;
        sess.lane_conns[ac.lane] = None;
        sess.driver.on_lane_error(ac.lane);
        self.pump(ctx, ac.session)
    }

    /// Drains the driver's pending actions onto the wire, then resolves
    /// the round if its verdict settled.
    fn pump(&mut self, ctx: &mut Ctx<'_>, session: u64) -> Option<ReadyLaunch> {
        let sess = self.sessions.get_mut(&session)?;
        while let Some(action) = sess.driver.pop_action() {
            match action {
                AdmissionAction::Send { lane, msg } => {
                    if let Some(conn) = sess.lane_conns[lane] {
                        let lane = lane as u64;
                        match &msg {
                            Message::StreamRequest { .. } => {
                                sess.probe.record(SessionEvent::AdmissionRequest { lane });
                            }
                            Message::Reminder { .. } => {
                                sess.probe.record(SessionEvent::AdmissionReminder { lane });
                            }
                            _ => {}
                        }
                        send(ctx, conn, &msg);
                    }
                }
                AdmissionAction::Close { lane } => {
                    if let Some(conn) = sess.lane_conns[lane].take() {
                        self.conns.remove(&conn);
                        // Queued goodbyes (Deny-reminder, Release) leave
                        // first.
                        ctx.close_after_flush(conn);
                    }
                }
            }
        }
        match sess.driver.verdict().clone() {
            AdmissionVerdict::Pending => None,
            AdmissionVerdict::Admitted { granted } => {
                let sess = self.sessions.remove(&session).expect("present above");
                self.resolve_admitted(ctx, session, granted, sess)
            }
            AdmissionVerdict::Rejected { reminders, .. } => {
                let sess = self.sessions.remove(&session).expect("present above");
                // Every lane is already closed (the driver closes each as
                // it settles); sweep defensively anyway.
                for conn in sess.lane_conns.into_iter().flatten() {
                    self.conns.remove(&conn);
                    ctx.close_after_flush(conn);
                }
                let _ = sess.done.send(Err(NodeError::Rejected {
                    reminders_left: reminders.len(),
                }));
                // `sess.probe` drops here: the session scope vanishes
                // from monitor snapshots.
                None
            }
        }
    }

    /// `R0` secured: plan the session over the granted classes and hand
    /// the surviving connections to the requester side.
    fn resolve_admitted(
        &mut self,
        ctx: &mut Ctx<'_>,
        session: u64,
        granted: Vec<usize>,
        sess: AdmSession,
    ) -> Option<ReadyLaunch> {
        let AdmSession {
            lane_conns,
            classes,
            info,
            policy,
            probe,
            done,
            ..
        } = sess;
        let sup_classes: Vec<PeerClass> = granted.iter().map(|&l| classes[l]).collect();
        let (mut slot_plans, theoretical_slots) =
            match plan_session(&sup_classes, session, &info, &*policy) {
                Ok(planned) => planned,
                Err(e) => {
                    // Planning failed: free every reservation we hold.
                    for &l in &granted {
                        if let Some(conn) = lane_conns[l] {
                            self.conns.remove(&conn);
                            send(ctx, conn, &Message::Release { session });
                            ctx.close_after_flush(conn);
                        }
                    }
                    let _ = done.send(Err(e));
                    return None;
                }
            };
        let mut lanes = Vec::with_capacity(granted.len());
        for (slot, &l) in granted.iter().enumerate() {
            let conn = lane_conns[l];
            if let Some(c) = conn {
                self.conns.remove(&c);
            }
            match slot_plans[slot].take() {
                Some(plan) => lanes.push(AdoptedLane {
                    class: classes[l],
                    conn,
                    plan,
                }),
                None => {
                    // The policy left this grant unused: its bandwidth
                    // reservation must not linger.
                    if let Some(c) = conn {
                        send(ctx, c, &Message::Release { session });
                        ctx.close_after_flush(c);
                    }
                }
            }
        }
        Some(ReadyLaunch {
            session,
            info,
            policy,
            lanes,
            theoretical_slots,
            probe,
            done,
        })
    }
}
