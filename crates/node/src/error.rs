//! Node error type.

use std::fmt;

/// Errors surfaced by the peer node runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum NodeError {
    /// An underlying socket operation failed.
    Io(std::io::Error),
    /// The admission attempt failed: not enough bandwidth was secured
    /// (paper §4.2 rejection). Contains the number of reminders left.
    Rejected {
        /// Reminders successfully left with busy, favoring suppliers.
        reminders_left: usize,
    },
    /// The streaming session ended with segments missing.
    IncompleteStream {
        /// Segments received.
        received: u64,
        /// Segments expected.
        expected: u64,
    },
    /// A peer answered with a message that violates the protocol.
    Protocol(String),
    /// Suppliers kept failing mid-stream until none remained: each
    /// individual loss first triggers a `SelectionPolicy::replan` onto
    /// the survivors; this error surfaces only when the last supplier is
    /// gone (or a replan cannot cover the gap) with segments missing.
    SuppliersLost {
        /// Segments still missing when recovery became impossible.
        missing: u64,
    },
    /// The model rejected the supplier set (should not happen when grants
    /// are aggregated correctly; indicates a peer lied about its class).
    Model(p2ps_core::Error),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Io(e) => write!(f, "i/o failure: {e}"),
            NodeError::Rejected { reminders_left } => {
                write!(f, "admission rejected ({reminders_left} reminders left)")
            }
            NodeError::IncompleteStream { received, expected } => {
                write!(f, "stream incomplete: {received}/{expected} segments")
            }
            NodeError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NodeError::SuppliersLost { missing } => {
                write!(
                    f,
                    "all suppliers lost mid-stream ({missing} segments missing)"
                )
            }
            NodeError::Model(e) => write!(f, "model violation: {e}"),
        }
    }
}

impl std::error::Error for NodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NodeError::Io(e) => Some(e),
            NodeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NodeError {
    fn from(e: std::io::Error) -> Self {
        NodeError::Io(e)
    }
}

impl From<p2ps_core::Error> for NodeError {
    fn from(e: p2ps_core::Error) -> Self {
        NodeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let io = NodeError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());

        let rej = NodeError::Rejected { reminders_left: 2 };
        assert!(rej.to_string().contains("2 reminders"));
        assert!(std::error::Error::source(&rej).is_none());

        let inc = NodeError::IncompleteStream {
            received: 3,
            expected: 8,
        };
        assert!(inc.to_string().contains("3/8"));

        let proto = NodeError::Protocol("bad".into());
        assert!(proto.to_string().contains("bad"));

        let lost = NodeError::SuppliersLost { missing: 7 };
        assert!(lost.to_string().contains("7 segments missing"));
        assert!(std::error::Error::source(&lost).is_none());

        let model = NodeError::from(p2ps_core::Error::NoSuppliers);
        assert!(model.to_string().contains("model violation"));
    }
}
