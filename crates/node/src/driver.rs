//! Transport-agnostic requester session orchestration.
//!
//! [`SessionDriver`] is the decision layer between the sans-io
//! [`RequesterSession`] state machine and whatever transport feeds it:
//! it owns the per-lane liveness bookkeeping, routes a lost supplier's
//! undelivered share through [`SelectionPolicy::replan`] over the
//! survivors, converts recovered shares into explicit wire
//! [`SessionPlan`]s, and decides when the session is complete or beyond
//! recovery ([`NodeError::SuppliersLost`] /
//! [`NodeError::IncompleteStream`]).
//!
//! Two transports drive the same driver:
//!
//! * the epoll reactor path ([`crate::requester`]'s `ReqSessions`), which
//!   maps lanes to live TCP connections and ships the emitted plans as
//!   `StartSession` frames;
//! * the deterministic simulation harness (`p2ps-simnet`), which maps
//!   lanes to in-memory links under injected latency, churn and loss.
//!
//! Every replan decision exercised by a simulated schedule is therefore
//! the decision the live node makes.
//!
//! # Examples
//!
//! A two-supplier session losing one supplier mid-stream:
//!
//! ```
//! use bytes::Bytes;
//! use p2ps_core::PeerClass;
//! use p2ps_node::{DriverStep, SessionDriver};
//! use p2ps_proto::SessionPlan;
//!
//! let plan = |segments: Vec<u32>| SessionPlan {
//!     item: "demo".into(),
//!     segments,
//!     period: 2,
//!     total_segments: 4,
//!     dt_ms: 10,
//! };
//! let lanes = vec![
//!     (PeerClass::new(2)?, plan(vec![0])),
//!     (PeerClass::new(2)?, plan(vec![1])),
//! ];
//! let mut driver = SessionDriver::new(7, "demo", 4, 10, Default::default(), &lanes);
//! driver.on_segment(0, 0, Bytes::from(vec![0u8; 8]), 10);
//! driver.on_segment(1, 1, Bytes::from(vec![1u8; 8]), 12);
//! // Lane 1 dies owing segment 3: its share is replanned onto lane 0.
//! let DriverStep::Replanned(plans) = driver.on_failure(1) else { panic!() };
//! assert_eq!(plans.len(), 1);
//! assert_eq!(plans[0].0, 0, "survivor lane");
//! assert_eq!(plans[0].1.segments, vec![3]);
//! # Ok::<(), p2ps_core::Error>(())
//! ```

use bytes::Bytes;

use p2ps_core::PeerClass;
use p2ps_policy::{SessionContext, SharedPolicy};
use p2ps_proto::{RequesterSession, SessionPlan};

use crate::NodeError;

/// What the transport must do after feeding the driver one event.
#[derive(Debug)]
#[non_exhaustive]
pub enum DriverStep {
    /// Nothing to do; keep feeding events.
    Continue,
    /// A lost supplier's share was replanned: ship each `(lane, plan)`
    /// to that lane's supplier as an explicit `StartSession` (the
    /// supplier appends it to its running schedule).
    Replanned(Vec<(usize, SessionPlan)>),
    /// Every segment of the file has arrived.
    Complete,
    /// The session can no longer complete.
    Failed(NodeError),
}

/// The requester side of one streaming session, decoupled from its
/// transport: reassembly, lane liveness, policy-driven replanning and
/// the completion/failure verdict.
///
/// Lanes are indexed in construction order (matching
/// [`RequesterSession`]'s supplier indices). The transport reports
/// per-lane events — [`on_segment`](Self::on_segment),
/// [`on_end`](Self::on_end), [`on_failure`](Self::on_failure) — and
/// executes the returned [`DriverStep`].
pub struct SessionDriver {
    session: u64,
    item: String,
    dt_ms: u64,
    policy: SharedPolicy,
    classes: Vec<PeerClass>,
    /// Whether the lane's transport is still up (distinct from the state
    /// machine's own lane state: a lane whose connection never came up is
    /// dead in transport terms while still `Streaming` in the machine
    /// until [`on_failure`](Self::on_failure) settles it).
    live: Vec<bool>,
    /// Worst-case healthy ms between consecutive segments across lanes.
    stride_ms: u64,
    sm: RequesterSession,
}

impl SessionDriver {
    /// A driver over `lanes` (each supplier's class and its wire plan,
    /// in lane order) for a file of `total_segments` segments of
    /// `dt_ms` playback each.
    pub fn new(
        session: u64,
        item: &str,
        total_segments: u64,
        dt_ms: u64,
        policy: SharedPolicy,
        lanes: &[(PeerClass, SessionPlan)],
    ) -> Self {
        let mut sm = RequesterSession::new(total_segments);
        let mut classes = Vec::with_capacity(lanes.len());
        let mut stride_ms = dt_ms;
        for (class, plan) in lanes {
            classes.push(*class);
            sm.add_supplier(plan.expanded());
            // The stall watchdog's healthy bound: the slowest lane's §3
            // pacing stride `spp · δt` (explicit one-shot plans pace at
            // the supplier's class rate).
            stride_ms =
                stride_ms.max(plan.stride_slots(u64::from(class.slots_per_segment())) * dt_ms);
        }
        SessionDriver {
            session,
            item: item.to_owned(),
            dt_ms,
            policy,
            classes,
            live: vec![true; lanes.len()],
            stride_ms,
            sm,
        }
    }

    /// The session identifier.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Segment playback time `δt` in milliseconds.
    pub fn dt_ms(&self) -> u64 {
        self.dt_ms
    }

    /// Worst-case healthy ms between consecutive segments — the stall
    /// watchdog's per-session stride bound.
    pub fn stride_ms(&self) -> u64 {
        self.stride_ms
    }

    /// The supplier classes in lane order.
    pub fn classes(&self) -> &[PeerClass] {
        &self.classes
    }

    /// The underlying sans-io reassembly machine (read-only: progress,
    /// phase, owed totals for monitoring).
    pub fn machine(&self) -> &RequesterSession {
        &self.sm
    }

    /// Consumes the driver, yielding the reassembly machine (per-segment
    /// payloads and arrival times) and the lane classes.
    pub fn into_parts(self) -> (RequesterSession, Vec<PeerClass>) {
        (self.sm, self.classes)
    }

    /// Marks `lane`'s transport dead without settling its share yet.
    ///
    /// When several lanes die in one batch (e.g. multiple adoptions fail
    /// while launching), mark them all dead first, then settle each with
    /// [`on_failure`](Self::on_failure) — otherwise the first replan
    /// would count the other doomed lanes as survivors.
    pub fn mark_dead(&mut self, lane: usize) {
        self.live[lane] = false;
    }

    /// The session's current verdict with no new event: [`DriverStep::Complete`]
    /// when every segment has arrived (e.g. a zero-segment file right at
    /// launch), [`DriverStep::Failed`] when nothing can still make
    /// progress, [`DriverStep::Continue`] otherwise.
    pub fn status(&self) -> DriverStep {
        self.check_progress()
    }

    /// A segment arrived on `lane` at session-relative time `at_ms`.
    pub fn on_segment(
        &mut self,
        lane: usize,
        index: u64,
        payload: Bytes,
        at_ms: u64,
    ) -> DriverStep {
        self.sm.on_segment(lane, index, payload, at_ms);
        if self.sm.is_complete() {
            DriverStep::Complete
        } else {
            DriverStep::Continue
        }
    }

    /// The supplier on `lane` ended its session cleanly. Leftovers (a
    /// replan racing an `EndSession` already in flight) are re-replanned
    /// across the remaining suppliers.
    pub fn on_end(&mut self, lane: usize) -> DriverStep {
        self.live[lane] = false;
        let leftovers = self.sm.on_end(lane);
        if leftovers.is_empty() {
            self.check_progress()
        } else {
            self.replan(&leftovers)
        }
    }

    /// The supplier on `lane` was lost (connection drop, corrupt stream,
    /// read timeout, adoption failure). Its undelivered share is
    /// replanned over the surviving lanes.
    pub fn on_failure(&mut self, lane: usize) -> DriverStep {
        self.live[lane] = false;
        let missing = self.sm.on_failure(lane);
        if missing.is_empty() {
            self.check_progress()
        } else {
            self.replan(&missing)
        }
    }

    /// Lanes still expected to deliver: transport up *and* the machine
    /// still counts them as streaming.
    fn survivors(&self) -> Vec<usize> {
        self.sm
            .streaming_suppliers()
            .filter(|&lane| self.live[lane])
            .collect()
    }

    /// The completion/stall verdict after any lane settled.
    fn check_progress(&self) -> DriverStep {
        if self.sm.is_complete() {
            return DriverStep::Complete;
        }
        if self.survivors().is_empty() {
            return DriverStep::Failed(NodeError::IncompleteStream {
                received: self.sm.received(),
                expected: self.sm.total_segments(),
            });
        }
        DriverStep::Continue
    }

    /// Routes `missing` through the policy onto the survivors; fails the
    /// session when recovery is impossible.
    fn replan(&mut self, missing: &[u64]) -> DriverStep {
        let total = self.sm.total_segments();
        let outstanding = total - self.sm.received();
        let survivors = self.survivors();
        if survivors.is_empty() {
            return DriverStep::Failed(NodeError::SuppliersLost {
                missing: outstanding,
            });
        }
        let survivor_classes: Vec<PeerClass> =
            survivors.iter().map(|&lane| self.classes[lane]).collect();
        let rctx = SessionContext::full(&survivor_classes, total).with_seed(self.session);
        let plan = match self.policy.replan(&rctx, missing) {
            Ok(plan) => plan,
            Err(e) => {
                return DriverStep::Failed(NodeError::Protocol(format!("replan failed: {e}")))
            }
        };
        if plan.slot_count() != survivors.len() {
            return DriverStep::Failed(NodeError::Protocol(format!(
                "policy '{}' replanned {} slots for {} survivors",
                self.policy.name(),
                plan.slot_count(),
                survivors.len()
            )));
        }
        let Ok(period) = u32::try_from(total.max(1)) else {
            return DriverStep::Failed(NodeError::Protocol(
                "file too large for an explicit replan".into(),
            ));
        };
        let queues = plan.queues(0, total);
        let assigned: usize = queues.iter().map(Vec::len).sum();
        if assigned < missing.len() {
            // The policy could not place every lost segment; the session
            // can never complete.
            return DriverStep::Failed(NodeError::SuppliersLost {
                missing: outstanding,
            });
        }
        let mut shipped = Vec::new();
        for (j, queue) in queues.into_iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            let lane = survivors[j];
            let wire = SessionPlan {
                item: self.item.clone(),
                segments: queue.iter().map(|&s| s as u32).collect(),
                period,
                total_segments: total,
                dt_ms: self.dt_ms as u32,
            };
            self.sm.assign_more(lane, queue);
            shipped.push((lane, wire));
        }
        DriverStep::Replanned(shipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2ps_policy::RandomBaseline;

    fn payload(i: u64) -> Bytes {
        Bytes::from(vec![i as u8; 4])
    }

    fn periodic(segments: Vec<u32>, period: u32, total: u64) -> SessionPlan {
        SessionPlan {
            item: "t".into(),
            segments,
            period,
            total_segments: total,
            dt_ms: 5,
        }
    }

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    #[test]
    fn completes_without_incident() {
        let lanes = vec![
            (class(2), periodic(vec![0], 2, 4)),
            (class(2), periodic(vec![1], 2, 4)),
        ];
        let mut d = SessionDriver::new(1, "t", 4, 5, SharedPolicy::default(), &lanes);
        assert_eq!(d.stride_ms(), 10, "class-2 lanes pace at 2·δt");
        for (lane, seg) in [(0usize, 0u64), (1, 1), (0, 2)] {
            assert!(matches!(
                d.on_segment(lane, seg, payload(seg), seg * 5),
                DriverStep::Continue
            ));
        }
        assert!(matches!(
            d.on_segment(1, 3, payload(3), 20),
            DriverStep::Complete
        ));
        let (sm, classes) = d.into_parts();
        assert!(sm.is_complete());
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn last_supplier_loss_is_suppliers_lost() {
        let lanes = vec![(class(1), periodic(vec![0], 1, 4))];
        let mut d = SessionDriver::new(2, "t", 4, 5, SharedPolicy::default(), &lanes);
        d.on_segment(0, 0, payload(0), 1);
        match d.on_failure(0) {
            DriverStep::Failed(NodeError::SuppliersLost { missing }) => assert_eq!(missing, 3),
            other => panic!("expected SuppliersLost, got {other:?}"),
        }
    }

    #[test]
    fn clean_end_with_missing_segments_is_incomplete_stream() {
        // A single supplier whose plan never covered segment 3.
        let lanes = vec![(class(1), periodic(vec![0, 1, 2], 4, 4))];
        let mut d = SessionDriver::new(3, "t", 4, 5, SharedPolicy::default(), &lanes);
        for seg in 0..3u64 {
            d.on_segment(0, seg, payload(seg), seg);
        }
        match d.on_end(0) {
            DriverStep::Failed(NodeError::IncompleteStream { received, expected }) => {
                assert_eq!((received, expected), (3, 4));
            }
            other => panic!("expected IncompleteStream, got {other:?}"),
        }
    }

    #[test]
    fn replanned_shares_ride_explicit_plans_and_session_still_completes() {
        let lanes = vec![
            (class(2), periodic(vec![0], 2, 6)),
            (class(2), periodic(vec![1], 2, 6)),
        ];
        let mut d = SessionDriver::new(4, "t", 6, 5, SharedPolicy::default(), &lanes);
        d.on_segment(0, 0, payload(0), 1);
        d.on_segment(1, 1, payload(1), 2);
        let DriverStep::Replanned(plans) = d.on_failure(1) else {
            panic!("survivor must absorb the share");
        };
        assert_eq!(plans.len(), 1);
        let (lane, wire) = &plans[0];
        assert_eq!(*lane, 0);
        assert!(wire.is_explicit());
        assert_eq!(wire.segments, vec![3, 5]);
        // The survivor now owes its own share plus the replanned one.
        for seg in [2u64, 4, 3] {
            assert!(matches!(
                d.on_segment(0, seg, payload(seg), 10),
                DriverStep::Continue
            ));
        }
        assert!(matches!(
            d.on_segment(0, 5, payload(5), 20),
            DriverStep::Complete
        ));
    }

    #[test]
    fn adoption_failure_before_any_byte_replans_immediately() {
        let lanes = vec![
            (class(2), periodic(vec![0], 2, 4)),
            (class(2), periodic(vec![1], 2, 4)),
        ];
        let mut d = SessionDriver::new(5, "t", 4, 5, SharedPolicy::new(RandomBaseline), &lanes);
        let DriverStep::Replanned(plans) = d.on_failure(1) else {
            panic!("expected a replan");
        };
        let mut shipped: Vec<u64> = plans
            .iter()
            .flat_map(|(_, p)| p.segments.iter().map(|&s| u64::from(s)))
            .collect();
        shipped.sort_unstable();
        assert_eq!(shipped, vec![1, 3], "the dead lane's whole share moves");
    }
}
