//! The peer node: listener, roles and the public handle.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::admission::{Protocol, SupplierConfig, SupplierState};
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_monitor::Monitor;
use p2ps_net::PoolHandle;

use crate::admission_host::AdmissionLaunch;
use crate::directory::{query_candidates, register_supplier};
use crate::requester::{SessionProbe, SessionResult};
use crate::serve::{NodeCmd, NodeReactor};
use crate::supplier::{AdmissionGuard, SupplierShared};
use crate::{Clock, NodeError};

/// Tags tie a listener registered with a reactor back to its node's
/// shared state; a process-global counter keeps them unique even across
/// swarms that reuse peer ids.
static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

/// Per-candidate TCP connect budget. Connects stay on the caller's
/// thread (loopback deployment, `std` has no non-blocking connect); a
/// candidate that cannot even accept settles its lane as refused.
const CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(1_000);

/// Static configuration of one peer node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The peer's identity.
    pub id: PeerId,
    /// The peer's bandwidth class.
    pub class: PeerClass,
    /// The media item this deployment streams.
    pub info: MediaInfo,
    /// Address of the directory server.
    pub directory: SocketAddr,
    /// Number of classes in the system (paper `K`; default 4).
    pub num_classes: u8,
    /// Idle relaxation timeout `T_out` in milliseconds (default 60 s).
    pub idle_timeout_ms: u64,
    /// Admission protocol (default `DACp2p`).
    pub protocol: Protocol,
    /// How the requester assigns media segments to its granted suppliers
    /// (default: the paper's `OTSp2p` optimal assignment).
    pub policy: p2ps_policy::SharedPolicy,
    /// Reactor threads of the node's *private* reactor pool
    /// ([`PeerNode::spawn`]/[`PeerNode::spawn_seed`]; default 1). Ignored
    /// when the node is hosted on a shared [`NodeReactor`], whose own
    /// thread count applies.
    pub threads: usize,
}

impl NodeConfig {
    /// A configuration with the defaults described on each field.
    pub fn new(id: PeerId, class: PeerClass, info: MediaInfo, directory: SocketAddr) -> Self {
        NodeConfig {
            id,
            class,
            info,
            directory,
            num_classes: 4,
            idle_timeout_ms: 60_000,
            protocol: Protocol::Dac,
            policy: p2ps_policy::SharedPolicy::default(),
            threads: 1,
        }
    }
}

/// Result of one successful streaming session at a requesting peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Number of supplying peers that served the session (`n`).
    pub supplier_count: usize,
    /// Their classes, in assignment (descending-bandwidth) order.
    pub supplier_classes: Vec<PeerClass>,
    /// Empirical minimum buffering delay (ms) measured from real segment
    /// arrival times.
    pub measured_delay_ms: u64,
    /// Theorem-1 delay `n·δt` in ms, for comparison.
    pub theoretical_delay_ms: u64,
    /// Wall-clock duration of the whole session.
    pub duration_ms: u64,
}

/// Which reactor pool hosts a node's listener and sessions.
enum ReactorRef {
    /// A private reactor pool, owned (and joined at shutdown) by this
    /// node.
    Owned(NodeReactor),
    /// A shared [`NodeReactor`] pool hosting many nodes.
    Shared(PoolHandle<NodeCmd>),
}

impl ReactorRef {
    fn pool(&self) -> PoolHandle<NodeCmd> {
        match self {
            ReactorRef::Owned(r) => r.handle(),
            ReactorRef::Shared(h) => h.clone(),
        }
    }
}

/// A runnable peer: a TCP listener hosted on a serving reactor plus the
/// paper's requester/supplier behaviors. See the crate docs for the full
/// lifecycle.
pub struct PeerNode {
    config: NodeConfig,
    shared: Arc<SupplierShared>,
    port: u16,
    tag: u64,
    reactor: Option<ReactorRef>,
    /// The hosting reactor's introspection tree root — session probes
    /// register here under the shard that will host them.
    monitor: Monitor,
    session_rng: Mutex<SmallRng>,
}

impl std::fmt::Debug for PeerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerNode")
            .field("id", &self.config.id)
            .field("class", &self.config.class)
            .field("port", &self.port)
            .field("supplier", &self.is_supplier())
            .finish()
    }
}

impl PeerNode {
    /// Starts a node with no media content (a future requesting peer) on
    /// a private serving reactor.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn spawn(config: NodeConfig, clock: Clock) -> io::Result<Self> {
        let reactor = NodeReactor::with_threads(config.threads)?;
        let monitor = reactor.monitor().clone();
        Self::spawn_inner(config, clock, None, ReactorRef::Owned(reactor), monitor)
    }

    /// Starts a node that already owns the complete media file and
    /// registers it with the directory (a "seed" supplying peer) on a
    /// private serving reactor.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or from the directory
    /// registration.
    pub fn spawn_seed(config: NodeConfig, clock: Clock) -> io::Result<Self> {
        let reactor = NodeReactor::with_threads(config.threads)?;
        let monitor = reactor.monitor().clone();
        let file = MediaFile::synthesize(config.info.clone());
        let node = Self::spawn_inner(
            config,
            clock,
            Some(file),
            ReactorRef::Owned(reactor),
            monitor,
        )?;
        node.register()?;
        Ok(node)
    }

    /// Like [`spawn`](Self::spawn), but hosted on a shared
    /// [`NodeReactor`]: many nodes' admission handshakes and paced
    /// sessions multiplex onto that reactor's single thread.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn spawn_on(config: NodeConfig, clock: Clock, reactor: &NodeReactor) -> io::Result<Self> {
        Self::spawn_inner(
            config,
            clock,
            None,
            ReactorRef::Shared(reactor.handle().clone()),
            reactor.monitor().clone(),
        )
    }

    /// Like [`spawn_seed`](Self::spawn_seed), but hosted on a shared
    /// [`NodeReactor`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or from the directory
    /// registration.
    pub fn spawn_seed_on(
        config: NodeConfig,
        clock: Clock,
        reactor: &NodeReactor,
    ) -> io::Result<Self> {
        let file = MediaFile::synthesize(config.info.clone());
        let node = Self::spawn_inner(
            config,
            clock,
            Some(file),
            ReactorRef::Shared(reactor.handle().clone()),
            reactor.monitor().clone(),
        )?;
        node.register()?;
        Ok(node)
    }

    fn spawn_inner(
        config: NodeConfig,
        clock: Clock,
        file: Option<MediaFile>,
        reactor: ReactorRef,
        monitor: Monitor,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let port = listener.local_addr()?.port();
        let supplier_config =
            SupplierConfig::new(config.num_classes, config.idle_timeout_ms, config.protocol)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let state = SupplierState::new(config.class, supplier_config, clock.now_ms())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

        let shared = Arc::new(SupplierShared {
            id: config.id,
            class: config.class,
            clock,
            admission: Mutex::new(AdmissionGuard {
                state,
                rng: SmallRng::seed_from_u64(config.id.get() ^ 0xda7a_5eed),
                reserved_at: None,
            }),
            file: Mutex::new(file),
            stop: std::sync::atomic::AtomicBool::new(false),
        });

        // Attach before the listener goes live: the node's tag picks its
        // reactor shard, and that shard's commands are processed in
        // order, so no accepted connection can miss its node state.
        let tag = NEXT_TAG.fetch_add(1, Ordering::Relaxed);
        let pool = reactor.pool();
        let shard = pool.shard(tag);
        shard.send(NodeCmd::Attach {
            tag,
            shared: Arc::clone(&shared),
        });
        if let Err(e) = shard.add_listener(listener, tag) {
            // Roll the attach back: without this a failed spawn on a
            // shared reactor would pin the node's state in the handler's
            // map for the reactor's whole lifetime.
            shard.send(NodeCmd::Detach { tag });
            return Err(e);
        }

        Ok(PeerNode {
            session_rng: Mutex::new(SmallRng::seed_from_u64(config.id.get() ^ 0x5e55)),
            config,
            shared,
            port,
            tag,
            reactor: Some(reactor),
            monitor,
        })
    }

    /// The node's identity.
    pub fn id(&self) -> PeerId {
        self.config.id
    }

    /// The node's class.
    pub fn class(&self) -> PeerClass {
        self.config.class
    }

    /// The node's listening port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Whether the node owns the complete media file (and can supply it).
    pub fn is_supplier(&self) -> bool {
        self.shared.file.lock().is_some()
    }

    /// A shared view of the node's media file, if it owns one ([`MediaFile`]
    /// clones are O(1) views of one allocation — handy for byte-level
    /// verification in tests and tools).
    pub fn media_file(&self) -> Option<MediaFile> {
        self.shared.file.lock().clone()
    }

    /// A snapshot of the node's current admission probability vector
    /// (with idle relaxation folded in up to now) — the paper's
    /// per-supplier `DACp2p` state, exposed for monitoring and tests.
    pub fn admission_vector(&self) -> p2ps_core::admission::AdmissionVector {
        let now = self.shared.clock.now_ms();
        self.shared.admission.lock().state.vector_at(now).clone()
    }

    /// Whether the node is currently busy serving a streaming session.
    pub fn is_busy(&self) -> bool {
        self.shared.admission.lock().state.is_busy()
    }

    /// The hosting reactor's introspection tree root (the same tree as
    /// [`NodeReactor::monitor`] when the node is hosted on a shared
    /// reactor). This node's in-flight sessions appear as
    /// `reactor={shard} / session={id}` scopes.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    fn register(&self) -> io::Result<()> {
        register_supplier(
            self.config.directory,
            self.config.info.name(),
            self.config.id,
            self.config.class,
            self.port,
        )
    }

    /// One admission attempt (paper §4.2) followed, on success, by the
    /// full streaming session; afterwards the node stores the file,
    /// registers as a supplier and returns the session outcome.
    ///
    /// Equivalent to [`begin_stream`](Self::begin_stream) +
    /// [`PendingStream::wait`]: the admission handshake *and* the paced
    /// reception run on the node's reactor pool, this thread only
    /// blocks on the result.
    ///
    /// # Errors
    ///
    /// * [`NodeError::Rejected`] — could not secure the playback rate;
    ///   retry after a backoff (the paper's `T_bkf · E_bkf^(i-1)`).
    /// * [`NodeError::SuppliersLost`] / [`NodeError::IncompleteStream`] /
    ///   [`NodeError::Io`] — suppliers failed mid-session beyond what
    ///   live replanning could recover.
    pub fn request_stream(&self, m: usize) -> Result<StreamOutcome, NodeError> {
        self.begin_stream(m)?.wait()
    }

    /// Starts one streaming session without blocking: connects to the
    /// candidates (loopback, bounded), then hands the whole round to
    /// the node's reactor pool, where a pipelined sans-io
    /// [`AdmissionDriver`](p2ps_proto::AdmissionDriver) probes **every**
    /// candidate lane concurrently — N candidates cost ~max(RTT), not
    /// Σ(RTT) — and, on admission, the granted connections flow
    /// straight into the event-driven receiving session. No reader
    /// threads anywhere. The returned [`PendingStream`] resolves to the
    /// outcome; hundreds of sessions can be in flight per process this
    /// way (sharded across the pool's reactor threads by session id).
    ///
    /// # Errors
    ///
    /// Directory-query I/O errors surface here. The admission verdict is
    /// asynchronous: [`NodeError::Rejected`] — like everything
    /// mid-stream — surfaces from [`PendingStream::wait`].
    pub fn begin_stream(&self, m: usize) -> Result<PendingStream, NodeError> {
        let candidates = query_candidates(self.config.directory, self.config.info.name(), m)?;
        self.begin_stream_from(candidates)
    }

    /// Like [`begin_stream`](Self::begin_stream) with an explicit
    /// candidate set instead of a directory query — for deployments with
    /// out-of-band supplier knowledge (tracker hints, prior sessions) and
    /// for harnesses that need deterministic supplier placement.
    ///
    /// # Errors
    ///
    /// Same as [`begin_stream`](Self::begin_stream).
    pub fn begin_stream_from(
        &self,
        candidates: Vec<p2ps_proto::CandidateRecord>,
    ) -> Result<PendingStream, NodeError> {
        let session: u64 = self.session_rng.lock().gen();
        let pool = self
            .reactor
            .as_ref()
            .expect("node is not shut down while handles exist")
            .pool();
        // Registered before admission so the `probing` phase is visible
        // while the §4.2 handshake runs; an admission failure drops the
        // probe and the session scope vanishes from snapshots.
        let probe = SessionProbe::register(&self.monitor, pool.shard_index(session), session);
        let mut classes = Vec::with_capacity(candidates.len());
        let mut streams = Vec::with_capacity(candidates.len());
        for rec in &candidates {
            classes.push(rec.class);
            let addr = SocketAddr::from(([127, 0, 0, 1], rec.port));
            let stream = std::net::TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)
                .and_then(|s| {
                    s.set_nodelay(true)?;
                    Ok(s)
                })
                .ok();
            streams.push(stream);
        }
        let (done, rx) = std::sync::mpsc::channel();
        pool.shard(session)
            .send(NodeCmd::StartAdmission(Box::new(AdmissionLaunch {
                session,
                class: self.config.class,
                info: self.config.info.clone(),
                policy: self.config.policy.clone(),
                classes,
                streams,
                probe,
                done,
            })));
        Ok(PendingStream {
            rx,
            shared: Arc::clone(&self.shared),
            info: self.config.info.clone(),
            directory: self.config.directory,
            id: self.config.id,
            class: self.config.class,
            port: self.port,
        })
    }

    /// Like [`request_stream`](Self::request_stream) but retries rejected
    /// attempts up to `max_attempts` times with the given backoff between
    /// attempts (a scaled-down version of the paper's retry loop).
    ///
    /// # Errors
    ///
    /// The final error once attempts are exhausted.
    pub fn request_stream_with_retry(
        &self,
        m: usize,
        max_attempts: u32,
        backoff: std::time::Duration,
    ) -> Result<StreamOutcome, NodeError> {
        let mut last = NodeError::Rejected { reminders_left: 0 };
        for attempt in 0..max_attempts.max(1) {
            match self.request_stream(m) {
                Ok(outcome) => return Ok(outcome),
                Err(e @ NodeError::Rejected { .. }) => {
                    last = e;
                    if attempt + 1 < max_attempts {
                        std::thread::sleep(backoff);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// Stops serving: detaches from the reactor (closing this node's
    /// listener and connections; in-flight sessions abort like a supplier
    /// crash). A node-owned reactor is shut down and joined; a shared one
    /// keeps running for its other nodes.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        let Some(reactor) = self.reactor.take() else {
            return;
        };
        let pool = reactor.pool();
        let shard = pool.shard(self.tag);
        shard.remove_listener(self.tag);
        shard.send(NodeCmd::Detach { tag: self.tag });
        if let ReactorRef::Owned(owned) = reactor {
            owned.shutdown(); // joins the reactor threads
        }
    }
}

impl Drop for PeerNode {
    fn drop(&mut self) {
        if self.reactor.is_some() {
            self.stop_inner();
        }
    }
}

/// A streaming session in flight on the node's reactor pool
/// ([`PeerNode::begin_stream`]). Dropping it abandons the result (the
/// reactor still finishes or fails the session and releases the
/// suppliers).
pub struct PendingStream {
    rx: Receiver<SessionResult>,
    shared: Arc<SupplierShared>,
    info: MediaInfo,
    directory: SocketAddr,
    id: PeerId,
    class: PeerClass,
    port: u16,
}

impl std::fmt::Debug for PendingStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingStream")
            .field("id", &self.id)
            .field("item", &self.info.name())
            .finish()
    }
}

impl PendingStream {
    /// Blocks until the session completes; on success the node stores the
    /// received file, registers as a supplier with the directory, and the
    /// outcome is returned — identical post-conditions to
    /// [`PeerNode::request_stream`].
    ///
    /// # Errors
    ///
    /// Whatever the round or session ended with —
    /// [`NodeError::Rejected`] when the pipelined admission could not
    /// secure the playback rate, [`NodeError::SuppliersLost`] /
    /// [`NodeError::IncompleteStream`] mid-stream, or
    /// [`NodeError::Protocol`] if the reactor shut down underneath the
    /// session.
    pub fn wait(self) -> Result<StreamOutcome, NodeError> {
        let (outcome, store) = self
            .rx
            .recv()
            .map_err(|_| NodeError::Protocol("reactor shut down mid-session".into()))??;
        let file = MediaFile::from_store(self.info.clone(), &store).ok_or(
            NodeError::IncompleteStream {
                received: store.len() as u64,
                expected: self.info.segment_count(),
            },
        )?;
        *self.shared.file.lock() = Some(file);
        // A node shut down while its session was in flight keeps the
        // completed file but must not advertise a listener nobody runs.
        if !self.shared.stop.load(Ordering::Relaxed) {
            register_supplier(
                self.directory,
                self.info.name(),
                self.id,
                self.class,
                self.port,
            )?;
        }
        Ok(outcome)
    }
}
