//! The peer node: listener, roles and the public handle.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::admission::{Protocol, SupplierConfig, SupplierState};
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::{MediaFile, MediaInfo};

use crate::directory::{query_candidates, register_supplier};
use crate::serve::{NodeCmd, NodeReactor};
use crate::supplier::{AdmissionGuard, SupplierShared};
use crate::{Clock, NodeError};

/// Tags tie a listener registered with a reactor back to its node's
/// shared state; a process-global counter keeps them unique even across
/// swarms that reuse peer ids.
static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

/// Static configuration of one peer node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The peer's identity.
    pub id: PeerId,
    /// The peer's bandwidth class.
    pub class: PeerClass,
    /// The media item this deployment streams.
    pub info: MediaInfo,
    /// Address of the directory server.
    pub directory: SocketAddr,
    /// Number of classes in the system (paper `K`; default 4).
    pub num_classes: u8,
    /// Idle relaxation timeout `T_out` in milliseconds (default 60 s).
    pub idle_timeout_ms: u64,
    /// Admission protocol (default `DACp2p`).
    pub protocol: Protocol,
    /// How the requester assigns media segments to its granted suppliers
    /// (default: the paper's `OTSp2p` optimal assignment).
    pub policy: p2ps_policy::SharedPolicy,
}

impl NodeConfig {
    /// A configuration with the defaults described on each field.
    pub fn new(id: PeerId, class: PeerClass, info: MediaInfo, directory: SocketAddr) -> Self {
        NodeConfig {
            id,
            class,
            info,
            directory,
            num_classes: 4,
            idle_timeout_ms: 60_000,
            protocol: Protocol::Dac,
            policy: p2ps_policy::SharedPolicy::default(),
        }
    }
}

/// Result of one successful streaming session at a requesting peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Number of supplying peers that served the session (`n`).
    pub supplier_count: usize,
    /// Their classes, in assignment (descending-bandwidth) order.
    pub supplier_classes: Vec<PeerClass>,
    /// Empirical minimum buffering delay (ms) measured from real segment
    /// arrival times.
    pub measured_delay_ms: u64,
    /// Theorem-1 delay `n·δt` in ms, for comparison.
    pub theoretical_delay_ms: u64,
    /// Wall-clock duration of the whole session.
    pub duration_ms: u64,
}

/// Which serving reactor hosts a node's listener and sessions.
enum ReactorRef {
    /// A private reactor, owned (and joined at shutdown) by this node.
    Owned(NodeReactor),
    /// A shared [`NodeReactor`] hosting many nodes on one thread.
    Shared(p2ps_net::Handle<NodeCmd>),
}

impl ReactorRef {
    fn handle(&self) -> &p2ps_net::Handle<NodeCmd> {
        match self {
            ReactorRef::Owned(r) => r.handle(),
            ReactorRef::Shared(h) => h,
        }
    }
}

/// A runnable peer: a TCP listener hosted on a serving reactor plus the
/// paper's requester/supplier behaviors. See the crate docs for the full
/// lifecycle.
pub struct PeerNode {
    config: NodeConfig,
    shared: Arc<SupplierShared>,
    port: u16,
    tag: u64,
    reactor: Option<ReactorRef>,
    session_rng: Mutex<SmallRng>,
}

impl std::fmt::Debug for PeerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerNode")
            .field("id", &self.config.id)
            .field("class", &self.config.class)
            .field("port", &self.port)
            .field("supplier", &self.is_supplier())
            .finish()
    }
}

impl PeerNode {
    /// Starts a node with no media content (a future requesting peer) on
    /// a private serving reactor.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn spawn(config: NodeConfig, clock: Clock) -> io::Result<Self> {
        let reactor = ReactorRef::Owned(NodeReactor::new()?);
        Self::spawn_inner(config, clock, None, reactor)
    }

    /// Starts a node that already owns the complete media file and
    /// registers it with the directory (a "seed" supplying peer) on a
    /// private serving reactor.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or from the directory
    /// registration.
    pub fn spawn_seed(config: NodeConfig, clock: Clock) -> io::Result<Self> {
        let reactor = ReactorRef::Owned(NodeReactor::new()?);
        let file = MediaFile::synthesize(config.info.clone());
        let node = Self::spawn_inner(config, clock, Some(file), reactor)?;
        node.register()?;
        Ok(node)
    }

    /// Like [`spawn`](Self::spawn), but hosted on a shared
    /// [`NodeReactor`]: many nodes' admission handshakes and paced
    /// sessions multiplex onto that reactor's single thread.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn spawn_on(config: NodeConfig, clock: Clock, reactor: &NodeReactor) -> io::Result<Self> {
        Self::spawn_inner(
            config,
            clock,
            None,
            ReactorRef::Shared(reactor.handle().clone()),
        )
    }

    /// Like [`spawn_seed`](Self::spawn_seed), but hosted on a shared
    /// [`NodeReactor`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or from the directory
    /// registration.
    pub fn spawn_seed_on(
        config: NodeConfig,
        clock: Clock,
        reactor: &NodeReactor,
    ) -> io::Result<Self> {
        let file = MediaFile::synthesize(config.info.clone());
        let node = Self::spawn_inner(
            config,
            clock,
            Some(file),
            ReactorRef::Shared(reactor.handle().clone()),
        )?;
        node.register()?;
        Ok(node)
    }

    fn spawn_inner(
        config: NodeConfig,
        clock: Clock,
        file: Option<MediaFile>,
        reactor: ReactorRef,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let port = listener.local_addr()?.port();
        let supplier_config =
            SupplierConfig::new(config.num_classes, config.idle_timeout_ms, config.protocol)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let state = SupplierState::new(config.class, supplier_config, clock.now_ms())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

        let shared = Arc::new(SupplierShared {
            id: config.id,
            class: config.class,
            clock,
            admission: Mutex::new(AdmissionGuard {
                state,
                rng: SmallRng::seed_from_u64(config.id.get() ^ 0xda7a_5eed),
                reserved_at: None,
            }),
            file: Mutex::new(file),
            stop: std::sync::atomic::AtomicBool::new(false),
        });

        // Attach before the listener goes live: commands are processed in
        // order, so no accepted connection can miss its node state.
        let tag = NEXT_TAG.fetch_add(1, Ordering::Relaxed);
        reactor.handle().send(NodeCmd::Attach {
            tag,
            shared: Arc::clone(&shared),
        });
        if let Err(e) = reactor.handle().add_listener(listener, tag) {
            // Roll the attach back: without this a failed spawn on a
            // shared reactor would pin the node's state in the handler's
            // map for the reactor's whole lifetime.
            reactor.handle().send(NodeCmd::Detach { tag });
            return Err(e);
        }

        Ok(PeerNode {
            session_rng: Mutex::new(SmallRng::seed_from_u64(config.id.get() ^ 0x5e55)),
            config,
            shared,
            port,
            tag,
            reactor: Some(reactor),
        })
    }

    /// The node's identity.
    pub fn id(&self) -> PeerId {
        self.config.id
    }

    /// The node's class.
    pub fn class(&self) -> PeerClass {
        self.config.class
    }

    /// The node's listening port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Whether the node owns the complete media file (and can supply it).
    pub fn is_supplier(&self) -> bool {
        self.shared.file.lock().is_some()
    }

    /// A snapshot of the node's current admission probability vector
    /// (with idle relaxation folded in up to now) — the paper's
    /// per-supplier `DACp2p` state, exposed for monitoring and tests.
    pub fn admission_vector(&self) -> p2ps_core::admission::AdmissionVector {
        let now = self.shared.clock.now_ms();
        self.shared.admission.lock().state.vector_at(now).clone()
    }

    /// Whether the node is currently busy serving a streaming session.
    pub fn is_busy(&self) -> bool {
        self.shared.admission.lock().state.is_busy()
    }

    fn register(&self) -> io::Result<()> {
        register_supplier(
            self.config.directory,
            self.config.info.name(),
            self.config.id,
            self.config.class,
            self.port,
        )
    }

    /// One admission attempt (paper §4.2) followed, on success, by the
    /// full streaming session; afterwards the node stores the file,
    /// registers as a supplier and returns the session outcome.
    ///
    /// # Errors
    ///
    /// * [`NodeError::Rejected`] — could not secure the playback rate;
    ///   retry after a backoff (the paper's `T_bkf · E_bkf^(i-1)`).
    /// * [`NodeError::IncompleteStream`] / [`NodeError::Io`] — a supplier
    ///   failed mid-session.
    pub fn request_stream(&self, m: usize) -> Result<StreamOutcome, NodeError> {
        let candidates = query_candidates(self.config.directory, self.config.info.name(), m)?;
        let session: u64 = self.session_rng.lock().gen();
        let (outcome, store) = crate::requester::attempt_and_stream(
            candidates,
            self.config.class,
            session,
            &self.config.info,
            &*self.config.policy,
        )?;
        let file = MediaFile::from_store(self.config.info.clone(), &store).ok_or(
            NodeError::IncompleteStream {
                received: store.len() as u64,
                expected: self.config.info.segment_count(),
            },
        )?;
        *self.shared.file.lock() = Some(file);
        self.register()?;
        Ok(outcome)
    }

    /// Like [`request_stream`](Self::request_stream) but retries rejected
    /// attempts up to `max_attempts` times with the given backoff between
    /// attempts (a scaled-down version of the paper's retry loop).
    ///
    /// # Errors
    ///
    /// The final error once attempts are exhausted.
    pub fn request_stream_with_retry(
        &self,
        m: usize,
        max_attempts: u32,
        backoff: std::time::Duration,
    ) -> Result<StreamOutcome, NodeError> {
        let mut last = NodeError::Rejected { reminders_left: 0 };
        for attempt in 0..max_attempts.max(1) {
            match self.request_stream(m) {
                Ok(outcome) => return Ok(outcome),
                Err(e @ NodeError::Rejected { .. }) => {
                    last = e;
                    if attempt + 1 < max_attempts {
                        std::thread::sleep(backoff);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// Stops serving: detaches from the reactor (closing this node's
    /// listener and connections; in-flight sessions abort like a supplier
    /// crash). A node-owned reactor is shut down and joined; a shared one
    /// keeps running for its other nodes.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        let Some(reactor) = self.reactor.take() else {
            return;
        };
        reactor.handle().remove_listener(self.tag);
        reactor.handle().send(NodeCmd::Detach { tag: self.tag });
        if let ReactorRef::Owned(owned) = reactor {
            owned.shutdown(); // joins the reactor thread
        }
    }
}

impl Drop for PeerNode {
    fn drop(&mut self) {
        if self.reactor.is_some() {
            self.stop_inner();
        }
    }
}
