//! `p2psd` — run the peer-to-peer streaming system from a shell.
//!
//! Run `p2psd --help` for the authoritative flag list and exit-code
//! conventions (the README's "Running `p2psd`" section carries the same
//! text); the short version:
//!
//! ```text
//! p2psd directory [--port 0] [--status-port P]
//! p2psd seed    --dir HOST:PORT [media flags] [--threads T] [--status-port P]
//! p2psd stream  --dir HOST:PORT [media flags] [--threads T] [--status-port P]
//!               [--m M] [--retries N] [--serve-secs S]
//! p2psd status  --status-addr HOST:PORT
//! ```
//!
//! `directory` runs until killed; `seed` serves until killed; `stream`
//! performs the paper's §4.2 admission + streaming, prints the measured
//! buffering delay, then (optionally) stays around serving as a supplier
//! for `--serve-secs`. `--status-port` serves the process's live
//! introspection tree in the Prometheus text format on the loopback
//! interface; `status` scrapes such an endpoint and renders it as
//! human-readable tables (see `docs/OBSERVABILITY.md`).

use std::net::SocketAddr;
use std::time::Duration;

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;
use p2ps_metrics::Table;
use p2ps_monitor::{
    fetch_path, fetch_status, BridgeConfig, Monitor, StatusServer, TimeseriesBridge,
};
use p2ps_node::{Args, Clock, DirectoryServer, NodeConfig, PeerNode};
use p2ps_proto::SessionEvent;

const FLAGS: &[&str] = &[
    "dir",
    "id",
    "class",
    "item",
    "segments",
    "dt-ms",
    "segment-bytes",
    "m",
    "retries",
    "serve-secs",
    "port",
    "threads",
    "status-port",
    "status-addr",
    "trace",
];

/// The one authoritative description of the CLI: every subcommand, every
/// flag with its default, and the exit-code conventions. The README's
/// "Running `p2psd`" section embeds this same text; keep them in sync.
const USAGE: &str = "p2psd - peer-to-peer media streaming daemon (ICDCS'02 P2P media streaming)

usage: p2psd <directory|seed|stream|status> [--flags]

subcommands:
  directory   run the lookup service until killed
      --port P            loopback port to bind (default 0 = ephemeral)
  seed        synthesize the media item and serve it until killed
  stream      probe M candidates, receive the stream, report the delay
    flags shared by seed and stream:
      --dir HOST:PORT     directory address (required)
      --id N              peer id (default: the process id)
      --class K           bandwidth class, 1 = highest (default 1)
      --item NAME         media item name (default \"p2ps-demo\")
      --segments N        segment count (default 120)
      --dt-ms MS          segment duration (delta-t) in ms (default 250)
      --segment-bytes B   segment payload bytes (default 16384)
      --threads T         reactor threads for this node's pool (default 1);
                          the supplier listener and requester sessions
                          shard across them -- the multi-core knob
    stream only:
      --m M               candidates to probe per attempt (default 8)
      --retries N         admission attempts before giving up (default 10)
      --serve-secs S      keep supplying this long after completing (default 0)
  status      scrape a running p2psd and print human-readable tables
      --status-addr HOST:PORT   the endpoint another p2psd opened with
                                --status-port (required)
      --trace SESSION     instead of the tables, dump the session's flight
                          recorder: one decoded protocol event per line

observability (directory, seed and stream):
      --status-port P     serve live metrics on 127.0.0.1:P (0 = ephemeral);
                          the bound address is printed on startup. Routes:
                          /metrics (Prometheus text), /timeseries (sampled
                          history as CSV), /trace/<session> (flight-recorder
                          dump). See docs/OBSERVABILITY.md.

exit codes (script-friendly):
  0   success (including --help / -h / help)
  1   runtime error: unknown flag or bad value, bind failure, connection
      refused, admission rejection after retries, broken stream
  2   bad usage: missing or unknown subcommand
";

fn media_info(args: &Args) -> Result<MediaInfo, Box<dyn std::error::Error>> {
    let item = args.get("item").unwrap_or("p2ps-demo").to_owned();
    let segments: u64 = args.get_or("segments", 120)?;
    let dt_ms: u64 = args.get_or("dt-ms", 250)?;
    let bytes: u32 = args.get_or("segment-bytes", 16 * 1024)?;
    Ok(MediaInfo::new(
        item,
        segments,
        SegmentDuration::from_millis(dt_ms),
        bytes,
    ))
}

fn node_config(args: &Args) -> Result<NodeConfig, Box<dyn std::error::Error>> {
    let dir: SocketAddr = args.require("dir")?;
    let id: u64 = args.get_or("id", std::process::id() as u64)?;
    let class: u8 = args.get_or("class", 1)?;
    let mut config = NodeConfig::new(
        PeerId::new(id),
        PeerClass::new(class)?,
        media_info(args)?,
        dir,
    );
    config.threads = args.get_or("threads", 1)?;
    Ok(config)
}

/// Starts the status endpoint when `--status-port` was given and prints
/// where it landed (scripts and tests parse this line). The endpoint
/// carries a timeseries bridge: a sampler thread snapshots the monitor
/// tree once a second so `/timeseries` can serve recent history as CSV.
fn maybe_status_server(
    args: &Args,
    monitor: &Monitor,
) -> Result<Option<(StatusServer, TimeseriesBridge)>, Box<dyn std::error::Error>> {
    if args.get("status-port").is_none() {
        return Ok(None);
    }
    let port: u16 = args.get_or("status-port", 0)?;
    let bridge = TimeseriesBridge::start(monitor.clone(), "p2ps", BridgeConfig::default());
    let server = StatusServer::start_with_bridge(port, monitor.clone(), "p2ps", bridge.handle())?;
    println!("status endpoint on http://{}/metrics", server.addr());
    Ok(Some((server, bridge)))
}

/// Renders a `/trace/<session>` dump — `at_ms code a b` per line — as a
/// human-readable timeline by decoding each event back through the
/// shared [`SessionEvent`] catalog. Unknown codes (a newer daemon than
/// this `status` client) are kept raw rather than dropped.
fn render_trace(raw: &str) -> String {
    let mut out = String::new();
    for line in raw.lines() {
        let mut parts = line.split_whitespace();
        let (Some(at), Some(code), Some(a), Some(b)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let decoded = code
            .parse::<u8>()
            .ok()
            .zip(a.parse::<u64>().ok().zip(b.parse::<u64>().ok()))
            .and_then(|(code, (a, b))| SessionEvent::decode(code, a, b));
        match decoded {
            Some(ev) => out.push_str(&format!("{at:>10}  {ev}\n")),
            None => out.push_str(&format!("{at:>10}  raw code={code} a={a} b={b}\n")),
        }
    }
    if out.is_empty() {
        out.push_str("trace: no events recorded\n");
    }
    out
}

/// One parsed exposition sample: family name, label pairs, value.
struct Sample {
    family: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses the Prometheus text format back into samples. Comments and
/// malformed lines are skipped — `status` renders what it understands.
fn parse_samples(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (family, labels) = match head.split_once('{') {
            Some((f, rest)) => {
                let body = rest.trim_end_matches('}');
                let labels = body
                    .split(',')
                    .filter_map(|pair| {
                        let (k, v) = pair.split_once('=')?;
                        Some((k.to_owned(), v.trim_matches('"').to_owned()))
                    })
                    .collect();
                (f, labels)
            }
            None => (head, Vec::new()),
        };
        out.push(Sample {
            family: family.to_owned(),
            labels,
            value,
        });
    }
    out
}

fn fmt_int(v: f64) -> String {
    format!("{}", v as i64)
}

/// Renders a scraped exposition as the `p2psd status` tables: one row
/// per reactor shard, one per in-flight requester session, plus totals.
fn render_status(text: &str) -> String {
    let samples = parse_samples(text);
    let value_at = |family: &str, labels: &[(&str, &str)]| -> Option<f64> {
        samples
            .iter()
            .find(|s| {
                s.family == family
                    && s.labels.len() == labels.len()
                    && labels.iter().all(|(k, v)| s.label(k) == Some(v))
            })
            .map(|s| s.value)
    };
    let mut out = String::new();

    // Per-reactor rows, keyed off the always-present connection gauge.
    let mut reactors: Vec<&str> = samples
        .iter()
        .filter(|s| s.family == "p2ps_reactor_connections")
        .filter_map(|s| s.label("reactor"))
        .collect();
    reactors.sort_by_key(|r| r.parse::<u64>().unwrap_or(u64::MAX));
    reactors.dedup();
    if !reactors.is_empty() {
        let mut table = Table::new([
            "reactor",
            "conns",
            "nodes",
            "streams",
            "timers",
            "queued-bytes",
            "bytes-in",
            "bytes-out",
        ]);
        for r in &reactors {
            let labels = [("reactor", *r)];
            let cell = |family: &str| {
                value_at(family, &labels)
                    .map(fmt_int)
                    .unwrap_or_else(|| "-".into())
            };
            table.row([
                (*r).to_owned(),
                cell("p2ps_reactor_connections"),
                cell("p2ps_reactor_hosted_nodes"),
                cell("p2ps_reactor_active_streams"),
                cell("p2ps_reactor_timer_entries"),
                cell("p2ps_reactor_queued_write_bytes"),
                cell("p2ps_reactor_bytes_read_total"),
                cell("p2ps_reactor_bytes_written_total"),
            ]);
        }
        out.push_str("reactors:\n");
        out.push_str(&table.render());
    }

    // Per-session rows; lag is computed against the snapshot clock the
    // endpoint exports alongside the tree.
    let now_ms = value_at("p2ps_snapshot_now_ms", &[]).unwrap_or(0.0);
    let mut sessions: Vec<(&str, &str)> = samples
        .iter()
        .filter(|s| s.family == "p2ps_session_total_segments")
        .filter_map(|s| Some((s.label("reactor")?, s.label("session")?)))
        .collect();
    sessions.sort();
    sessions.dedup();
    if sessions.is_empty() {
        out.push_str("\nsessions: none in flight\n");
    } else {
        let mut table = Table::new([
            "session", "reactor", "state", "received", "total", "owed", "lag-ms",
        ]);
        for (reactor, session) in &sessions {
            let labels = [("reactor", *reactor), ("session", *session)];
            let cell = |family: &str| {
                value_at(family, &labels)
                    .map(fmt_int)
                    .unwrap_or_else(|| "-".into())
            };
            // A state cell renders as one 0/1 sample per possible state;
            // the active one carries the value 1.
            let state = samples
                .iter()
                .find(|s| {
                    s.family == "p2ps_session_state"
                        && s.value == 1.0
                        && s.label("reactor") == Some(reactor)
                        && s.label("session") == Some(session)
                })
                .and_then(|s| s.label("state"))
                .unwrap_or("-");
            let lag = value_at("p2ps_session_last_progress_ms", &labels)
                .map(|last| fmt_int((now_ms - last).max(0.0)))
                .unwrap_or_else(|| "-".into());
            table.row([
                (*session).to_owned(),
                (*reactor).to_owned(),
                state.to_owned(),
                cell("p2ps_session_received_segments"),
                cell("p2ps_session_total_segments"),
                cell("p2ps_session_owed_segments"),
                lag,
            ]);
        }
        out.push_str("\nsessions:\n");
        out.push_str(&table.render());
    }

    if let Some(stalls) = value_at("p2ps_watchdog_stalls_total", &[]) {
        out.push_str(&format!("\nwatchdog stalls: {}\n", fmt_int(stalls)));
    }
    let stripes: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.family == "p2ps_stripe_records")
        .collect();
    if !stripes.is_empty() {
        let total: f64 = stripes.iter().map(|s| s.value).sum();
        out.push_str(&format!(
            "index stripes: {} holding {} supplier records\n",
            stripes.len(),
            fmt_int(total)
        ));
    }
    for (family, label) in [
        ("p2ps_registrations_total", "registrations"),
        ("p2ps_queries_total", "queries"),
    ] {
        if let Some(v) = value_at(family, &[]) {
            out.push_str(&format!("directory {label}: {}\n", fmt_int(v)));
        }
    }
    out
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `--help` must short-circuit before Args::parse, which would reject
    // a trailing `--help` as a flag missing its value.
    if raw.iter().any(|a| a == "--help" || a == "-h")
        || raw.first().map(String::as_str) == Some("help")
    {
        print!("{USAGE}");
        return Ok(());
    }
    let args = Args::parse(raw, FLAGS)?;
    match args.positional(0) {
        Some("directory") => {
            let port: u16 = args.get_or("port", 0)?;
            let server = DirectoryServer::start_on(port)?;
            let _status = maybe_status_server(&args, server.monitor())?;
            println!("directory listening on {}", server.addr());
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some("seed") => {
            let config = node_config(&args)?;
            let item = config.info.name().to_owned();
            let node = PeerNode::spawn_seed(config, Clock::new())?;
            let _status = maybe_status_server(&args, node.monitor())?;
            println!(
                "seed {} ({}) serving {item:?} on port {}",
                node.id(),
                node.class(),
                node.port()
            );
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some("stream") => {
            let config = node_config(&args)?;
            let m: usize = args.get_or("m", 8)?;
            let retries: u32 = args.get_or("retries", 10)?;
            let serve_secs: u64 = args.get_or("serve-secs", 0)?;
            let node = PeerNode::spawn(config, Clock::new())?;
            let _status = maybe_status_server(&args, node.monitor())?;
            println!(
                "requesting peer {} ({}) probing M={m} candidates…",
                node.id(),
                node.class()
            );
            let outcome = node.request_stream_with_retry(m, retries, Duration::from_millis(500))?;
            println!(
                "admitted: {} supplier(s) of classes {:?}",
                outcome.supplier_count,
                outcome
                    .supplier_classes
                    .iter()
                    .map(|c| c.get())
                    .collect::<Vec<_>>()
            );
            println!(
                "buffering delay: measured {} ms, Theorem-1 optimum {} ms; session {} ms",
                outcome.measured_delay_ms, outcome.theoretical_delay_ms, outcome.duration_ms
            );
            if serve_secs > 0 {
                println!("now supplying on port {} for {serve_secs}s…", node.port());
                std::thread::sleep(Duration::from_secs(serve_secs));
            }
            node.shutdown();
            Ok(())
        }
        Some("status") => {
            let addr = args.require::<String>("status-addr")?;
            if let Some(session) = args.get("trace") {
                let raw = fetch_path(&addr, &format!("/trace/{session}"))?;
                print!("{}", render_trace(&raw));
            } else {
                let text = fetch_status(&addr)?;
                print!("{}", render_status(&text));
            }
            Ok(())
        }
        other => {
            eprintln!(
                "usage: p2psd <directory|seed|stream|status> [--flags]\n  (got {other:?}; run `p2psd --help` for the full flag list)"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("p2psd: {e}");
        std::process::exit(1);
    }
}
