//! `p2psd` — run the peer-to-peer streaming system from a shell.
//!
//! ```text
//! p2psd directory [--port 0]
//! p2psd seed    --dir HOST:PORT [--id N] [--class K] [--item NAME]
//!               [--segments N] [--dt-ms MS] [--segment-bytes B]
//!               [--threads T]
//! p2psd stream  --dir HOST:PORT [--id N] [--class K] [--item NAME]
//!               [--segments N] [--dt-ms MS] [--segment-bytes B]
//!               [--m M] [--retries N] [--serve-secs S] [--threads T]
//! ```
//!
//! `--threads` sizes the node's reactor pool (default 1): its supplier
//! listener and requester sessions shard across that many event-loop
//! threads, the multi-core knob for heavily loaded peers.
//!
//! `directory` runs until killed (binding the loopback port given by
//! `--port`, or an ephemeral one when 0/omitted); `seed` serves until
//! killed; `stream` performs the paper's §4.2 admission + streaming,
//! prints the measured buffering delay, then (optionally) stays around
//! serving as a supplier for `--serve-secs`.
//!
//! Exit codes are script-friendly: `0` on success, `1` on any runtime
//! error (unknown flag, bind failure, connection refused, admission
//! rejection after retries, broken stream), `2` on bad usage (missing or
//! unknown subcommand).

use std::net::SocketAddr;
use std::time::Duration;

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;
use p2ps_node::{Args, Clock, DirectoryServer, NodeConfig, PeerNode};

const MEDIA_FLAGS: &[&str] = &[
    "dir",
    "id",
    "class",
    "item",
    "segments",
    "dt-ms",
    "segment-bytes",
    "m",
    "retries",
    "serve-secs",
    "port",
    "threads",
];

fn media_info(args: &Args) -> Result<MediaInfo, Box<dyn std::error::Error>> {
    let item = args.get("item").unwrap_or("p2ps-demo").to_owned();
    let segments: u64 = args.get_or("segments", 120)?;
    let dt_ms: u64 = args.get_or("dt-ms", 250)?;
    let bytes: u32 = args.get_or("segment-bytes", 16 * 1024)?;
    Ok(MediaInfo::new(
        item,
        segments,
        SegmentDuration::from_millis(dt_ms),
        bytes,
    ))
}

fn node_config(args: &Args) -> Result<NodeConfig, Box<dyn std::error::Error>> {
    let dir: SocketAddr = args.require("dir")?;
    let id: u64 = args.get_or("id", std::process::id() as u64)?;
    let class: u8 = args.get_or("class", 1)?;
    let mut config = NodeConfig::new(
        PeerId::new(id),
        PeerClass::new(class)?,
        media_info(args)?,
        dir,
    );
    config.threads = args.get_or("threads", 1)?;
    Ok(config)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(raw, MEDIA_FLAGS)?;
    match args.positional(0) {
        Some("directory") => {
            let port: u16 = args.get_or("port", 0)?;
            let server = DirectoryServer::start_on(port)?;
            println!("directory listening on {}", server.addr());
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some("seed") => {
            let config = node_config(&args)?;
            let item = config.info.name().to_owned();
            let node = PeerNode::spawn_seed(config, Clock::new())?;
            println!(
                "seed {} ({}) serving {item:?} on port {}",
                node.id(),
                node.class(),
                node.port()
            );
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some("stream") => {
            let config = node_config(&args)?;
            let m: usize = args.get_or("m", 8)?;
            let retries: u32 = args.get_or("retries", 10)?;
            let serve_secs: u64 = args.get_or("serve-secs", 0)?;
            let node = PeerNode::spawn(config, Clock::new())?;
            println!(
                "requesting peer {} ({}) probing M={m} candidates…",
                node.id(),
                node.class()
            );
            let outcome = node.request_stream_with_retry(m, retries, Duration::from_millis(500))?;
            println!(
                "admitted: {} supplier(s) of classes {:?}",
                outcome.supplier_count,
                outcome
                    .supplier_classes
                    .iter()
                    .map(|c| c.get())
                    .collect::<Vec<_>>()
            );
            println!(
                "buffering delay: measured {} ms, Theorem-1 optimum {} ms; session {} ms",
                outcome.measured_delay_ms, outcome.theoretical_delay_ms, outcome.duration_ms
            );
            if serve_secs > 0 {
                println!("now supplying on port {} for {serve_secs}s…", node.port());
                std::thread::sleep(Duration::from_secs(serve_secs));
            }
            node.shutdown();
            Ok(())
        }
        other => {
            eprintln!(
                "usage: p2psd <directory|seed|stream> [--flags]\n  (got {other:?}; see the binary's module docs for the full flag list)"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("p2psd: {e}");
        std::process::exit(1);
    }
}
