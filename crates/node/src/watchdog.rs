//! The stall watchdog: a timer that walks the monitor tree, flags
//! sessions whose §3 pacing deadline slipped, and escalates each flagged
//! session back into its reactor shard for recovery.
//!
//! Healthy pacing (paper §3) delivers a session's next segment within its
//! worst per-supplier stride `spp · δt`. Each requester session publishes
//! that stride and a last-progress timestamp on its monitor scope
//! ([`crate::requester`]); the watchdog periodically snapshots the tree
//! and, for every session still in the `streaming` state, compares the
//! time since last progress against `stride + grace`. A session past the
//! bound is flagged *through its live snapshot row*: its state cell flips
//! to `stalled`, the root `watchdog_stalls_total` counter increments, a
//! `StallFlagged` event lands in the session's flight recorder, and a
//! `Recover` command is routed to the session's own reactor shard —
//! where [`ReqSessions::recover`](crate::requester::ReqSessions) fails
//! the stalest quiet lane and replans its share over the survivors.
//!
//! The flag is edge-triggered per tick — a stalled session is skipped on
//! later ticks until something moves it back to `streaming` (a segment
//! arrival, or the recovery replan shipping). The stderr line is
//! rate-limited harder: one line per session per stall *episode*, where
//! an episode only ends once real progress is observed — recovery cycles
//! that flip the state without delivering data do not re-print.
//!
//! The watchdog never touches reactor threads or hot-path locks: it reads
//! and writes the same relaxed atomics the sessions publish, and its
//! escalations ride the same command queue as every other reactor input.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use p2ps_monitor::{monotonic_ms, Counter, Monitor};
use p2ps_net::PoolHandle;
use p2ps_proto::SessionEvent;

use crate::serve::NodeCmd;

/// Tuning for a [`NodeReactor`](crate::NodeReactor)'s stall watchdog.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// How often the watchdog walks a snapshot (default 500 ms).
    pub interval_ms: u64,
    /// Slack past a session's worst-case healthy segment stride before
    /// it is flagged as stalled (default 3000 ms).
    pub grace_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval_ms: 500,
            grace_ms: 3_000,
        }
    }
}

/// The background watchdog thread; stops (and joins) on drop.
#[derive(Debug)]
pub(crate) struct Watchdog {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog over the tree rooted at `root`, registering
    /// the root-level `watchdog_stalls_total` counter. With a `pool`,
    /// every flagged session is escalated to its reactor shard as a
    /// [`NodeCmd::Recover`]; without one (tests observing flags only)
    /// the watchdog just flags.
    pub(crate) fn start(
        root: Monitor,
        cfg: WatchdogConfig,
        pool: Option<PoolHandle<NodeCmd>>,
    ) -> Watchdog {
        let stalls = root.counter(
            "watchdog_stalls_total",
            "sessions the stall watchdog flagged",
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let interval = Duration::from_millis(cfg.interval_ms.max(1));
        let thread = std::thread::Builder::new()
            .name("p2ps-watchdog".into())
            .spawn(move || {
                let mut reported = HashSet::new();
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    tick(&root, &stalls, cfg.grace_ms, pool.as_ref(), &mut reported);
                }
            })
            .expect("spawning the watchdog thread cannot fail");
        Watchdog {
            stop,
            thread: Some(thread),
        }
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One watchdog pass over the tree. `reported` carries the stderr rate
/// limit across ticks: session ids whose current stall episode has
/// already been printed (pruned when the session progresses or vanishes).
fn tick(
    root: &Monitor,
    stalls: &Counter,
    grace_ms: u64,
    pool: Option<&PoolHandle<NodeCmd>>,
    reported: &mut HashSet<u64>,
) {
    let snap = root.snapshot();
    let now = monotonic_ms();
    let mut seen = HashSet::new();
    for node in snap.nodes() {
        if node.kind() != Some("session") {
            continue;
        }
        // Snapshot rows carry live handles: the reads below are fresh and
        // the state write lands in the session's own cell.
        let Some(state) = node.metric("state").and_then(|m| m.handle().as_state()) else {
            continue;
        };
        let session: Option<u64> = node.label("session").and_then(|s| s.parse().ok());
        if let Some(id) = session {
            seen.insert(id);
        }
        let gauge = |name: &str| {
            node.metric(name)
                .and_then(|m| m.handle().as_gauge())
                .map(|g| g.get().max(0) as u64)
        };
        let (Some(last), Some(stride)) = (gauge("last_progress_ms"), gauge("stride_ms")) else {
            continue;
        };
        let lag = now.saturating_sub(last);
        if !state.is("streaming") {
            continue;
        }
        if lag <= stride + grace_ms {
            // Fresh progress ends the session's stall episode: the next
            // stall prints (and counts) again.
            if let Some(id) = session {
                reported.remove(&id);
            }
            continue;
        }
        state.set("stalled");
        stalls.incr();
        if let Some(rec) = node.metric("events").and_then(|m| m.handle().as_recorder()) {
            let (a, b) = SessionEvent::StallFlagged { lag_ms: lag }.fields();
            rec.record(SessionEvent::StallFlagged { lag_ms: lag }.code(), a, b);
        }
        // One stderr line per stall episode, however many recovery
        // cycles the episode takes.
        if session.is_none_or(|id| reported.insert(id)) {
            eprintln!(
                "p2ps-watchdog: stall session={} reactor={} lag_ms={lag} stride_ms={stride} grace_ms={grace_ms}",
                node.label("session").unwrap_or("?"),
                node.label("reactor").unwrap_or("?"),
            );
        }
        if let (Some(pool), Some(id)) = (pool, session) {
            pool.shard(id).send(NodeCmd::Recover {
                session: id,
                grace_ms,
            });
        }
    }
    // Finished sessions drop their scopes; drop our memory of them too.
    reported.retain(|id| seen.contains(id));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `tick` directly (no thread, no sleeps): a quiet streaming
    /// session is flagged, a fresh one is not, and a flagged one is
    /// skipped until it reports progress again. The stderr rate-limit
    /// set tracks episodes: a re-flag within one episode re-counts but
    /// does not re-report.
    #[test]
    fn tick_flags_only_quiet_streaming_sessions() {
        const STATES: &[&str] = &["probing", "streaming", "stalled"];
        // Pin the process epoch, then let a little time pass so a
        // last-progress of 0 reads as a real lag below.
        let _ = monotonic_ms();
        std::thread::sleep(Duration::from_millis(15));
        let root = Monitor::root();
        let stalls = root.counter("watchdog_stalls_total", "flags");
        let scope = root.child("reactor", 0);
        let mut reported = HashSet::new();

        let quiet = scope.child("session", 1);
        let quiet_state = quiet.state("state", "phase", STATES);
        quiet_state.set("streaming");
        quiet.gauge("last_progress_ms", "t").set(0);
        quiet.gauge("stride_ms", "stride").set(10);

        let fresh = scope.child("session", 2);
        let fresh_state = fresh.state("state", "phase", STATES);
        fresh_state.set("streaming");
        fresh
            .gauge("last_progress_ms", "t")
            .set(monotonic_ms() as i64);
        fresh.gauge("stride_ms", "stride").set(10);

        let probing = scope.child("session", 3);
        let probing_state = probing.state("state", "phase", STATES);
        probing.gauge("last_progress_ms", "t").set(0);
        probing.gauge("stride_ms", "stride").set(10);

        tick(&root, &stalls, 0, None, &mut reported);
        assert!(quiet_state.is("stalled"), "quiet session flagged");
        assert!(fresh_state.is("streaming"), "fresh session untouched");
        assert!(probing_state.is("probing"), "non-streaming never flagged");
        assert_eq!(stalls.get(), 1);
        assert!(reported.contains(&1), "episode recorded for stderr limit");

        // Edge-triggered: no re-flagging while still stalled.
        tick(&root, &stalls, 0, None, &mut reported);
        assert_eq!(stalls.get(), 1);

        // A recovery replan flips the state back without data progress:
        // the re-flag counts, but the episode stays reported (one stderr
        // line per episode).
        quiet_state.set("streaming");
        tick(&root, &stalls, 0, None, &mut reported);
        assert!(quiet_state.is("stalled"));
        assert_eq!(stalls.get(), 2);
        assert!(reported.contains(&1), "still the same episode");

        // Real progress ends the episode...
        quiet_state.set("streaming");
        quiet
            .gauge("last_progress_ms", "t")
            .set(monotonic_ms() as i64);
        tick(&root, &stalls, 0, None, &mut reported);
        assert!(quiet_state.is("streaming"));
        assert_eq!(stalls.get(), 2);
        assert!(!reported.contains(&1), "progress ends the episode");

        // ...and the session's events ring witnesses the next flag.
        let events = quiet.events("events", "timeline");
        quiet.gauge("last_progress_ms", "t").set(0);
        tick(&root, &stalls, 0, None, &mut reported);
        assert!(quiet_state.is("stalled"));
        assert_eq!(stalls.get(), 3);
        let flagged = events.events();
        assert_eq!(flagged.len(), 1);
        assert_eq!(
            flagged[0].code,
            SessionEvent::StallFlagged { lag_ms: 0 }.code()
        );
        assert!(flagged[0].a > 0, "lag_ms rides the event payload");

        // Vanished sessions are pruned from the rate-limit set.
        drop((quiet, quiet_state, events));
        tick(&root, &stalls, 0, None, &mut reported);
        assert!(!reported.contains(&1));
    }
}
