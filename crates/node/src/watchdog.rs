//! The stall watchdog: a timer that walks the monitor tree and flags
//! sessions whose §3 pacing deadline slipped.
//!
//! Healthy pacing (paper §3) delivers a session's next segment within its
//! worst per-supplier stride `spp · δt`. Each requester session publishes
//! that stride and a last-progress timestamp on its monitor scope
//! ([`crate::requester`]); the watchdog periodically snapshots the tree
//! and, for every session still in the `streaming` state, compares the
//! time since last progress against `stride + grace`. A session past the
//! bound is flagged *through its live snapshot row*: its state cell flips
//! to `stalled`, the root `watchdog_stalls_total` counter increments, and
//! one structured line goes to stderr. The flag is edge-triggered — a
//! stalled session is skipped on later ticks until a segment arrival
//! moves it back to `streaming`.
//!
//! The watchdog never touches reactor threads or hot-path locks: it reads
//! and writes the same relaxed atomics the sessions publish.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use p2ps_monitor::{monotonic_ms, Counter, Monitor};

/// Tuning for a [`NodeReactor`](crate::NodeReactor)'s stall watchdog.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// How often the watchdog walks a snapshot (default 500 ms).
    pub interval_ms: u64,
    /// Slack past a session's worst-case healthy segment stride before
    /// it is flagged as stalled (default 3000 ms).
    pub grace_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval_ms: 500,
            grace_ms: 3_000,
        }
    }
}

/// The background watchdog thread; stops (and joins) on drop.
#[derive(Debug)]
pub(crate) struct Watchdog {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog over the tree rooted at `root`, registering
    /// the root-level `watchdog_stalls_total` counter.
    pub(crate) fn start(root: Monitor, cfg: WatchdogConfig) -> Watchdog {
        let stalls = root.counter(
            "watchdog_stalls_total",
            "sessions the stall watchdog flagged",
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let interval = Duration::from_millis(cfg.interval_ms.max(1));
        let thread = std::thread::Builder::new()
            .name("p2ps-watchdog".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    tick(&root, &stalls, cfg.grace_ms);
                }
            })
            .expect("spawning the watchdog thread cannot fail");
        Watchdog {
            stop,
            thread: Some(thread),
        }
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One watchdog pass over the tree.
fn tick(root: &Monitor, stalls: &Counter, grace_ms: u64) {
    let snap = root.snapshot();
    let now = monotonic_ms();
    for node in snap.nodes() {
        if node.kind() != Some("session") {
            continue;
        }
        // Snapshot rows carry live handles: the reads below are fresh and
        // the state write lands in the session's own cell.
        let Some(state) = node.metric("state").and_then(|m| m.handle().as_state()) else {
            continue;
        };
        if !state.is("streaming") {
            continue;
        }
        let gauge = |name: &str| {
            node.metric(name)
                .and_then(|m| m.handle().as_gauge())
                .map(|g| g.get().max(0) as u64)
        };
        let (Some(last), Some(stride)) = (gauge("last_progress_ms"), gauge("stride_ms")) else {
            continue;
        };
        let lag = now.saturating_sub(last);
        if lag > stride + grace_ms {
            state.set("stalled");
            stalls.incr();
            eprintln!(
                "p2ps-watchdog: stall session={} reactor={} lag_ms={lag} stride_ms={stride} grace_ms={grace_ms}",
                node.label("session").unwrap_or("?"),
                node.label("reactor").unwrap_or("?"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `tick` directly (no thread, no sleeps): a quiet streaming
    /// session is flagged, a fresh one is not, and a flagged one is
    /// skipped until it reports progress again.
    #[test]
    fn tick_flags_only_quiet_streaming_sessions() {
        const STATES: &[&str] = &["probing", "streaming", "stalled"];
        // Pin the process epoch, then let a little time pass so a
        // last-progress of 0 reads as a real lag below.
        let _ = monotonic_ms();
        std::thread::sleep(Duration::from_millis(15));
        let root = Monitor::root();
        let stalls = root.counter("watchdog_stalls_total", "flags");
        let scope = root.child("reactor", 0);

        let quiet = scope.child("session", 1);
        let quiet_state = quiet.state("state", "phase", STATES);
        quiet_state.set("streaming");
        quiet.gauge("last_progress_ms", "t").set(0);
        quiet.gauge("stride_ms", "stride").set(10);

        let fresh = scope.child("session", 2);
        let fresh_state = fresh.state("state", "phase", STATES);
        fresh_state.set("streaming");
        fresh
            .gauge("last_progress_ms", "t")
            .set(monotonic_ms() as i64);
        fresh.gauge("stride_ms", "stride").set(10);

        let probing = scope.child("session", 3);
        let probing_state = probing.state("state", "phase", STATES);
        probing.gauge("last_progress_ms", "t").set(0);
        probing.gauge("stride_ms", "stride").set(10);

        tick(&root, &stalls, 0);
        assert!(quiet_state.is("stalled"), "quiet session flagged");
        assert!(fresh_state.is("streaming"), "fresh session untouched");
        assert!(probing_state.is("probing"), "non-streaming never flagged");
        assert_eq!(stalls.get(), 1);

        // Edge-triggered: no re-flagging while still stalled.
        tick(&root, &stalls, 0);
        assert_eq!(stalls.get(), 1);

        // Progress recovers the session; going quiet flags it again.
        quiet_state.set("streaming");
        quiet.gauge("last_progress_ms", "t").set(0);
        tick(&root, &stalls, 0);
        assert!(quiet_state.is("stalled"));
        assert_eq!(stalls.get(), 2);
    }
}
