//! Pins the reactor property that motivated the directory migration: an
//! idle connected client must not delay other peers' traffic.
//!
//! The old accept loop served connections *serially*: one client that
//! connected and went quiet held the loop inside its 5-second read
//! timeout, stalling every other peer's registration and query. Against
//! that implementation this test fails by construction (the query round
//! below cannot complete in under ~5 s); on the reactor each connection
//! only owns a decoder and a timer, so the round completes in
//! milliseconds.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use p2ps_core::{PeerClass, PeerId};
use p2ps_node::{query_candidates, register_supplier, DirectoryServer};

#[test]
fn idle_client_does_not_delay_other_peers() {
    let dir = DirectoryServer::start().unwrap();

    // Three clients connect and say nothing — the flash-crowd straggler.
    let idlers: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(dir.addr()).unwrap())
        .collect();
    // Make sure they are accepted (and, on the old code, one of them is
    // monopolizing the serve loop) before the real peer shows up.
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    for i in 0..8u64 {
        register_supplier(
            dir.addr(),
            "video",
            PeerId::new(i),
            PeerClass::new(1 + (i % 4) as u8).unwrap(),
            9_000 + i as u16,
        )
        .unwrap();
    }
    let mut got = Vec::new();
    while start.elapsed() < Duration::from_secs(2) {
        got = query_candidates(dir.addr(), "video", 8).unwrap();
        if got.len() == 8 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed = start.elapsed();
    assert_eq!(got.len(), 8, "all registrations visible");
    // The old serial loop cannot answer before the first idle client's
    // 5-second read timeout expires; the reactor answers immediately.
    assert!(
        elapsed < Duration::from_secs(2),
        "register+query took {elapsed:?} with idle clients connected"
    );
    drop(idlers);
    dir.shutdown();
}

#[test]
fn idle_clients_are_reaped_while_service_continues() {
    let dir = DirectoryServer::start().unwrap();
    let mut idle = TcpStream::connect(dir.addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Service keeps flowing while the idle connection ages out.
    register_supplier(dir.addr(), "v", PeerId::new(1), PeerClass::HIGHEST, 4321).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let got = query_candidates(dir.addr(), "v", 4).unwrap();
        if got.len() == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "registration never surfaced");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The directory's 5-second idle timer must eventually close the
    // silent connection (a slowloris defence the serial loop offered
    // only by blocking everyone else).
    use std::io::Read;
    let mut buf = [0u8; 1];
    match idle.read(&mut buf) {
        Ok(0) => {} // clean EOF: reaped
        Ok(n) => panic!("unexpected {n} bytes from the directory"),
        Err(e) => panic!("expected EOF from the reaped connection, got {e}"),
    }
    dir.shutdown();
}
