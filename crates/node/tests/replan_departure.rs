//! Live replan on supplier departure: kill one supplier mid-stream and
//! the requester still completes **byte-identically** via the fallback
//! plan.
//!
//! Two class-2 seeds serve one class-1 requester (together they match
//! `R0`, so the §3 periodic assignment splits the file across both). Mid-
//! stream, one seed is shut down — its connection drops like a crash.
//! The reactor-hosted requester must treat that as a structured
//! per-supplier failure, route the dead supplier's undelivered share
//! through `SelectionPolicy::replan`, append it to the survivor's
//! schedule over the wire, and finish with a file identical to the
//! synthesized original.

use std::time::{Duration, Instant};

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaFile;
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeReactor, PeerNode};

const SEGMENTS: u64 = 64;
const DT_MS: u64 = 20;

#[test]
fn killed_supplier_is_replanned_and_the_file_is_byte_identical() {
    let info = p2ps_media::MediaInfo::new(
        "replan-departure",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        512,
    );
    let reference = MediaFile::synthesize(info.clone());
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::new().unwrap();

    let class2 = PeerClass::new(2).unwrap();
    let seed_a = PeerNode::spawn_seed_on(
        NodeConfig::new(PeerId::new(0), class2, info.clone(), dir.addr()),
        clock.clone(),
        &reactor,
    )
    .unwrap();
    let seed_b = PeerNode::spawn_seed_on(
        NodeConfig::new(PeerId::new(1), class2, info.clone(), dir.addr()),
        clock.clone(),
        &reactor,
    )
    .unwrap();

    // A class-1 requester needs both class-2 grants (1/2 + 1/2 = R0) and
    // is favored by every reachable admission vector, so the two-supplier
    // session is deterministic.
    let requester = PeerNode::spawn_on(
        NodeConfig::new(PeerId::new(2), PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
        &reactor,
    )
    .unwrap();

    let started = Instant::now();
    let pending = requester.begin_stream(8).unwrap();

    // Let roughly a quarter of the paced session elapse, then crash one
    // supplier. The full session runs ≈ SEGMENTS · DT_MS = 1.28 s, so
    // 300 ms is reliably mid-stream.
    std::thread::sleep(Duration::from_millis(300));
    seed_b.shutdown();

    let outcome = pending
        .wait()
        .expect("session must survive the departure via replan");
    assert_eq!(outcome.supplier_count, 2, "both seeds granted the session");
    assert!(
        started.elapsed() >= Duration::from_millis((SEGMENTS - 1) * DT_MS),
        "the survivor still paces; the session cannot beat its schedule"
    );

    // Byte-for-byte: the reassembled file equals the synthesized one.
    let file = requester.media_file().expect("requester stored the file");
    for i in 0..SEGMENTS {
        assert_eq!(
            file.segment(i).into_payload(),
            reference.segment(i).into_payload(),
            "segment {i} differs after the replan"
        );
    }
    assert!(requester.is_supplier(), "completed peers re-register");

    requester.shutdown();
    seed_a.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

#[test]
fn shutdown_mid_session_keeps_the_file_but_never_advertises_a_dead_port() {
    // The requesting node is shut down while its session is still in
    // flight on the shared pool. The session itself completes (its lanes
    // are not the node's supplier connections), but the directory must
    // NOT be handed the dead listener's port.
    let info = p2ps_media::MediaInfo::new(
        "shutdown-no-register",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        512,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::new().unwrap();
    let seed = PeerNode::spawn_seed_on(
        NodeConfig::new(PeerId::new(0), PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
        &reactor,
    )
    .unwrap();
    let requester_id = PeerId::new(7);
    let requester = PeerNode::spawn_on(
        NodeConfig::new(requester_id, PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
        &reactor,
    )
    .unwrap();

    let pending = requester.begin_stream(8).unwrap();
    requester.shutdown();
    pending
        .wait()
        .expect("the in-flight session outlives the node handle");
    let candidates = p2ps_node::query_candidates(dir.addr(), info.name(), 16).unwrap();
    assert!(
        candidates.iter().all(|c| c.id != requester_id),
        "a shut-down node must not register as a supplier: {candidates:?}"
    );

    seed.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

#[test]
fn losing_every_supplier_fails_with_a_structured_error() {
    // Same shape, but both seeds die: no survivor remains to replan onto
    // and the session must fail with SuppliersLost — the structured
    // replacement for the old reader-thread error mapping.
    let info = p2ps_media::MediaInfo::new(
        "replan-total-loss",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        512,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::new().unwrap();
    let class2 = PeerClass::new(2).unwrap();
    let seeds: Vec<PeerNode> = (0..2)
        .map(|i| {
            PeerNode::spawn_seed_on(
                NodeConfig::new(PeerId::new(i), class2, info.clone(), dir.addr()),
                clock.clone(),
                &reactor,
            )
            .unwrap()
        })
        .collect();
    let requester = PeerNode::spawn_on(
        NodeConfig::new(PeerId::new(9), PeerClass::HIGHEST, info.clone(), dir.addr()),
        clock.clone(),
        &reactor,
    )
    .unwrap();

    let pending = requester.begin_stream(8).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    for seed in seeds {
        seed.shutdown();
    }
    match pending.wait() {
        Err(p2ps_node::NodeError::SuppliersLost { missing }) => {
            assert!(missing > 0, "something must have been outstanding");
        }
        other => panic!("expected SuppliersLost, got {other:?}"),
    }
    assert!(!requester.is_supplier(), "no truncated file is re-served");

    requester.shutdown();
    reactor.shutdown();
    dir.shutdown();
}
