//! The stall watchdog against real sessions: a supplier that freezes its
//! §3 pacing gets its session flagged `stalled` within the grace window,
//! while a healthy multi-session swarm is never flagged — and the
//! introspection tree exposes per-reactor queue depth, per-session state
//! and owed-queue lag for all of it without touching the data path.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::MediaInfo;
use p2ps_node::{
    Clock, DirectoryServer, NodeConfig, NodeError, NodeReactor, PeerNode, WatchdogConfig,
};
use p2ps_proto::{read_message, write_message, CandidateRecord, Message};

/// A supplier that passes admission and then freezes: accepts one
/// connection, grants the stream request, reads the `StartSession`, and
/// never sends a single segment. Returns the listener's port.
fn frozen_supplier() -> u16 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        let Ok((mut conn, _)) = listener.accept() else {
            return;
        };
        // Bounded reads so the thread dies with the test instead of
        // outliving a failed assertion.
        let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
        let Ok(Message::StreamRequest { session, .. }) = read_message(&mut conn) else {
            return;
        };
        let _ = write_message(
            &mut conn,
            &Message::Grant {
                session,
                class: PeerClass::HIGHEST,
            },
        );
        let Ok(Message::StartSession { .. }) = read_message(&mut conn) else {
            return;
        };
        // ...and now: silence. Block until the requester hangs up.
        let _ = read_message(&mut conn);
    });
    port
}

/// One frozen supplier, one healthy seed: the watchdog must flag exactly
/// the frozen supplier's session — and must flag it within the grace
/// window, not on the 30 s read timeout the reactor would eventually hit.
#[test]
fn watchdog_flags_the_stalled_session_and_only_it() {
    let info = MediaInfo::new("stall-test", 16, SegmentDuration::from_millis(20), 64);
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    // Aggressive watchdog so the test observes a flag in tens of ms:
    // stride for a class-1 lane is 1·δt = 20 ms, so the deadline is
    // 20 + 150 ms past the last segment.
    let reactor = NodeReactor::with_options(
        2,
        WatchdogConfig {
            interval_ms: 25,
            grace_ms: 150,
        },
    )
    .unwrap();

    // The healthy half: a real seed, a real paced session.
    let seed_cfg = NodeConfig::new(PeerId::new(1), PeerClass::HIGHEST, info.clone(), dir.addr());
    let seed = PeerNode::spawn_seed_on(seed_cfg, clock.clone(), &reactor).unwrap();
    let healthy_cfg = NodeConfig::new(PeerId::new(2), PeerClass::HIGHEST, info.clone(), dir.addr());
    let healthy = PeerNode::spawn_on(healthy_cfg, clock.clone(), &reactor).unwrap();
    let healthy_pending = healthy.begin_stream(4).unwrap();

    // The stalled half: admission succeeds, then nothing ever arrives.
    let frozen_port = frozen_supplier();
    let stalled_cfg = NodeConfig::new(PeerId::new(3), PeerClass::HIGHEST, info.clone(), dir.addr());
    let stalled = PeerNode::spawn_on(stalled_cfg, clock.clone(), &reactor).unwrap();
    let _stalled_pending = stalled
        .begin_stream_from(vec![CandidateRecord {
            id: PeerId::new(99),
            class: PeerClass::HIGHEST,
            port: frozen_port,
        }])
        .unwrap();

    // Poll the tree until the watchdog verdict lands. Deadline ≈ stride
    // (20 ms) + grace (150 ms) + one interval (25 ms); 5 s of slack keeps
    // a loaded CI machine from flaking the pin.
    let deadline = Instant::now() + Duration::from_secs(5);
    let flagged_at = loop {
        let snap = reactor.monitor().snapshot();
        let stalled_sessions = snap
            .nodes()
            .iter()
            .filter(|n| n.kind() == Some("session"))
            .filter(|n| {
                n.metric("state")
                    .map(|m| m.value().state_name() == Some("stalled"))
                    .unwrap_or(false)
            })
            .count();
        if stalled_sessions == 1 {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never flagged the frozen session"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    // The flagged session is genuinely the frozen one: it received
    // nothing while still owing its whole file.
    let flagged = flagged_at
        .nodes()
        .iter()
        .find(|n| {
            n.kind() == Some("session")
                && n.metric("state")
                    .map(|m| m.value().state_name() == Some("stalled"))
                    .unwrap_or(false)
        })
        .unwrap();
    assert_eq!(
        flagged
            .metric("received_segments")
            .unwrap()
            .value()
            .as_i64(),
        0,
        "the frozen supplier never delivered"
    );
    assert_eq!(
        flagged.metric("owed_segments").unwrap().value().as_i64(),
        16,
        "the frozen lane still owes the whole file"
    );

    // The healthy session completes and is never the flagged one: the
    // stall counter stays at exactly one event (edge-triggered).
    healthy_pending.wait().unwrap();
    let snap = reactor.monitor().snapshot();
    let stalls = snap
        .find(&[], "watchdog_stalls_total")
        .expect("the watchdog registers its counter at the root")
        .value()
        .as_i64();
    assert_eq!(stalls, 1, "only the frozen session may be flagged");

    stalled.shutdown();
    healthy.shutdown();
    seed.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

/// A healthy 64-session swarm: the acceptance pin that the tree reports
/// per-reactor queue depth, per-session state and owed-queue lag for a
/// live ≥64-session swarm — and that the watchdog flags none of it.
#[test]
fn healthy_sixty_four_session_swarm_flags_nothing() {
    const SESSIONS: usize = 64;
    const SEEDS: u64 = 80;
    const SEGMENTS: u64 = 64;
    const DT_MS: u64 = 30;

    let info = MediaInfo::new(
        "healthy-swarm",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        64,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    // A watchful watchdog: 500 ms grace against a 30 ms pacing stride.
    // Healthy paced sessions deliver a segment every δt, so nothing may
    // come within an order of magnitude of the deadline.
    let reactor = NodeReactor::with_options(
        2,
        WatchdogConfig {
            interval_ms: 50,
            grace_ms: 500,
        },
    )
    .unwrap();

    let seeds: Vec<PeerNode> = (0..SEEDS)
        .map(|i| {
            let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
            PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor).unwrap()
        })
        .collect();

    // Launch 64 sessions, then TOP UP: admission is reactor-hosted and
    // pipelined, so the simultaneous burst makes some rounds find all 16
    // sampled seeds transiently reserved — those reject (surfacing only
    // at wait(), which would block through a whole healthy stream).
    // Rather than wait, read the tree: a rejected round drops its
    // session scope, so `live < 64` tells us exactly how many
    // replacements to launch. Top-ups are small against mostly-free
    // seeds, so this converges in a round or two — well inside the
    // ≈1.9 s lifetime of the first sessions, keeping all 64 live at
    // once.
    let mut requesters = Vec::new();
    let mut pendings = Vec::new();
    let mut launched = 0u64;
    let mut attempts = 0;
    loop {
        let live = reactor
            .monitor()
            .snapshot()
            .nodes()
            .iter()
            .filter(|n| n.kind() == Some("session"))
            .count();
        if !requesters.is_empty() && live >= SESSIONS {
            break;
        }
        attempts += 1;
        assert!(attempts <= 10, "admission kept colliding: {live} live");
        for _ in live..SESSIONS {
            let cfg = NodeConfig::new(
                PeerId::new(SEEDS + launched),
                PeerClass::HIGHEST,
                info.clone(),
                dir.addr(),
            );
            launched += 1;
            let node = PeerNode::spawn_on(cfg, clock.clone(), &reactor).unwrap();
            let pending = node
                .begin_stream(16)
                .unwrap_or_else(|e| panic!("launch {launched} failed: {e}"));
            requesters.push(node);
            pendings.push(pending);
        }
        // Verdicts land within a few ms (every candidate is a live
        // seed); 100 ms lets the new rounds settle into streaming.
        std::thread::sleep(Duration::from_millis(100));
    }

    // All 64 sessions are paced over ≈ SEGMENTS·δt ≈ 1.9 s, so right
    // after the last hand-off every one of them is still in flight: the
    // snapshot must show the whole swarm. (Scoped: a snapshot's live
    // handles keep the session scopes alive, and the leak check below
    // must observe the real tree, not this snapshot's refs.)
    {
        let snap = reactor.monitor().snapshot();
        let sessions: Vec<_> = snap
            .nodes()
            .iter()
            .filter(|n| n.kind() == Some("session"))
            .collect();
        assert!(
            sessions.len() >= SESSIONS,
            "expected ≥{SESSIONS} live session scopes, saw {}",
            sessions.len()
        );
        for node in &sessions {
            let state = node
                .metric("state")
                .expect("every session exposes its phase")
                .value()
                .state_name()
                .unwrap();
            // "probing" is possible for an instant: the hand-off command may
            // still be in the reactor's queue when the snapshot is taken.
            assert!(
                state == "probing" || state == "streaming" || state == "complete",
                "healthy session in state {state:?}"
            );
            // Owed-queue lag: owed is live and bounded by the file size.
            let owed = node.metric("owed_segments").unwrap().value().as_i64();
            assert!((0..=SEGMENTS as i64).contains(&owed));
            assert!(node.metric("last_progress_ms").is_some());
            assert!(node.metric("stride_ms").is_some());
        }
        // Per-reactor queue depths are published for both shards.
        for shard in 0..2 {
            let id = shard.to_string();
            let labels = [("reactor", id.as_str())];
            for gauge in ["queued_write_bytes", "timer_entries", "connections"] {
                assert!(
                    snap.find(&labels, gauge).is_some(),
                    "reactor {shard} missing {gauge}"
                );
            }
        }
    }

    // Drain everything we launched: the rejected extras return
    // `Rejected`, every session that actually streamed must complete —
    // and at least 64 did, because their scopes were live above.
    let mut completed = 0;
    for (i, pending) in pendings.into_iter().enumerate() {
        match pending.wait() {
            Ok(_) => completed += 1,
            Err(NodeError::Rejected { .. }) => {}
            Err(e) => panic!("session {i} failed: {e}"),
        }
    }
    assert!(completed >= SESSIONS, "only {completed} sessions completed");

    // Healthy run: the watchdog saw 64 paced sessions and flagged none.
    let snap = reactor.monitor().snapshot();
    let stalls = snap
        .find(&[], "watchdog_stalls_total")
        .expect("watchdog counter")
        .value()
        .as_i64();
    assert_eq!(stalls, 0, "healthy sessions must never be flagged");
    // Completed sessions dropped their scopes: the tree does not leak.
    let leftover = snap
        .nodes()
        .iter()
        .filter(|n| n.kind() == Some("session"))
        .count();
    assert_eq!(leftover, 0, "{leftover} session scopes leaked");

    for node in requesters {
        node.shutdown();
    }
    for seed in seeds {
        seed.shutdown();
    }
    reactor.shutdown();
    dir.shutdown();
}
