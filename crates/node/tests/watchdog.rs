//! The stall watchdog against real sessions: a supplier that freezes its
//! §3 pacing gets its session flagged `stalled` within the grace window
//! and *recovered* — the watchdog escalates into the reactor, the
//! stalest lane is cut loose, and the survivors absorb its share so the
//! session completes byte-identical with no caller intervention. When no
//! survivor remains the session fails as `SuppliersLost` after bounded
//! attempts instead of hanging. A healthy multi-session swarm is never
//! flagged, and the flight recorder witnesses each sequence.

use std::net::TcpListener;
use std::time::Duration;

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_node::{
    Clock, DirectoryServer, NodeConfig, NodeError, NodeReactor, PeerNode, WatchdogConfig,
};
use p2ps_proto::{read_message, write_message, CandidateRecord, Message, SessionEvent};

/// A supplier that passes admission and then freezes: accepts one
/// connection, grants the stream request, reads the `StartSession`, and
/// never sends a single segment. Returns the listener's port.
fn frozen_supplier(class: PeerClass) -> u16 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        let Ok((mut conn, _)) = listener.accept() else {
            return;
        };
        // Bounded reads so the thread dies with the test instead of
        // outliving a failed assertion.
        let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
        let Ok(Message::StreamRequest { session, .. }) = read_message(&mut conn) else {
            return;
        };
        let _ = write_message(&mut conn, &Message::Grant { session, class });
        let Ok(Message::StartSession { .. }) = read_message(&mut conn) else {
            return;
        };
        // ...and now: silence. Block until the requester hangs up.
        let _ = read_message(&mut conn);
    });
    port
}

/// A scripted survivor: grants, serves its planned share promptly, then
/// keeps the socket open *without* `EndSession` — exactly the posture of
/// a healthy supplier whose partner stalled (its own schedule is drained
/// but the lane is still live). When the recovery replan arrives as an
/// explicit `StartSession`, it serves that share too. Returns the
/// listener's port.
fn rescuer_supplier(class: PeerClass, file: MediaFile) -> u16 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        let Ok((mut conn, _)) = listener.accept() else {
            return;
        };
        let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
        let Ok(Message::StreamRequest { session, .. }) = read_message(&mut conn) else {
            return;
        };
        let _ = write_message(&mut conn, &Message::Grant { session, class });
        // Serve every plan we are sent (the base share, then the
        // recovery share); the requester closes the connection once the
        // file completes.
        while let Ok(Message::StartSession { plan, .. }) = read_message(&mut conn) {
            for index in plan.expanded() {
                let msg = Message::SegmentData {
                    session,
                    index,
                    payload: file.segment(index).into_payload(),
                };
                if write_message(&mut conn, &msg).is_err() {
                    return;
                }
            }
        }
    });
    port
}

/// Returns the position of each event code of `sequence` in `codes`,
/// requiring them to appear in order; panics (with the full timeline)
/// when one is missing.
fn assert_ordered(codes: &[u8], sequence: &[SessionEvent]) {
    let mut from = 0;
    for ev in sequence {
        match codes[from..].iter().position(|&c| c == ev.code()) {
            Some(i) => from += i + 1,
            None => panic!("event {ev} missing (in order) from timeline {codes:?}"),
        }
    }
}

/// The tentpole pin: one supplier freezes mid-stream, one keeps its lane
/// open. The watchdog flags the stall and the escalated recovery replans
/// the frozen share onto the survivor — the session completes
/// byte-identical with the caller doing nothing but `wait()`, the
/// recovery counter increments, and the flight recorder witnesses
/// flag → recovery → replan → completion.
#[test]
fn stalled_session_recovers_over_the_surviving_supplier() {
    // Two class-2 suppliers: each covers half the rate, so the §3 plan
    // needs both — the frozen one's share is real, and the survivor can
    // absorb it (an explicit replan paces at the survivor's own rate).
    let class2 = PeerClass::new(2).unwrap();
    let info = MediaInfo::new("recover-test", 16, SegmentDuration::from_millis(20), 64);
    let file = MediaFile::synthesize(info.clone());
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    // Aggressive watchdog: stride for a class-2 lane is 2·δt = 40 ms, so
    // the flag lands ≈ 40 + 150 ms after the survivor's last segment.
    let reactor = NodeReactor::with_options(
        2,
        WatchdogConfig {
            interval_ms: 25,
            grace_ms: 150,
        },
    )
    .unwrap();

    let frozen_port = frozen_supplier(class2);
    let rescuer_port = rescuer_supplier(class2, file.clone());
    let cfg = NodeConfig::new(PeerId::new(3), PeerClass::HIGHEST, info.clone(), dir.addr());
    let node = PeerNode::spawn_on(cfg, clock, &reactor).unwrap();
    let pending = node
        .begin_stream_from(vec![
            CandidateRecord {
                id: PeerId::new(98),
                class: class2,
                port: frozen_port,
            },
            CandidateRecord {
                id: PeerId::new(99),
                class: class2,
                port: rescuer_port,
            },
        ])
        .unwrap();

    // Hold a snapshot from the probing phase: its live handles keep the
    // session's scope (and flight-recorder ring) reachable after the
    // session finishes and drops its probe.
    let early = reactor.monitor().snapshot();

    // No caller intervention: wait() alone must deliver the full file.
    let outcome = pending.wait().expect("recovery must complete the session");
    assert_eq!(outcome.supplier_count, 2);
    assert_eq!(
        node.media_file().expect("completed stream is stored"),
        file,
        "recovered stream must be byte-identical"
    );

    // Counters: at least one stall flagged, at least one successful
    // recovery, and no give-up.
    let snap = reactor.monitor().snapshot();
    let counter = |name: &str| snap.find(&[], name).unwrap().value().as_i64();
    assert!(counter("watchdog_stalls_total") >= 1, "stall was flagged");
    assert!(counter("watchdog_recoveries_total") >= 1, "recovery ran");
    assert_eq!(counter("watchdog_giveups_total"), 0);

    // The flight recorder witnesses the whole arc, in causal order.
    let session_node = early
        .nodes()
        .iter()
        .find(|n| n.kind() == Some("session"))
        .expect("the early snapshot holds the session scope");
    let events = session_node
        .metric("events")
        .and_then(|m| m.handle().as_recorder())
        .expect("sessions register a flight recorder")
        .events();
    let codes: Vec<u8> = events.iter().map(|e| e.code).collect();
    assert_ordered(
        &codes,
        &[
            SessionEvent::AdmissionRequest { lane: 0 },
            SessionEvent::AdmissionGrant { lane: 0 },
            SessionEvent::PlanSent {
                lane: 0,
                segments: 0,
            },
            SessionEvent::SegmentArrived { lane: 0, index: 0 },
            SessionEvent::StallFlagged { lag_ms: 0 },
            SessionEvent::RecoveryStarted {
                lane: 0,
                attempt: 0,
            },
            SessionEvent::Replanned {
                lane: 0,
                segments: 0,
            },
            SessionEvent::Recovered { attempt: 0 },
            SessionEvent::SegmentArrived { lane: 0, index: 0 },
            SessionEvent::Completed { received: 0 },
        ],
    );

    node.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

/// Total loss: the only supplier freezes, so recovery has no survivor to
/// replan onto. The session must fail as `SuppliersLost` after the first
/// fruitless attempt — within the watchdog's window, not the 30 s read
/// timeout — while a concurrent healthy session is never flagged. The
/// give-up is structured: counter plus `GaveUp` flight-recorder event.
#[test]
fn total_supplier_loss_gives_up_as_suppliers_lost() {
    let info = MediaInfo::new("stall-test", 16, SegmentDuration::from_millis(20), 64);
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::with_options(
        2,
        WatchdogConfig {
            interval_ms: 25,
            grace_ms: 150,
        },
    )
    .unwrap();

    // The healthy half: a real seed, a real paced session.
    let seed_cfg = NodeConfig::new(PeerId::new(1), PeerClass::HIGHEST, info.clone(), dir.addr());
    let seed = PeerNode::spawn_seed_on(seed_cfg, clock.clone(), &reactor).unwrap();
    let healthy_cfg = NodeConfig::new(PeerId::new(2), PeerClass::HIGHEST, info.clone(), dir.addr());
    let healthy = PeerNode::spawn_on(healthy_cfg, clock.clone(), &reactor).unwrap();
    let healthy_pending = healthy.begin_stream(4).unwrap();

    // The stalled half: admission succeeds, then nothing ever arrives.
    let frozen_port = frozen_supplier(PeerClass::HIGHEST);
    let stalled_cfg = NodeConfig::new(PeerId::new(3), PeerClass::HIGHEST, info.clone(), dir.addr());
    let stalled = PeerNode::spawn_on(stalled_cfg, clock.clone(), &reactor).unwrap();
    let stalled_pending = stalled
        .begin_stream_from(vec![CandidateRecord {
            id: PeerId::new(99),
            class: PeerClass::HIGHEST,
            port: frozen_port,
        }])
        .unwrap();
    let early = reactor.monitor().snapshot();

    // The watchdog must resolve the stall on its own: flag ≈ stride
    // (20 ms) + grace (150 ms) + one interval after launch, then the
    // escalated recovery fails the only lane and gives up — wait()
    // returns SuppliersLost without the reactor's 30 s read timeout.
    match stalled_pending.wait() {
        Err(NodeError::SuppliersLost { missing }) => assert_eq!(missing, 16),
        other => panic!("expected SuppliersLost, got {other:?}"),
    }

    // The healthy session streams through all of it untouched.
    healthy_pending.wait().unwrap();
    let snap = reactor.monitor().snapshot();
    let counter = |name: &str| snap.find(&[], name).unwrap().value().as_i64();
    assert_eq!(
        counter("watchdog_stalls_total"),
        1,
        "only the frozen session may be flagged"
    );
    assert_eq!(
        counter("watchdog_giveups_total"),
        1,
        "one structured give-up"
    );
    assert_eq!(
        counter("watchdog_recoveries_total"),
        0,
        "nothing to recover onto"
    );

    // The timeline ends in GaveUp, with no Recovered and no Completed.
    let session_node = early
        .nodes()
        .iter()
        .find(|n| {
            n.kind() == Some("session")
                && n.metric("received_segments")
                    .map(|m| m.value().as_i64() == 0)
                    .unwrap_or(false)
        })
        .expect("the early snapshot holds the frozen session's scope");
    let events = session_node
        .metric("events")
        .and_then(|m| m.handle().as_recorder())
        .expect("sessions register a flight recorder")
        .events();
    let codes: Vec<u8> = events.iter().map(|e| e.code).collect();
    assert_ordered(
        &codes,
        &[
            SessionEvent::StallFlagged { lag_ms: 0 },
            SessionEvent::RecoveryStarted {
                lane: 0,
                attempt: 0,
            },
            SessionEvent::GaveUp { missing: 0 },
        ],
    );
    let gone = |ev: SessionEvent| !codes.contains(&ev.code());
    assert!(gone(SessionEvent::Recovered { attempt: 0 }));
    assert!(gone(SessionEvent::Completed { received: 0 }));

    stalled.shutdown();
    healthy.shutdown();
    seed.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

/// A healthy 64-session swarm: the acceptance pin that the tree reports
/// per-reactor queue depth, per-session state and owed-queue lag for a
/// live ≥64-session swarm — and that the watchdog flags none of it.
#[test]
fn healthy_sixty_four_session_swarm_flags_nothing() {
    const SESSIONS: usize = 64;
    const SEEDS: u64 = 80;
    const SEGMENTS: u64 = 64;
    const DT_MS: u64 = 30;

    let info = MediaInfo::new(
        "healthy-swarm",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        64,
    );
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    // A watchful watchdog: 500 ms grace against a 30 ms pacing stride.
    // Healthy paced sessions deliver a segment every δt, so nothing may
    // come within an order of magnitude of the deadline.
    let reactor = NodeReactor::with_options(
        2,
        WatchdogConfig {
            interval_ms: 50,
            grace_ms: 500,
        },
    )
    .unwrap();

    let seeds: Vec<PeerNode> = (0..SEEDS)
        .map(|i| {
            let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
            PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor).unwrap()
        })
        .collect();

    // Launch 64 sessions, then TOP UP: admission is reactor-hosted and
    // pipelined, so the simultaneous burst makes some rounds find all 16
    // sampled seeds transiently reserved — those reject (surfacing only
    // at wait(), which would block through a whole healthy stream).
    // Rather than wait, read the tree: a rejected round drops its
    // session scope, so `live < 64` tells us exactly how many
    // replacements to launch. Top-ups are small against mostly-free
    // seeds, so this converges in a round or two — well inside the
    // ≈1.9 s lifetime of the first sessions, keeping all 64 live at
    // once.
    let mut requesters = Vec::new();
    let mut pendings = Vec::new();
    let mut launched = 0u64;
    let mut attempts = 0;
    loop {
        let live = reactor
            .monitor()
            .snapshot()
            .nodes()
            .iter()
            .filter(|n| n.kind() == Some("session"))
            .count();
        if !requesters.is_empty() && live >= SESSIONS {
            break;
        }
        attempts += 1;
        assert!(attempts <= 10, "admission kept colliding: {live} live");
        for _ in live..SESSIONS {
            let cfg = NodeConfig::new(
                PeerId::new(SEEDS + launched),
                PeerClass::HIGHEST,
                info.clone(),
                dir.addr(),
            );
            launched += 1;
            let node = PeerNode::spawn_on(cfg, clock.clone(), &reactor).unwrap();
            let pending = node
                .begin_stream(16)
                .unwrap_or_else(|e| panic!("launch {launched} failed: {e}"));
            requesters.push(node);
            pendings.push(pending);
        }
        // Verdicts land within a few ms (every candidate is a live
        // seed); 100 ms lets the new rounds settle into streaming.
        std::thread::sleep(Duration::from_millis(100));
    }

    // All 64 sessions are paced over ≈ SEGMENTS·δt ≈ 1.9 s, so right
    // after the last hand-off every one of them is still in flight: the
    // snapshot must show the whole swarm. (Scoped: a snapshot's live
    // handles keep the session scopes alive, and the leak check below
    // must observe the real tree, not this snapshot's refs.)
    {
        let snap = reactor.monitor().snapshot();
        let sessions: Vec<_> = snap
            .nodes()
            .iter()
            .filter(|n| n.kind() == Some("session"))
            .collect();
        assert!(
            sessions.len() >= SESSIONS,
            "expected ≥{SESSIONS} live session scopes, saw {}",
            sessions.len()
        );
        for node in &sessions {
            let state = node
                .metric("state")
                .expect("every session exposes its phase")
                .value()
                .state_name()
                .unwrap();
            // "probing" is possible for an instant: the hand-off command may
            // still be in the reactor's queue when the snapshot is taken.
            assert!(
                state == "probing" || state == "streaming" || state == "complete",
                "healthy session in state {state:?}"
            );
            // Owed-queue lag: owed is live and bounded by the file size.
            let owed = node.metric("owed_segments").unwrap().value().as_i64();
            assert!((0..=SEGMENTS as i64).contains(&owed));
            assert!(node.metric("last_progress_ms").is_some());
            assert!(node.metric("stride_ms").is_some());
        }
        // Per-reactor queue depths are published for both shards.
        for shard in 0..2 {
            let id = shard.to_string();
            let labels = [("reactor", id.as_str())];
            for gauge in ["queued_write_bytes", "timer_entries", "connections"] {
                assert!(
                    snap.find(&labels, gauge).is_some(),
                    "reactor {shard} missing {gauge}"
                );
            }
        }
    }

    // Drain everything we launched: the rejected extras return
    // `Rejected`, every session that actually streamed must complete —
    // and at least 64 did, because their scopes were live above.
    let mut completed = 0;
    for (i, pending) in pendings.into_iter().enumerate() {
        match pending.wait() {
            Ok(_) => completed += 1,
            Err(NodeError::Rejected { .. }) => {}
            Err(e) => panic!("session {i} failed: {e}"),
        }
    }
    assert!(completed >= SESSIONS, "only {completed} sessions completed");

    // Healthy run: the watchdog saw 64 paced sessions and flagged none.
    let snap = reactor.monitor().snapshot();
    let stalls = snap
        .find(&[], "watchdog_stalls_total")
        .expect("watchdog counter")
        .value()
        .as_i64();
    assert_eq!(stalls, 0, "healthy sessions must never be flagged");
    // Completed sessions dropped their scopes: the tree does not leak.
    let leftover = snap
        .nodes()
        .iter()
        .filter(|n| n.kind() == Some("session"))
        .count();
    assert_eq!(leftover, 0, "{leftover} session scopes leaked");

    for node in requesters {
        node.shutdown();
    }
    for seed in seeds {
        seed.shutdown();
    }
    reactor.shutdown();
    dir.shutdown();
}
