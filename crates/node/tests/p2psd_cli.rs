//! Black-box tests of the `p2psd` binary: exit codes and `--port` must be
//! script-friendly (the things a shell wrapper or CI harness depends on).

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn p2psd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p2psd"))
}

/// Kills the child on drop so a failing assertion cannot leak a
/// `directory`/`seed` process that runs forever.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn no_subcommand_exits_2() {
    let out = p2psd().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(!out.stderr.is_empty(), "usage goes to stderr");
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = p2psd().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_exits_nonzero() {
    let out = p2psd().args(["stream", "--bogus", "1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --bogus"), "stderr: {stderr}");
}

#[test]
fn connection_refused_exits_nonzero() {
    // Reserve a port and close it again: nothing listens there, so the
    // stream subcommand must fail its directory query and exit 1.
    let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);
    let out = p2psd()
        .args(["stream", "--dir", &addr.to_string(), "--retries", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn rejection_exits_nonzero() {
    // A directory with no registered suppliers: admission can never
    // succeed, so the requester exhausts its retries and must exit 1.
    let dir = p2ps_node::DirectoryServer::start().unwrap();
    let out = p2psd()
        .args([
            "stream",
            "--dir",
            &dir.addr().to_string(),
            "--retries",
            "1",
            "--segments",
            "4",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    dir.shutdown();
}

#[test]
fn directory_binds_the_requested_port() {
    // Grab a free port, release it, hand it to p2psd. Another process
    // can steal the port in the gap, so retry with a fresh probe (the
    // child exits 1 on a bind conflict — that's the sibling test below).
    let (mut child, port) = (0..16)
        .find_map(|_| {
            let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let port = probe.local_addr().unwrap().port();
            drop(probe);
            let child = p2psd()
                .args(["directory", "--port", &port.to_string()])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .unwrap();
            let mut child = Reaper(child);
            std::thread::sleep(Duration::from_millis(100));
            match child.0.try_wait().unwrap() {
                None => Some((child, port)), // still serving: bind succeeded
                Some(_) => None,             // lost the port race; retry
            }
        })
        .expect("a freshly released loopback port should be bindable");

    // The directory announces its address on stdout once bound.
    let mut stdout = child.0.stdout.take().unwrap();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while stdout.read(&mut byte).unwrap() == 1 && byte[0] != b'\n' {
        line.push(byte[0]);
    }
    let line = String::from_utf8(line).unwrap();
    assert!(
        line.contains(&format!("127.0.0.1:{port}")),
        "directory must bind the requested port, announced: {line}"
    );

    // And it actually serves the protocol on that port.
    let got = p2ps_node::query_candidates(
        std::net::SocketAddr::from(([127, 0, 0, 1], port)),
        "nothing-registered",
        4,
    )
    .unwrap();
    assert!(got.is_empty());
}

#[test]
fn directory_bind_failure_exits_nonzero() {
    // Occupy a port, then ask p2psd for it: it must report the bind
    // error and exit 1 instead of silently serving elsewhere.
    let taken = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = taken.local_addr().unwrap().port();
    let mut child = p2psd()
        .args(["directory", "--port", &port.to_string()])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    // Bind happens before the serve loop, so the failure is immediate;
    // poll briefly rather than blocking on a child that would never exit
    // if the bug regressed.
    let mut status = None;
    for _ in 0..100 {
        if let Some(s) = child.try_wait().unwrap() {
            status = Some(s);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let Some(status) = status else {
        let _ = child.kill();
        let _ = child.wait();
        panic!("p2psd directory kept running despite the port being taken");
    };
    assert_eq!(status.code(), Some(1));
}

#[test]
fn help_documents_every_flag_and_exit_code() {
    for invocation in [
        vec!["--help"],
        vec!["-h"],
        vec!["help"],
        vec!["stream", "--help"],
    ] {
        let out = p2psd().args(&invocation).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{invocation:?} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        // The authoritative flag list: notably --threads (the multi-core
        // knob) and the observability flags, plus the exit-code table.
        for needle in [
            "--threads",
            "--status-port",
            "--status-addr",
            "--trace",
            "--dir",
            "--serve-secs",
            "/timeseries",
            "exit codes",
        ] {
            assert!(
                stdout.contains(needle),
                "{invocation:?}: help output lacks {needle:?}"
            );
        }
    }
}

/// Reads lines from a child's stdout until `predicate` matches one,
/// returning the match.
fn wait_for_line(stdout: &mut impl Read, predicate: impl Fn(&str) -> bool) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while stdout.read(&mut byte).unwrap() == 1 {
        if byte[0] != b'\n' {
            buf.push(byte[0]);
            continue;
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        if predicate(&line) {
            return line;
        }
        buf.clear();
    }
    panic!("child stdout closed before the expected line appeared");
}

#[test]
fn status_subcommand_renders_a_live_directory() {
    // A directory with an ephemeral status endpoint…
    let child = p2psd()
        .args(["directory", "--status-port", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut child = Reaper(child);
    let mut stdout = child.0.stdout.take().unwrap();
    let status_line = wait_for_line(&mut stdout, |l| l.contains("status endpoint on"));
    let status_addr = status_line
        .rsplit("http://")
        .next()
        .unwrap()
        .trim_end_matches("/metrics")
        .to_owned();

    // …scraped by a second p2psd: the human table must carry the
    // per-reactor row and the directory's stripe occupancy.
    let out = p2psd()
        .args(["status", "--status-addr", &status_addr])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let rendered = String::from_utf8_lossy(&out.stdout);
    for needle in ["reactors:", "queued-bytes", "index stripes: 16", "sessions"] {
        assert!(
            rendered.contains(needle),
            "status output lacks {needle:?}: {rendered}"
        );
    }
}

#[test]
fn status_endpoint_serves_timeseries_and_answers_unknown_traces() {
    // A directory with a status endpoint: its bridge samples the tree
    // once a second, but the /timeseries route must answer (with at
    // least the CSV header) immediately.
    let child = p2psd()
        .args(["directory", "--status-port", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut child = Reaper(child);
    let mut stdout = child.0.stdout.take().unwrap();
    let status_line = wait_for_line(&mut stdout, |l| l.contains("status endpoint on"));
    let status_addr = status_line
        .rsplit("http://")
        .next()
        .unwrap()
        .trim_end_matches("/metrics")
        .to_owned();

    let csv = p2ps_monitor::fetch_path(&status_addr, "/timeseries").unwrap();
    assert!(
        csv.starts_with("series,time_ms,value"),
        "timeseries route must serve CSV, got: {csv}"
    );

    // A directory hosts no sessions, so any session trace is a 404 —
    // and `status --trace` surfaces that as a runtime error, exit 1.
    let out = p2psd()
        .args(["status", "--status-addr", &status_addr, "--trace", "42"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn status_against_nothing_exits_nonzero() {
    let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);
    let out = p2psd()
        .args(["status", "--status-addr", &addr.to_string()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}
