//! The live requester streams through the `SelectionPolicy` trait.
//!
//! The default `Otsp2p` policy must behave exactly like the pre-policy
//! inline code path (Theorem-1 delay, complete byte-identical file), and
//! every BitTorrent-style baseline must stream a complete file over the
//! same wire format — explicit one-shot plans included.

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::PeerClass;
use p2ps_media::MediaInfo;
use p2ps_node::Swarm;
use p2ps_policy::{RandomBaseline, RarestFirst, SequentialWindow, SharedPolicy};

fn tiny_info(name: &str) -> MediaInfo {
    MediaInfo::new(name, 16, SegmentDuration::from_millis(5), 256)
}

fn class(k: u8) -> PeerClass {
    PeerClass::new(k).unwrap()
}

/// A swarm whose admission always grants *two* class-2 seeds, so every
/// policy has a real multi-supplier assignment to make.
fn two_seed_swarm(name: &str) -> Swarm {
    let mut swarm = Swarm::start(tiny_info(name), 0).unwrap();
    swarm.add_seed(class(2)).unwrap();
    swarm.add_seed(class(2)).unwrap();
    swarm
}

#[test]
fn default_policy_matches_theorem1_exactly() {
    let mut swarm = two_seed_swarm("policy-default");
    let outcome = swarm.stream_one(class(3), 8).unwrap();
    assert_eq!(outcome.supplier_count, 2);
    // Theorem 1 through the trait: n·δt with n = 2, δt = 5 ms.
    assert_eq!(outcome.theoretical_delay_ms, 10);
    // The streamed node re-registered as a supplier, which requires the
    // complete, segment-for-segment reassembled file.
    assert_eq!(swarm.supplier_count(), 3);
    swarm.shutdown();
}

#[test]
fn every_baseline_policy_streams_a_complete_file() {
    for (name, policy) in [
        ("seq", SharedPolicy::new(SequentialWindow::default())),
        ("rarest", SharedPolicy::new(RarestFirst)),
        ("random", SharedPolicy::new(RandomBaseline)),
    ] {
        let mut swarm = two_seed_swarm(&format!("policy-{name}"));
        swarm.set_policy(policy.clone());
        let outcome = swarm
            .stream_one(class(3), 8)
            .unwrap_or_else(|e| panic!("policy {}: {e}", policy.name()));
        assert!(
            outcome.supplier_count >= 1,
            "policy {}: no suppliers",
            policy.name()
        );
        // Optimality is exclusive to OTSp2p; the baselines may only be
        // worse than the n-supplier floor, never better.
        assert!(
            outcome.theoretical_delay_ms >= outcome.supplier_count as u64 * 5,
            "policy {}: delay {} under the floor",
            policy.name(),
            outcome.theoretical_delay_ms
        );
        assert_eq!(
            swarm.supplier_count(),
            3,
            "policy {}: incomplete file, requester did not become a supplier",
            policy.name()
        );
        swarm.shutdown();
    }
}

#[test]
fn policies_can_change_between_sessions_of_one_swarm() {
    let mut swarm = two_seed_swarm("policy-mixed");
    let a = swarm.stream_one(class(2), 8).unwrap();
    swarm.set_policy(SharedPolicy::new(RandomBaseline));
    let b = swarm.stream_one(class(2), 8).unwrap();
    assert!(a.supplier_count >= 1 && b.supplier_count >= 1);
    assert_eq!(swarm.supplier_count(), 4);
    swarm.shutdown();
}
