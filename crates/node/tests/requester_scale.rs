//! ≥256 SIMULTANEOUS requester sessions on a 2-thread `ReactorPool`.
//!
//! The acceptance pin of the reactor-hosted requester: one process runs
//! 256 receiving sessions concurrently — none of them owning a thread —
//! sharded across two reactor threads that also carry every supplier's
//! serving side (full duplex). Each session runs the real path end to
//! end: directory query, §4.2 admission handshake, policy plan, reactor
//! hand-off, paced reception, byte-for-byte reassembly, re-registration
//! as a supplier.
//!
//! Simultaneity is proved by pacing: a session cannot finish before its
//! own §3 schedule (≈ `SEGMENTS · DT_MS`), so once the last
//! `begin_stream` returns within that floor, all 256 sessions are in
//! flight at the same instant. Admission itself is reactor-hosted and
//! pipelined, so a rejection (every sampled candidate busy) surfaces at
//! `wait()`; rejected sessions retry in whole rounds that overlap too.

use std::time::{Duration, Instant};

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeError, NodeReactor, PeerNode};

const SESSIONS: usize = 256;
/// More seeds than sessions so late admissions still find idle suppliers
/// (a class-1 session occupies exactly one class-1 seed).
const SEEDS: u64 = 320;
const SEGMENTS: u64 = 128;
const DT_MS: u64 = 60;
const PAYLOAD: u32 = 64;

#[test]
fn two_hundred_fifty_six_simultaneous_sessions_on_a_two_thread_pool() {
    let info = MediaInfo::new(
        "requester-scale",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        PAYLOAD,
    );
    let reference = MediaFile::synthesize(info.clone());
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();

    let reactor = NodeReactor::with_threads(2).unwrap();
    assert_eq!(reactor.thread_count(), 2);

    let seeds: Vec<PeerNode> = (0..SEEDS)
        .map(|i| {
            let cfg = NodeConfig::new(PeerId::new(i), PeerClass::HIGHEST, info.clone(), dir.addr());
            PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor).unwrap()
        })
        .collect();

    // Kick off all sessions. Admission is fully reactor-hosted: this
    // loop only connects and enqueues, so all 256 rounds (and then all
    // 256 streams) are in flight together on the pool.
    let begin_start = Instant::now();
    let mut requesters = Vec::with_capacity(SESSIONS);
    let mut inflight: Vec<(usize, p2ps_node::PendingStream)> = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS as u64 {
        let cfg = NodeConfig::new(
            PeerId::new(SEEDS + i),
            PeerClass::HIGHEST,
            info.clone(),
            dir.addr(),
        );
        let node = PeerNode::spawn_on(cfg, clock.clone(), &reactor).unwrap();
        let pending = node
            .begin_stream(16)
            .unwrap_or_else(|e| panic!("session {i}: launch failed: {e}"));
        requesters.push(node);
        inflight.push((i as usize, pending));
    }
    let begin_elapsed = begin_start.elapsed();

    // Every session paces at least (SEGMENTS-1)·δt from ITS start, so if
    // all 256 hand-offs completed inside that floor, there is an instant
    // at which all 256 sessions are simultaneously in flight.
    let pacing_floor = Duration::from_millis((SEGMENTS - 1) * DT_MS);
    assert!(
        begin_elapsed < pacing_floor,
        "admissions took {begin_elapsed:?}; too slow to overlap all \
         {SESSIONS} sessions inside the {pacing_floor:?} pacing floor"
    );

    // Rejections (every sampled candidate busy) surface at wait(); each
    // retry ROUND relaunches all its sessions at once so even the
    // stragglers' paced streams overlap each other.
    let mut outcomes: Vec<Option<p2ps_node::StreamOutcome>> = (0..SESSIONS).map(|_| None).collect();
    let mut rounds = 0;
    while !inflight.is_empty() {
        let mut rejected = Vec::new();
        for (i, pending) in inflight {
            match pending.wait() {
                Ok(o) => outcomes[i] = Some(o),
                Err(NodeError::Rejected { .. }) => rejected.push(i),
                Err(e) => panic!("session {i} failed: {e}"),
            }
        }
        if rejected.is_empty() {
            break;
        }
        rounds += 1;
        assert!(rounds <= 20, "sessions kept being rejected: {rejected:?}");
        std::thread::sleep(Duration::from_millis(10));
        inflight = rejected
            .into_iter()
            .map(|i| (i, requesters[i].begin_stream(16).unwrap()))
            .collect();
    }
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let outcome = outcome.unwrap_or_else(|| panic!("session {i} never completed"));
        assert_eq!(outcome.supplier_count, 1, "session {i}: one class-1 seed");
        assert_eq!(outcome.theoretical_delay_ms, DT_MS, "session {i}");
    }
    let wall = begin_start.elapsed();
    // 256 paced sessions of ≈7.6 s each, serially ≈32 min; concurrently
    // they must land within a small multiple of one session.
    assert!(
        wall < 4 * pacing_floor,
        "sessions did not overlap: {wall:?} total"
    );

    // Byte-for-byte: every requester reassembled the exact file and can
    // now supply it.
    for (i, node) in requesters.iter().enumerate() {
        let file = node
            .media_file()
            .unwrap_or_else(|| panic!("session {i} stored no file"));
        for s in 0..SEGMENTS {
            assert_eq!(
                file.segment(s).into_payload(),
                reference.segment(s).into_payload(),
                "session {i}: segment {s} bytes differ"
            );
        }
        assert!(node.is_supplier());
    }

    for node in requesters {
        node.shutdown();
    }
    for seed in seeds {
        seed.shutdown();
    }
    reactor.shutdown();
    dir.shutdown();
}
