//! The reactor-hosted admission pipeline against slow and frozen
//! candidates: the acceptance pin that a 64-candidate round costs
//! ~max(RTT), not Σ(RTT), and that a candidate which never replies
//! delays admission by no more than its own reply timeout — with the
//! session completing byte-for-byte either way.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeReactor, PeerNode};
use p2ps_proto::{read_message, write_message, CandidateRecord, Message};

const SEGMENTS: u64 = 16;
const DT_MS: u64 = 20;

fn test_info(name: &str) -> MediaInfo {
    MediaInfo::new(name, SEGMENTS, SegmentDuration::from_millis(DT_MS), 64)
}

/// A candidate that takes `delay` to refuse: accepts one connection,
/// reads the `StreamRequest`, sleeps, sends a plain `Deny`, and hangs
/// up. Returns the listener's port.
fn slow_deny_candidate(delay: Duration) -> u16 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        let Ok((mut conn, _)) = listener.accept() else {
            return;
        };
        let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
        let Ok(Message::StreamRequest { session, .. }) = read_message(&mut conn) else {
            return;
        };
        std::thread::sleep(delay);
        let _ = write_message(
            &mut conn,
            &Message::Deny {
                session,
                busy: false,
                favored: false,
            },
        );
    });
    port
}

/// A candidate that accepts the connection, reads the `StreamRequest`,
/// and never says anything at all. Returns the listener's port.
fn frozen_candidate() -> u16 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        let Ok((mut conn, _)) = listener.accept() else {
            return;
        };
        let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
        let Ok(Message::StreamRequest { .. }) = read_message(&mut conn) else {
            return;
        };
        // Silence. Block until the requester times the lane out and
        // hangs up (bounded by the read timeout above).
        let _ = read_message(&mut conn);
    });
    port
}

/// Full byte verification of a completed session.
fn assert_streamed_exactly(node: &PeerNode, info: &MediaInfo) {
    let reference = MediaFile::synthesize(info.clone());
    let file = node
        .media_file()
        .expect("completed session stores the file");
    for s in 0..SEGMENTS {
        assert_eq!(
            file.segment(s).into_payload(),
            reference.segment(s).into_payload(),
            "segment {s} bytes differ"
        );
    }
    assert!(node.is_supplier(), "a completed requester re-registers");
}

/// 64 candidates, 63 of which take 500 ms to refuse, one real seed that
/// grants. Probed sequentially the denials alone cost 63 · 500 ms =
/// 31.5 s; pipelined they overlap, so the whole round — and the paced
/// stream after it — lands in ~1 slow-RTT. The seed is the *last* lane,
/// so the greedy fold genuinely waits on every slow lane before it may
/// commit the grant: the bound proves concurrency, not luck.
#[test]
fn sixty_four_candidate_round_costs_one_slow_rtt_not_the_sum() {
    const SLOW: usize = 63;
    let slow_rtt = Duration::from_millis(500);

    let info = test_info("admission-pipeline");
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::with_threads(2).unwrap();

    let seed_cfg = NodeConfig::new(PeerId::new(1), PeerClass::HIGHEST, info.clone(), dir.addr());
    let seed = PeerNode::spawn_seed_on(seed_cfg, clock.clone(), &reactor).unwrap();

    let mut candidates: Vec<CandidateRecord> = (0..SLOW)
        .map(|i| CandidateRecord {
            id: PeerId::new(100 + i as u64),
            class: PeerClass::HIGHEST,
            port: slow_deny_candidate(slow_rtt),
        })
        .collect();
    candidates.push(CandidateRecord {
        id: seed.id(),
        class: seed.class(),
        port: seed.port(),
    });

    let req_cfg = NodeConfig::new(PeerId::new(2), PeerClass::HIGHEST, info.clone(), dir.addr());
    let requester = PeerNode::spawn_on(req_cfg, clock.clone(), &reactor).unwrap();

    let start = Instant::now();
    let pending = requester.begin_stream_from(candidates).unwrap();
    let outcome = pending.wait().unwrap();
    let wall = start.elapsed();

    // Lower bound: the fold cannot commit the seed's grant before every
    // slow lane ahead of it settles, and none refuses before 500 ms.
    assert!(
        wall >= Duration::from_millis(400),
        "round decided in {wall:?} — the slow lanes were never consulted"
    );
    // Upper bound: ~1 slow-RTT + the paced stream (≈0.3 s), with CI
    // slack. Sequential probing could not beat 31.5 s.
    assert!(
        wall < Duration::from_secs(5),
        "64-candidate round took {wall:?}; admission is not pipelined"
    );

    assert_eq!(outcome.supplier_count, 1, "the one real seed supplies");
    assert_streamed_exactly(&requester, &info);

    requester.shutdown();
    seed.shutdown();
    reactor.shutdown();
    dir.shutdown();
}

/// A frozen candidate (accepts, reads the request, never replies) ahead
/// of a granting seed: the round must still admit — after the frozen
/// lane's own ~2 s reply timeout, and no later — and the stream must
/// complete byte-for-byte off the healthy lane.
#[test]
fn frozen_candidate_delays_admission_only_by_its_own_timeout() {
    let info = test_info("admission-frozen");
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();
    let reactor = NodeReactor::with_threads(2).unwrap();

    let seed_cfg = NodeConfig::new(PeerId::new(1), PeerClass::HIGHEST, info.clone(), dir.addr());
    let seed = PeerNode::spawn_seed_on(seed_cfg, clock.clone(), &reactor).unwrap();

    // Lane 0 frozen, lane 1 the real seed: same class, so the fold
    // blocks on the frozen lane until its per-lane timer refuses it.
    let candidates = vec![
        CandidateRecord {
            id: PeerId::new(99),
            class: PeerClass::HIGHEST,
            port: frozen_candidate(),
        },
        CandidateRecord {
            id: seed.id(),
            class: seed.class(),
            port: seed.port(),
        },
    ];

    let req_cfg = NodeConfig::new(PeerId::new(2), PeerClass::HIGHEST, info.clone(), dir.addr());
    let requester = PeerNode::spawn_on(req_cfg, clock.clone(), &reactor).unwrap();

    let start = Instant::now();
    let pending = requester.begin_stream_from(candidates).unwrap();
    let outcome = pending.wait().unwrap();
    let wall = start.elapsed();

    // The frozen lane is refused by its 2 s reply timer — not by the
    // 30 s streaming read timeout, and not by anything the healthy lane
    // does. Admission therefore lands at ≈2 s + the paced stream.
    assert!(
        wall >= Duration::from_millis(1_500),
        "round decided in {wall:?} — the frozen lane never ran its timer"
    );
    assert!(
        wall < Duration::from_secs(10),
        "frozen lane delayed the round {wall:?}, beyond its own timeout"
    );

    assert_eq!(outcome.supplier_count, 1, "the one real seed supplies");
    assert_streamed_exactly(&requester, &info);

    requester.shutdown();
    seed.shutdown();
    reactor.shutdown();
    dir.shutdown();
}
