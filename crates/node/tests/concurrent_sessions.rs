//! ≥64 simultaneous paced streaming sessions on ONE reactor thread.
//!
//! 64 supplier nodes share a single [`NodeReactor`]; 64 blocking
//! requesters (plain `read_message`/`write_message` over `TcpStream`,
//! the unchanged wire format) each run the §4.2 handshake and receive a
//! full §3-paced stream concurrently. The test verifies:
//!
//! * **bytes** — every received segment is bit-identical to the
//!   synthesized media file;
//! * **pacing** — segment `p` never arrives before its `(p+1)·δt`
//!   deadline (minus timer-granularity slack), so sessions take at least
//!   the schedule's length;
//! * **concurrency** — the 64 sessions overlap: total wall time is far
//!   below the serial sum of their paced durations.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::{PeerClass, PeerId};
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_node::{Clock, DirectoryServer, NodeConfig, NodeReactor, PeerNode};
use p2ps_proto::{read_message, write_message, Message, SessionPlan};

const SESSIONS: usize = 64;
const SEGMENTS: u64 = 16;
const DT_MS: u64 = 10;
const PAYLOAD: usize = 512;

#[test]
fn sixty_four_simultaneous_sessions_on_one_reactor_thread() {
    let info = MediaInfo::new(
        "concurrent",
        SEGMENTS,
        SegmentDuration::from_millis(DT_MS),
        PAYLOAD as u32,
    );
    let reference = MediaFile::synthesize(info.clone());
    let dir = DirectoryServer::start().unwrap();
    let clock = Clock::new();

    // One serving thread for all 64 supplier nodes.
    let reactor = NodeReactor::new().unwrap();
    let nodes: Vec<PeerNode> = (0..SESSIONS as u64)
        .map(|i| {
            let cfg = NodeConfig::new(
                PeerId::new(i),
                PeerClass::HIGHEST, // grants class-1 requesters with P = 1
                info.clone(),
                dir.addr(),
            );
            PeerNode::spawn_seed_on(cfg, clock.clone(), &reactor).unwrap()
        })
        .collect();

    let ports: Vec<u16> = nodes.iter().map(PeerNode::port).collect();
    let wall_start = Instant::now();
    let handles: Vec<_> = ports
        .into_iter()
        .enumerate()
        .map(|(i, port)| {
            let info = info.clone();
            let reference = reference.clone();
            std::thread::spawn(move || run_session(i as u64, port, &info, &reference))
        })
        .collect();
    for h in handles {
        h.join().expect("requester thread panicked");
    }
    let wall = wall_start.elapsed();

    // Each session is paced to SEGMENTS · DT_MS = 160 ms; 64 of them
    // serially would need ≈ 10.2 s. Overlapping on one reactor thread
    // they must land far below half of that.
    let serial = Duration::from_millis(SESSIONS as u64 * SEGMENTS * DT_MS);
    assert!(
        wall < serial / 2,
        "64 sessions took {wall:?}; not concurrent (serial would be {serial:?})"
    );

    drop(nodes);
    reactor.shutdown();
    dir.shutdown();
}

/// One blocking requester: handshake, receive the paced stream, verify
/// bytes and §3 deadlines.
fn run_session(session: u64, port: u16, info: &MediaInfo, reference: &MediaFile) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    write_message(
        &mut stream,
        &Message::StreamRequest {
            session,
            class: PeerClass::HIGHEST,
        },
    )
    .unwrap();
    match read_message(&mut stream).unwrap() {
        Message::Grant { session: s, .. } => assert_eq!(s, session),
        other => panic!("session {session}: expected grant, got {}", other.name()),
    }

    // Single-supplier OTSp2p plan: this peer serves every segment, one
    // per δt.
    let start = Instant::now();
    write_message(
        &mut stream,
        &Message::StartSession {
            session,
            plan: SessionPlan {
                item: info.name().to_owned(),
                segments: vec![0],
                period: 1,
                total_segments: info.segment_count(),
                dt_ms: DT_MS as u32,
            },
        },
    )
    .unwrap();

    let mut next = 0u64;
    loop {
        match read_message(&mut stream).unwrap() {
            Message::SegmentData {
                session: s,
                index,
                payload,
            } => {
                assert_eq!(s, session);
                assert_eq!(index, next, "segments arrive in schedule order");
                let expected = reference.segment(index).into_payload();
                assert_eq!(
                    payload, expected,
                    "session {session}: segment {index} bytes differ"
                );
                // §3 pacing: transmission p completes at (p+1)·δt after
                // session start. Allow timer-wheel granularity plus a
                // little scheduling slack, but a segment arriving a whole
                // period early means pacing is broken.
                let deadline = Duration::from_millis((index + 1) * DT_MS);
                let early_by = deadline.saturating_sub(start.elapsed());
                assert!(
                    early_by < Duration::from_millis(DT_MS),
                    "session {session}: segment {index} arrived {early_by:?} early"
                );
                next += 1;
            }
            Message::EndSession { session: s } => {
                assert_eq!(s, session);
                break;
            }
            other => panic!("session {session}: unexpected {}", other.name()),
        }
    }
    assert_eq!(next, info.segment_count(), "full file received");
    // The whole session cannot beat its own schedule.
    let floor = Duration::from_millis(SEGMENTS * DT_MS - DT_MS);
    assert!(
        start.elapsed() >= floor,
        "session {session} finished in {:?}, under the §3 pacing floor {floor:?}",
        start.elapsed()
    );
}
