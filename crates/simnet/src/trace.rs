//! Run tracing: a rolling FNV-1a digest of everything that happened.
//!
//! Every event the simulation processes — chunk deliveries, decoded
//! messages, deaths, replans, the final outcome — folds its salient
//! fields into one 64-bit [`TraceHasher`]. Two runs of the same
//! [`Schedule`](crate::Schedule) must produce the *same* digest: that is
//! the harness's determinism contract, asserted by the seed sweep on
//! every seed it visits.

/// Rolling 64-bit FNV-1a digest of a simulation run.
#[derive(Debug, Clone)]
pub struct TraceHasher {
    h: u64,
    records: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl TraceHasher {
    /// An empty trace.
    pub fn new() -> Self {
        TraceHasher {
            h: FNV_OFFSET,
            records: 0,
        }
    }

    /// Folds raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one `u64` (little-endian) into the digest.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds one trace record: a kind tag plus its fields. Counts toward
    /// [`records`](Self::records).
    pub fn record(&mut self, kind: u8, fields: &[u64]) {
        self.records += 1;
        self.bytes(&[kind]);
        for &f in fields {
            self.u64(f);
        }
    }

    /// Number of records folded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The current digest value.
    pub fn digest(&self) -> u64 {
        self.h
    }
}

impl Default for TraceHasher {
    fn default() -> Self {
        TraceHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_records_give_identical_digests() {
        let mut a = TraceHasher::new();
        let mut b = TraceHasher::new();
        for h in [&mut a, &mut b] {
            h.record(1, &[2, 3]);
            h.record(4, &[5]);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.records(), 2);
    }

    #[test]
    fn order_and_fields_change_the_digest() {
        let mut a = TraceHasher::new();
        a.record(1, &[2]);
        a.record(3, &[4]);
        let mut b = TraceHasher::new();
        b.record(3, &[4]);
        b.record(1, &[2]);
        assert_ne!(a.digest(), b.digest(), "order must matter");

        let mut c = TraceHasher::new();
        c.record(1, &[2]);
        c.record(3, &[5]);
        assert_ne!(a.digest(), c.digest(), "fields must matter");
    }

    #[test]
    fn empty_trace_is_the_fnv_offset() {
        assert_eq!(TraceHasher::new().digest(), 0xcbf2_9ce4_8422_2325);
    }
}
