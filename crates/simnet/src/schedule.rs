//! Seed-derived run schedules: every parameter of a run from one `u64`.
//!
//! A [`Schedule`] is the *complete* description of one adversarial run —
//! media shape, supplier mix, per-link latency/jitter/bandwidth, chunk
//! fragmentation bound, and the death times of churned suppliers — and
//! it is a pure function of `(seed, scenario)`. The simulation draws its
//! remaining randomness (chunk sizes, jitter samples) from an RNG seeded
//! by the same pair, so one `u64` reproduces a run bit for bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The five adversity profiles the sweep crosses with its seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// No departures: varied latency, jitter and fragmentation only.
    Steady,
    /// One or more suppliers die mid-stream (possibly all of them),
    /// forcing live replans — or a structured `SuppliersLost` failure.
    Churn,
    /// Extreme fragmentation (1..=5 byte chunks) plus one mid-stream
    /// death whose final frame is cut at an arbitrary byte boundary.
    Loss,
    /// One supplier's link is drastically slower than the rest.
    SlowPeer,
    /// Suppliers may refuse admission (busy, favored or not): the §4.2
    /// round itself is the adversity — denials, reminders and a
    /// structured `Rejected` outcome instead of a stream.
    Admission,
}

impl ScenarioKind {
    /// Every scenario, in sweep order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Steady,
        ScenarioKind::Churn,
        ScenarioKind::Loss,
        ScenarioKind::SlowPeer,
        ScenarioKind::Admission,
    ];

    /// Stable lowercase name for reports and repro hints.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Steady => "steady",
            ScenarioKind::Churn => "churn",
            ScenarioKind::Loss => "loss",
            ScenarioKind::SlowPeer => "slow-peer",
            ScenarioKind::Admission => "admission",
        }
    }

    /// Mixing salt so the same seed explores different worlds per
    /// scenario.
    pub(crate) fn salt(self) -> u64 {
        match self {
            ScenarioKind::Steady => 0x9e37_79b9_7f4a_7c15,
            ScenarioKind::Churn => 0xc2b2_ae3d_27d4_eb4f,
            ScenarioKind::Loss => 0x1656_67b1_9e37_79f9,
            ScenarioKind::SlowPeer => 0x2545_f491_4f6c_dd1d,
            ScenarioKind::Admission => 0x8532_7860_e17a_9cb7,
        }
    }
}

/// What a supplier says when the `StreamRequest` reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionReply {
    /// Grant the stream (and hold the reservation).
    Grant,
    /// Deny; `busy`/`favored` mirror the wire `Deny` flags — a
    /// busy-and-favored supplier is a reminder candidate.
    Deny {
        /// The supplier is at capacity.
        busy: bool,
        /// The requester's class would have been favored.
        favored: bool,
    },
}

/// One directional link's fixed characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Base propagation delay per chunk.
    pub latency_ms: u64,
    /// Maximum extra per-chunk delay (drawn uniformly per chunk).
    pub jitter_ms: u64,
    /// Serialization bandwidth; chunks occupy the link FIFO for
    /// `len / bytes_per_ms` (ceiling) milliseconds.
    pub bytes_per_ms: u64,
}

/// Rate-matched supplier class mixes (`Σ 2^-(k-1) = 1`), the same
/// families `p2ps-sim`'s abstract scenarios draw from, so the `OTSp2p`
/// policy plans them on its §3 fast path.
const MIXES: &[&[u8]] = &[
    &[2, 2],
    &[2, 3, 3],
    &[2, 3, 4, 4],
    &[3, 3, 3, 3],
    &[2, 4, 4, 4, 4],
    &[3, 3, 4, 4, 4, 4],
    &[2, 3, 4, 5, 5],
    &[4, 4, 4, 4, 4, 4, 4, 4],
];

/// The complete, seed-derived description of one adversarial run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The seed this schedule was derived from (kept for repro hints).
    pub seed: u64,
    /// The adversity profile.
    pub scenario: ScenarioKind,
    /// Supplier classes (a rate-matched mix).
    pub mix: Vec<u8>,
    /// Media file length in segments.
    pub segment_count: u64,
    /// Payload bytes per segment.
    pub segment_bytes: u32,
    /// Segment playback time `δt` in milliseconds.
    pub dt_ms: u64,
    /// Upper bound on a delivered chunk's size in bytes — the stream is
    /// split at arbitrary byte boundaries into chunks of `1..=max_chunk`.
    pub max_chunk: usize,
    /// Per-supplier link characteristics (index = mix position).
    pub links: Vec<LinkSpec>,
    /// `(supplier, at_ms)` death times, sorted by time.
    pub deaths: Vec<(usize, u64)>,
    /// The requesting peer's class (carried in `StreamRequest` and
    /// `Reminder` frames).
    pub req_class: u8,
    /// Per-supplier admission decision (index = mix position). All
    /// `Grant` outside the `Admission` scenario, so a rate-matched mix
    /// admits and streams exactly as before.
    pub replies: Vec<AdmissionReply>,
}

impl Schedule {
    /// Derives the full run description from `(seed, scenario)`.
    pub fn derive(seed: u64, scenario: ScenarioKind) -> Schedule {
        let mut rng = SmallRng::seed_from_u64(seed ^ scenario.salt());
        let mix: Vec<u8> = MIXES[rng.gen_range(0..MIXES.len())].to_vec();
        let segment_count = rng.gen_range(8..=32u64);
        let segment_bytes = rng.gen_range(8..=128u32);
        let dt_ms = rng.gen_range(4..=20u64);
        let max_chunk = match scenario {
            ScenarioKind::Loss => rng.gen_range(1..=5usize),
            _ => rng.gen_range(8..=64usize),
        };
        let slow_lane = rng.gen_range(0..mix.len());
        let links = (0..mix.len())
            .map(|lane| {
                if scenario == ScenarioKind::SlowPeer && lane == slow_lane {
                    LinkSpec {
                        latency_ms: rng.gen_range(60..=150u64),
                        jitter_ms: rng.gen_range(5..=20u64),
                        bytes_per_ms: 1,
                    }
                } else {
                    LinkSpec {
                        latency_ms: rng.gen_range(0..=25u64),
                        jitter_ms: rng.gen_range(0..=8u64),
                        bytes_per_ms: rng.gen_range(4..=64u64),
                    }
                }
            })
            .collect();
        // The rate-matched aggregate streams the file in ~total·δt; deaths
        // land anywhere in that span (plus slack for latency).
        let span = segment_count * dt_ms * 2;
        let mut deaths: Vec<(usize, u64)> = match scenario {
            ScenarioKind::Steady | ScenarioKind::SlowPeer | ScenarioKind::Admission => Vec::new(),
            ScenarioKind::Churn => {
                let victims = rng.gen_range(1..=mix.len());
                let mut lanes: Vec<usize> = (0..mix.len()).collect();
                for i in (1..lanes.len()).rev() {
                    lanes.swap(i, rng.gen_range(0..=i));
                }
                lanes
                    .into_iter()
                    .take(victims)
                    .map(|lane| (lane, rng.gen_range(1..=span)))
                    .collect()
            }
            ScenarioKind::Loss => {
                vec![(rng.gen_range(0..mix.len()), rng.gen_range(1..=span))]
            }
        };
        deaths.sort_by_key(|&(lane, at)| (at, lane));
        let req_class = rng.gen_range(1..=4u8);
        // A rate-matched mix needs every grant to reach R0, so any deny
        // rejects the round: the deny count directly controls how often
        // the scenario exercises the rejection/reminder path (0 denies
        // still admits and streams).
        let replies = match scenario {
            ScenarioKind::Admission => {
                let denials = rng.gen_range(0..=mix.len());
                let mut lanes: Vec<usize> = (0..mix.len()).collect();
                for i in (1..lanes.len()).rev() {
                    lanes.swap(i, rng.gen_range(0..=i));
                }
                let deny: Vec<usize> = lanes.into_iter().take(denials).collect();
                (0..mix.len())
                    .map(|lane| {
                        if deny.contains(&lane) {
                            AdmissionReply::Deny {
                                busy: rng.gen_bool(0.8),
                                favored: rng.gen_bool(0.5),
                            }
                        } else {
                            AdmissionReply::Grant
                        }
                    })
                    .collect()
            }
            _ => vec![AdmissionReply::Grant; mix.len()],
        };
        Schedule {
            seed,
            scenario,
            mix,
            segment_count,
            segment_bytes,
            dt_ms,
            max_chunk,
            links,
            deaths,
            req_class,
            replies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        for scenario in ScenarioKind::ALL {
            let a = Schedule::derive(0xdead_beef, scenario);
            let b = Schedule::derive(0xdead_beef, scenario);
            assert_eq!(a, b, "{} schedules must be pure", scenario.name());
        }
    }

    #[test]
    fn scenarios_diverge_on_the_same_seed() {
        let steady = Schedule::derive(7, ScenarioKind::Steady);
        let churn = Schedule::derive(7, ScenarioKind::Churn);
        assert!(steady.deaths.is_empty());
        assert!(!churn.deaths.is_empty());
    }

    #[test]
    fn loss_schedules_fragment_hard() {
        for seed in 0..64u64 {
            let s = Schedule::derive(seed, ScenarioKind::Loss);
            assert!(s.max_chunk <= 5);
            assert_eq!(s.deaths.len(), 1);
        }
    }

    #[test]
    fn churn_death_lanes_are_distinct_and_in_range() {
        for seed in 0..64u64 {
            let s = Schedule::derive(seed, ScenarioKind::Churn);
            let mut lanes: Vec<usize> = s.deaths.iter().map(|&(l, _)| l).collect();
            lanes.sort_unstable();
            let len = lanes.len();
            lanes.dedup();
            assert_eq!(lanes.len(), len, "seed {seed}: duplicate victim");
            assert!(lanes.iter().all(|&l| l < s.mix.len()));
        }
    }

    #[test]
    fn only_admission_schedules_deny() {
        let mut denying_runs = 0;
        let mut all_grant_runs = 0;
        for seed in 0..64u64 {
            for scenario in ScenarioKind::ALL {
                let s = Schedule::derive(seed, scenario);
                assert_eq!(s.replies.len(), s.mix.len());
                let denies = s
                    .replies
                    .iter()
                    .filter(|r| matches!(r, AdmissionReply::Deny { .. }))
                    .count();
                if scenario == ScenarioKind::Admission {
                    if denies > 0 {
                        denying_runs += 1;
                    } else {
                        all_grant_runs += 1;
                    }
                } else {
                    assert_eq!(denies, 0, "{} must all-grant", scenario.name());
                }
            }
        }
        assert!(denying_runs > 0, "admission seeds must sometimes deny");
        assert!(all_grant_runs > 0, "admission seeds must sometimes admit");
    }

    #[test]
    fn slow_peer_has_exactly_one_crawling_link() {
        for seed in 0..64u64 {
            let s = Schedule::derive(seed, ScenarioKind::SlowPeer);
            let slow = s.links.iter().filter(|l| l.bytes_per_ms == 1).count();
            assert!(slow >= 1, "seed {seed}: no slow link");
        }
    }
}
