//! What one simulated run reports back to the sweep.

use p2ps_monitor::RawEvent;

use crate::ScenarioKind;

/// How a simulated session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimOutcome {
    /// Every segment arrived; `byte_exact` records whether the
    /// reassembled payloads matched the source file bit for bit.
    Completed {
        /// Reassembly matched `MediaFile::synthesize` exactly.
        byte_exact: bool,
    },
    /// Supplier losses exhausted the survivor set (the node's structured
    /// `SuppliersLost` failure).
    SuppliersLost {
        /// Segments still missing when recovery became impossible.
        missing: u64,
    },
    /// Every lane settled cleanly but segments were never assigned or
    /// delivered (the node's `IncompleteStream` failure).
    Incomplete {
        /// Segments received.
        received: u64,
        /// Segments expected.
        expected: u64,
    },
    /// The driver reported a protocol-level failure (should not happen
    /// with the built-in policies; surfaced so the sweep can flag it).
    ProtocolError(String),
    /// The event queue drained with the session unsettled — a harness
    /// bug by construction, never a legitimate outcome.
    Stalled {
        /// Segments received.
        received: u64,
        /// Segments expected.
        expected: u64,
    },
    /// The §4.2 admission round came up short of `R0`: the requester
    /// released its grants, left its reminders, and never streamed —
    /// the node's structured `Rejected` error.
    Rejected {
        /// Reminders the requester left with busy-but-favored suppliers.
        reminders: u64,
    },
}

impl SimOutcome {
    /// Whether this outcome is acceptable for a sweep run: byte-exact
    /// completion, or a *structured* failure (`SuppliersLost` /
    /// `Incomplete`) — never a stall, protocol error or corrupt
    /// reassembly.
    pub fn is_acceptable(&self) -> bool {
        matches!(
            self,
            SimOutcome::Completed { byte_exact: true }
                | SimOutcome::SuppliersLost { .. }
                | SimOutcome::Incomplete { .. }
                | SimOutcome::Rejected { .. }
        )
    }

    /// Stable tag folded into the trace digest.
    pub(crate) fn tag(&self) -> u64 {
        match self {
            SimOutcome::Completed { byte_exact: true } => 1,
            SimOutcome::Completed { byte_exact: false } => 2,
            SimOutcome::SuppliersLost { .. } => 3,
            SimOutcome::Incomplete { .. } => 4,
            SimOutcome::ProtocolError(_) => 5,
            SimOutcome::Stalled { .. } => 6,
            SimOutcome::Rejected { .. } => 7,
        }
    }
}

/// Everything one run reports: outcome, determinism digest and the
/// counters a sweep aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// The run's seed.
    pub seed: u64,
    /// The run's adversity profile.
    pub scenario: ScenarioKind,
    /// How the session ended.
    pub outcome: SimOutcome,
    /// FNV-1a digest of the full event trace — identical across runs of
    /// the same `(seed, scenario)`.
    pub trace_hash: u64,
    /// Events processed.
    pub events: u64,
    /// `SegmentData` messages decoded by the requester.
    pub segments_delivered: u64,
    /// Raw bytes pushed across links (both directions).
    pub bytes_on_wire: u64,
    /// Replanned `(lane, plan)` shares shipped after supplier losses.
    pub replans: u64,
    /// Suppliers that died mid-run.
    pub deaths: u64,
    /// `Grant` frames the suppliers sent during admission.
    pub grants: u64,
    /// `Deny` frames the suppliers sent during admission.
    pub denials: u64,
    /// `Reminder` frames that reached a supplier after a rejection.
    pub reminders: u64,
    /// The session's flight-recorder timeline, virtual-clock stamped —
    /// the same [`SessionEvent`](p2ps_proto::SessionEvent) stream the
    /// live requester records, compared whole by the sweep's run-twice
    /// determinism check (and folded event-by-event into
    /// [`trace_hash`](Self::trace_hash)).
    pub recorder: Vec<RawEvent>,
}

impl SimReport {
    /// One-line command reproducing this run, for failure messages.
    pub fn repro_hint(&self) -> String {
        repro_hint(self.seed, self.scenario)
    }
}

/// One-line repro command for a `(seed, scenario)` pair: re-running the
/// sweep with `SIMNET_SEED` pinned replays exactly this schedule.
pub fn repro_hint(seed: u64, scenario: ScenarioKind) -> String {
    format!(
        "repro: SIMNET_SEED={seed} cargo test -p p2ps-simnet --test seed_sweep (scenario: {})",
        scenario.name()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptability_splits_structured_from_broken() {
        assert!(SimOutcome::Completed { byte_exact: true }.is_acceptable());
        assert!(SimOutcome::SuppliersLost { missing: 3 }.is_acceptable());
        assert!(SimOutcome::Incomplete {
            received: 1,
            expected: 2
        }
        .is_acceptable());
        assert!(!SimOutcome::Completed { byte_exact: false }.is_acceptable());
        assert!(!SimOutcome::ProtocolError("x".into()).is_acceptable());
        assert!(!SimOutcome::Stalled {
            received: 0,
            expected: 1
        }
        .is_acceptable());
    }

    #[test]
    fn repro_hint_names_the_seed_and_scenario() {
        let hint = repro_hint(42, ScenarioKind::Churn);
        assert!(hint.contains("SIMNET_SEED=42"));
        assert!(hint.contains("churn"));
    }
}
