//! Deterministic in-memory simulation of the real streaming stack.
//!
//! `p2ps-simnet` drives the **actual** protocol machines the live node
//! runs — `p2ps_proto::RequesterSession` (via `p2ps_node::SessionDriver`),
//! `p2ps_proto::SupplierSchedule`, the `FrameDecoder`/`FrameEncoder`
//! framing, and `p2ps-policy` planning/replanning — over a simulated
//! transport instead of epoll and TCP: **no threads, no sockets, no wall
//! clock**. Where `p2ps-sim` models the paper's protocol abstractly at
//! slot granularity (its own arrival/departure processes, no wire
//! format), simnet is a *byte-level* harness for the production code
//! paths themselves.
//!
//! One `u64` seed derives everything ([`Schedule::derive`]): supplier
//! mix, media shape, per-link latency/jitter/bandwidth, how the byte
//! stream fragments, and which suppliers die when. Runs are bit-for-bit
//! reproducible — the same seed replays the identical event order,
//! witnessed by the [`SimReport::trace_hash`] digest — so any failure in
//! a thousand-seed sweep is one `SIMNET_SEED=…` away from a debugger.
//!
//! Every run opens with the real §4.2 admission round: the pipelined
//! `p2ps_proto::AdmissionDriver` sends its `StreamRequest` burst over
//! the simulated links and folds each supplier's scripted reply into a
//! verdict before a single segment moves — the same code path the live
//! reactor hosts.
//!
//! Five [`ScenarioKind`] adversity profiles are swept: `Steady` (latency
//! and fragmentation only), `Churn` (suppliers die mid-stream, up to all
//! of them), `Loss` (1–5 byte chunks plus a death that cuts a frame at
//! an arbitrary byte boundary), `SlowPeer` (one crawling link) and
//! `Admission` (suppliers may deny the round, exercising releases,
//! reminders and the structured `Rejected` outcome). Every run must end
//! in byte-exact reassembly or a *structured* failure
//! ([`SimOutcome::is_acceptable`]); stalls and corrupt reassembly are
//! harness-caught bugs.
//!
//! # Examples
//!
//! ```
//! use p2ps_simnet::{run, ScenarioKind};
//!
//! let a = run(7, ScenarioKind::Churn);
//! let b = run(7, ScenarioKind::Churn);
//! assert_eq!(a.trace_hash, b.trace_hash, "same seed, same universe");
//! assert!(a.outcome.is_acceptable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod report;
mod schedule;
mod trace;
mod world;

pub use link::Link;
pub use report::{repro_hint, SimOutcome, SimReport};
pub use schedule::{AdmissionReply, LinkSpec, ScenarioKind, Schedule};
pub use trace::TraceHasher;
pub use world::SimWorld;

/// Derives the schedule for `(seed, scenario)` and runs it to
/// completion: the one-call entry point sweeps and benches use.
pub fn run(seed: u64, scenario: ScenarioKind) -> SimReport {
    SimWorld::new(Schedule::derive(seed, scenario)).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_runs_complete_byte_exactly() {
        for seed in 0..8u64 {
            let report = run(seed, ScenarioKind::Steady);
            assert_eq!(
                report.outcome,
                SimOutcome::Completed { byte_exact: true },
                "seed {seed}: {:?}\n{}",
                report.outcome,
                report.repro_hint()
            );
            assert!(report.segments_delivered > 0);
            assert!(report.bytes_on_wire > 0);
            assert_eq!(report.deaths, 0);
        }
    }

    #[test]
    fn identical_seeds_produce_identical_reports() {
        for scenario in ScenarioKind::ALL {
            let a = run(99, scenario);
            let b = run(99, scenario);
            assert_eq!(a, b, "{} must be deterministic", scenario.name());
        }
    }

    #[test]
    fn different_seeds_produce_different_traces() {
        let a = run(1, ScenarioKind::Steady);
        let b = run(2, ScenarioKind::Steady);
        assert_ne!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn steady_runs_pass_admission_with_a_grant_per_lane() {
        for seed in 0..8u64 {
            let schedule = Schedule::derive(seed, ScenarioKind::Steady);
            let report = run(seed, ScenarioKind::Steady);
            assert_eq!(
                report.grants,
                schedule.mix.len() as u64,
                "every lane must grant before a segment moves"
            );
            assert_eq!(report.denials, 0);
            assert_eq!(report.reminders, 0);
        }
    }

    #[test]
    fn admission_scenario_exercises_denial_and_rejection() {
        let mut saw_rejection = false;
        let mut saw_reminder = false;
        let mut saw_completion = false;
        for seed in 0..32u64 {
            let report = run(seed, ScenarioKind::Admission);
            assert!(
                report.outcome.is_acceptable(),
                "seed {seed}: {:?}\n{}",
                report.outcome,
                report.repro_hint()
            );
            match report.outcome {
                SimOutcome::Rejected { reminders } => {
                    saw_rejection = true;
                    saw_reminder |= reminders > 0 && report.reminders == reminders;
                    assert!(report.denials > 0, "a rejection needs at least one deny");
                    assert_eq!(
                        report.segments_delivered, 0,
                        "a rejected round must never stream"
                    );
                }
                SimOutcome::Completed { byte_exact } => {
                    saw_completion = true;
                    assert!(byte_exact);
                    assert_eq!(report.denials, 0, "any deny rejects a rate-matched mix");
                }
                ref other => panic!("seed {seed}: unexpected {other:?}"),
            }
        }
        assert!(
            saw_rejection,
            "32 admission seeds must reject at least once"
        );
        assert!(saw_reminder, "rejections must deliver reminders on-wire");
        assert!(saw_completion, "all-grant admission seeds must stream");
    }

    #[test]
    fn churn_exercises_death_and_structured_outcomes() {
        let mut saw_death = false;
        let mut saw_acceptable_failure_or_replan = false;
        for seed in 0..32u64 {
            let report = run(seed, ScenarioKind::Churn);
            assert!(
                report.outcome.is_acceptable(),
                "seed {seed}: {:?}\n{}",
                report.outcome,
                report.repro_hint()
            );
            saw_death |= report.deaths > 0;
            saw_acceptable_failure_or_replan |=
                report.replans > 0 || matches!(report.outcome, SimOutcome::SuppliersLost { .. });
        }
        assert!(saw_death, "32 churn seeds must kill at least one supplier");
        assert!(
            saw_acceptable_failure_or_replan,
            "churn must trigger replans or structured loss"
        );
    }
}
