//! The simulated world: virtual clock, event queue, and the real stack.
//!
//! [`SimWorld`] hosts one streaming session end to end with **zero**
//! threads, sockets or wall-clock reads. The protocol code is the real
//! thing — the same types the live node runs on its epoll reactor:
//!
//! * the session opens with the real §4.2 round: a pipelined
//!   [`AdmissionDriver`] sends `StreamRequest` on every lane, each
//!   supplier's scripted `Grant`/`Deny` travels back over its link, and
//!   the round's verdict (including `Release`s and `Reminder`s on
//!   rejection) is the driver's own greedy fold;
//! * the requester side is a [`SessionDriver`] (reassembly, lane
//!   liveness, policy replans, completion/failure verdicts) fed through
//!   a per-lane [`FrameDecoder`];
//! * each supplier side is a [`SupplierSchedule`] (§3 pacing, appended
//!   replan shares) whose frames leave through [`FrameEncoder`] framing;
//! * plans come from a real `p2ps-policy` [`SharedPolicy`].
//!
//! Only the transport is simulated: per-lane [`Link`]s impose latency,
//! jitter and bandwidth, the byte stream is fragmented at arbitrary
//! boundaries, and scheduled deaths cut a frame mid-byte before the
//! close lands. Everything is driven by one event queue keyed on virtual
//! milliseconds, with a strictly increasing sequence number breaking
//! ties — two runs of the same [`Schedule`] replay the identical event
//! order, asserted via the run's [`trace_hash`](SimReport::trace_hash).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::PeerClass;
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_monitor::Recorder;
use p2ps_node::{DriverStep, NodeError, SessionDriver};
use p2ps_policy::{SessionContext, SharedPolicy};
use p2ps_proto::{
    AdmissionAction, AdmissionDriver, AdmissionVerdict, FrameDecoder, FrameEncoder, Message,
    SessionEvent, SessionPlan, SupplierSchedule,
};

use crate::link::Link;
use crate::schedule::AdmissionReply;
use crate::{Schedule, SimOutcome, SimReport, TraceHasher};

/// Which way bytes travel on a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Supplier → requester (admission replies and the stream).
    ToRequester = 0,
    /// Requester → supplier (admission requests, session setup, replans).
    ToSupplier = 1,
}

/// One thing that happens at a virtual instant.
#[derive(Debug)]
enum Event {
    /// Supplier `lane`'s next §3 pacing deadline.
    SupplierTick { lane: usize },
    /// A chunk of raw bytes reaches one end of `lane`'s connection.
    Deliver {
        lane: usize,
        dir: Dir,
        chunk: Vec<u8>,
    },
    /// The requester observes `lane`'s connection close.
    Closed { lane: usize },
    /// Supplier `lane` dies now.
    Die { lane: usize },
}

/// Queue entry: min-ordered by `(at, seq)` so equal-time events replay
/// in scheduling order.
#[derive(Debug)]
struct Scheduled {
    at: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Trace record tags (folded into the run digest).
const T_SEND: u8 = 1;
const T_CHUNK: u8 = 2;
const T_SEGMENT: u8 = 3;
const T_END: u8 = 4;
const T_START: u8 = 5;
const T_DIE: u8 = 6;
const T_CLOSED: u8 = 7;
const T_REPLAN: u8 = 8;
const T_OUTCOME: u8 = 9;
const T_ADM_TX: u8 = 10;
const T_ADM_RX: u8 = 11;
/// A flight-recorder event: the simulated session records the same
/// [`SessionEvent`] catalog the live requester does, and each one folds
/// into the digest so a recorder divergence breaks determinism loudly.
const T_EVENT: u8 = 12;

/// Small stable code for an admission-phase frame in the trace.
fn adm_code(msg: &Message) -> u64 {
    match msg {
        Message::StreamRequest { .. } => 1,
        Message::Grant { .. } => 2,
        Message::Deny { .. } => 3,
        Message::Reminder { .. } => 4,
        Message::Release { .. } => 5,
        _ => 0,
    }
}

/// One supplier's in-world state around its real [`SupplierSchedule`].
#[derive(Debug)]
struct SimSupplier {
    class: PeerClass,
    /// Scripted §4.2 decision for this run.
    reply: AdmissionReply,
    dec: FrameDecoder,
    /// Built when the wire `StartSession` arrives (like the live node).
    sched: Option<SupplierSchedule>,
    start_ms: u64,
    alive: bool,
    /// `EndSession` already sent; late replans are ignored (the live
    /// node's closed connection) and recovered via the driver's
    /// leftover path.
    done: bool,
}

/// How the session ended, before outcome mapping.
enum RawOutcome {
    Complete,
    Failed(NodeError),
}

/// One deterministic run: virtual clock, event queue, links, and the
/// real admission/requester/supplier/policy stack. Build with
/// [`SimWorld::new`], consume with [`SimWorld::run`].
pub struct SimWorld {
    schedule: Schedule,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    rng: SmallRng,
    trace: TraceHasher,
    /// The session's flight recorder, virtual-clock stamped — the same
    /// ring type the live requester publishes on its monitor scope.
    recorder: Recorder,

    session: u64,
    file: MediaFile,
    policy: SharedPolicy,
    suppliers: Vec<SimSupplier>,
    /// Per lane: `[to_requester, to_supplier]`. Lane = mix position.
    links: Vec<[Link; 2]>,
    /// Transport-open flag per lane (requester's view).
    lane_open: Vec<bool>,
    req_decs: Vec<FrameDecoder>,
    /// The §4.2 round, live until its verdict lands.
    adm: Option<AdmissionDriver>,
    /// The streaming session, built when the round admits.
    driver: Option<SessionDriver>,
    /// Which driver lane (if any) each mix lane streams as.
    driver_lane_of_mix: Vec<Option<usize>>,
    /// The mix lane behind each driver lane.
    mix_of_driver_lane: Vec<usize>,
    /// Reminders the verdict left, once the round was rejected.
    rejected: Option<u64>,
    outcome: Option<RawOutcome>,

    events: u64,
    segments_delivered: u64,
    bytes_on_wire: u64,
    replans: u64,
    deaths: u64,
    grants: u64,
    denials: u64,
    reminders: u64,
}

/// A message's full wire bytes (header chunk + zero-copy payload chunk,
/// concatenated — byte-identical to what the reactor writes).
fn wire_bytes(msg: &Message) -> Vec<u8> {
    let (head, payload) = FrameEncoder::frame(msg);
    let mut v = Vec::with_capacity(head.len() + payload.as_ref().map_or(0, |p| p.len()));
    v.extend_from_slice(&head);
    if let Some(p) = payload {
        v.extend_from_slice(&p);
    }
    v
}

impl SimWorld {
    /// Builds the world for one schedule: synthesizes the media file,
    /// constructs the admission driver and supplier machines, queues the
    /// `StreamRequest` burst plus every scheduled death. Planning and
    /// the [`SessionDriver`] wait for the round's verdict, exactly like
    /// the live node.
    pub fn new(schedule: Schedule) -> SimWorld {
        let session = schedule.seed;
        let info = MediaInfo::new(
            format!("simnet-{:016x}", schedule.seed),
            schedule.segment_count,
            SegmentDuration::from_millis(schedule.dt_ms),
            schedule.segment_bytes,
        );
        let file = MediaFile::synthesize(info);

        let classes: Vec<PeerClass> = schedule
            .mix
            .iter()
            .map(|&k| PeerClass::new(k).expect("mix classes are valid"))
            .collect();
        let req_class = PeerClass::new(schedule.req_class).expect("req_class is valid");

        let suppliers: Vec<SimSupplier> = classes
            .iter()
            .zip(&schedule.replies)
            .map(|(&class, &reply)| SimSupplier {
                class,
                reply,
                dec: FrameDecoder::new(),
                sched: None,
                start_ms: 0,
                alive: true,
                done: false,
            })
            .collect();
        let links: Vec<[Link; 2]> = schedule
            .links
            .iter()
            .map(|&spec| [Link::new(spec), Link::new(spec)])
            .collect();
        let lane_count = classes.len();
        let segment_capacity = schedule.segment_count as usize * 2 + 64;
        let rng_seed = schedule.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ schedule.scenario.salt();
        let scheduled_deaths = schedule.deaths.clone();

        let mut adm = AdmissionDriver::new(session, req_class, &classes);
        adm.start();

        let mut world = SimWorld {
            schedule,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: SmallRng::seed_from_u64(rng_seed),
            trace: TraceHasher::new(),
            // Sized to retain the whole run (one arrival per segment
            // plus the admission/replan bookends) — the report carries
            // the full timeline, not a wrapped tail.
            recorder: Recorder::standalone(segment_capacity),
            session,
            file,
            policy: SharedPolicy::default(),
            suppliers,
            links,
            lane_open: vec![true; lane_count],
            req_decs: (0..lane_count).map(|_| FrameDecoder::new()).collect(),
            adm: Some(adm),
            driver: None,
            driver_lane_of_mix: vec![None; lane_count],
            mix_of_driver_lane: Vec::new(),
            rejected: None,
            outcome: None,
            events: 0,
            segments_delivered: 0,
            bytes_on_wire: 0,
            replans: 0,
            deaths: 0,
            grants: 0,
            denials: 0,
            reminders: 0,
        };

        // The opening StreamRequest burst travels the wire like
        // everything else, framed and fragmented per lane.
        world.pump_admission();
        for &(mix_idx, at) in &scheduled_deaths {
            world.push(at, Event::Die { lane: mix_idx });
        }
        world
    }

    /// Runs the world to quiescence and reports.
    pub fn run(mut self) -> SimReport {
        while self.outcome.is_none() {
            let Some(s) = self.queue.pop() else { break };
            debug_assert!(s.at >= self.now, "virtual time must be monotone");
            self.now = s.at;
            self.events += 1;
            self.dispatch(s.ev);
        }
        let outcome = match self.outcome.take() {
            Some(RawOutcome::Complete) => {
                let mut byte_exact = true;
                let driver = self.driver.take().expect("completion implies streaming");
                let (sm, _classes) = driver.into_parts();
                for (i, entry) in sm.into_segments().into_iter().enumerate() {
                    let expect = self.file.segment(i as u64).into_payload();
                    match entry {
                        Some((payload, _at)) if payload[..] == expect[..] => {}
                        _ => {
                            byte_exact = false;
                            break;
                        }
                    }
                }
                SimOutcome::Completed { byte_exact }
            }
            Some(RawOutcome::Failed(e)) => match e {
                NodeError::SuppliersLost { missing } => SimOutcome::SuppliersLost { missing },
                NodeError::IncompleteStream { received, expected } => {
                    SimOutcome::Incomplete { received, expected }
                }
                other => SimOutcome::ProtocolError(other.to_string()),
            },
            None => match (self.rejected, &self.driver) {
                // The round was rejected: the queue drained after the
                // releases and reminders landed — the structured end.
                (Some(reminders), _) => SimOutcome::Rejected { reminders },
                (None, Some(driver)) => SimOutcome::Stalled {
                    received: driver.machine().received(),
                    expected: driver.machine().total_segments(),
                },
                // Admission never resolved — a harness bug by
                // construction (every lane replies or dies).
                (None, None) => SimOutcome::Stalled {
                    received: 0,
                    expected: self.file.info().segment_count(),
                },
            },
        };
        self.trace.record(T_OUTCOME, &[outcome.tag()]);
        SimReport {
            seed: self.schedule.seed,
            scenario: self.schedule.scenario,
            outcome,
            trace_hash: self.trace.digest(),
            events: self.events,
            segments_delivered: self.segments_delivered,
            bytes_on_wire: self.bytes_on_wire,
            replans: self.replans,
            deaths: self.deaths,
            grants: self.grants,
            denials: self.denials,
            reminders: self.reminders,
            recorder: self.recorder.events(),
        }
    }

    /// Records `ev` into the flight recorder (virtual-clock stamped) and
    /// folds it into the trace digest: the recorder stream is part of
    /// the determinism contract, so a divergence in *what the session
    /// observed* breaks the seed sweep even when the wire bytes agree.
    fn event(&mut self, ev: SessionEvent) {
        let (a, b) = ev.fields();
        self.recorder.record_at(self.now, ev.code(), a, b);
        self.trace
            .record(T_EVENT, &[self.now, u64::from(ev.code()), a, b]);
    }

    /// Schedules `ev` at virtual time `at` (tie-broken by push order).
    fn push(&mut self, at: u64, ev: Event) {
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::SupplierTick { lane } => self.tick(lane),
            Event::Deliver {
                lane,
                dir: Dir::ToRequester,
                chunk,
            } => self.deliver_to_requester(lane, &chunk),
            Event::Deliver {
                lane,
                dir: Dir::ToSupplier,
                chunk,
            } => self.deliver_to_supplier(lane, &chunk),
            Event::Closed { lane } => self.closed(lane),
            Event::Die { lane } => self.die(lane),
        }
    }

    /// Fragments `bytes` at arbitrary boundaries and schedules each
    /// chunk's FIFO delivery over the lane's link.
    fn send_stream(&mut self, lane: usize, dir: Dir, bytes: &[u8]) {
        self.bytes_on_wire += bytes.len() as u64;
        let max_chunk = self.schedule.max_chunk.max(1);
        let mut off = 0;
        while off < bytes.len() {
            let cap = (bytes.len() - off).min(max_chunk);
            let take = if cap == 1 {
                1
            } else {
                self.rng.gen_range(1..=cap)
            };
            let chunk = bytes[off..off + take].to_vec();
            off += take;
            let at = self.links[lane][dir as usize].send(self.now, chunk.len(), &mut self.rng);
            self.push(at, Event::Deliver { lane, dir, chunk });
        }
    }

    /// Executes the admission driver's queued transport actions and acts
    /// on its verdict: admitted rounds plan and start streaming,
    /// rejected rounds record the structured end (their releases and
    /// reminders are already on the wire).
    fn pump_admission(&mut self) {
        let Some(mut adm) = self.adm.take() else {
            return;
        };
        while let Some(action) = adm.pop_action() {
            match action {
                AdmissionAction::Send { lane, msg } => {
                    self.trace
                        .record(T_ADM_TX, &[self.now, lane as u64, adm_code(&msg)]);
                    match &msg {
                        Message::StreamRequest { .. } => {
                            self.event(SessionEvent::AdmissionRequest { lane: lane as u64 })
                        }
                        Message::Reminder { .. } => {
                            self.event(SessionEvent::AdmissionReminder { lane: lane as u64 })
                        }
                        _ => {}
                    }
                    let bytes = wire_bytes(&msg);
                    self.send_stream(lane, Dir::ToSupplier, &bytes);
                }
                AdmissionAction::Close { lane } => {
                    self.trace.record(T_CLOSED, &[self.now, lane as u64]);
                    self.lane_open[lane] = false;
                }
            }
        }
        match adm.verdict().clone() {
            AdmissionVerdict::Pending => self.adm = Some(adm),
            AdmissionVerdict::Admitted { granted } => self.begin_streaming(&granted),
            AdmissionVerdict::Rejected { reminders, .. } => {
                self.rejected = Some(reminders.len() as u64);
            }
        }
    }

    /// The round admitted: run the real policy over the granted classes,
    /// build the [`SessionDriver`], and open every granted lane with its
    /// `StartSession` — the sim's copy of the reactor's adopted-lane
    /// hand-off.
    fn begin_streaming(&mut self, granted: &[usize]) {
        let classes: Vec<PeerClass> = granted.iter().map(|&m| self.suppliers[m].class).collect();
        let total = self.file.info().segment_count();
        let dt_ms = self.schedule.dt_ms;
        let ctx = SessionContext::full(&classes, total).with_seed(self.session);
        let plan = self
            .policy
            .plan(&ctx)
            .expect("the default policy plans rate-matched mixes");
        assert_eq!(plan.slot_count(), classes.len(), "one slot per grant");

        // Driver lanes are the slots the policy actually used; a grant
        // the policy left empty is closed, like the reactor's Release.
        let mut lanes: Vec<(PeerClass, SessionPlan)> = Vec::new();
        for (slot, &mix_idx) in granted.iter().enumerate() {
            let segments = plan.slot(slot);
            if segments.is_empty() {
                self.lane_open[mix_idx] = false;
                continue;
            }
            self.driver_lane_of_mix[mix_idx] = Some(lanes.len());
            self.mix_of_driver_lane.push(mix_idx);
            lanes.push((
                classes[slot],
                SessionPlan {
                    item: self.file.info().name().to_owned(),
                    segments: segments.to_vec(),
                    period: plan.period(),
                    total_segments: total,
                    dt_ms: dt_ms as u32,
                },
            ));
        }

        let driver = SessionDriver::new(
            self.session,
            self.file.info().name(),
            total,
            dt_ms,
            self.policy.clone(),
            &lanes,
        );
        for (driver_lane, (_, plan)) in lanes.into_iter().enumerate() {
            let mix_idx = self.mix_of_driver_lane[driver_lane];
            if !self.lane_open[mix_idx] {
                continue; // granted, then died mid-round: failed below
            }
            self.event(SessionEvent::PlanSent {
                lane: mix_idx as u64,
                segments: plan.segments.len() as u64,
            });
            let bytes = wire_bytes(&Message::StartSession {
                session: self.session,
                plan,
            });
            self.send_stream(mix_idx, Dir::ToSupplier, &bytes);
        }
        self.driver = Some(driver);
        let step = self.driver.as_mut().expect("just set").status();
        self.apply(step);
        // A lane can grant and then die before the hand-off, with its
        // close observed while the round was still pending: the grant
        // stood (the fold keeps settled grants), but the transport is
        // gone. The reactor discovers exactly this on its first write to
        // the adopted connection; the sim fails those lanes here so the
        // driver replans their shares instead of waiting forever.
        for mix_idx in 0..self.lane_open.len() {
            if self.outcome.is_some() {
                break;
            }
            if let Some(driver_lane) = self.driver_lane_of_mix[mix_idx] {
                if !self.lane_open[mix_idx] {
                    let step = self
                        .driver
                        .as_mut()
                        .expect("just set")
                        .on_failure(driver_lane);
                    self.apply(step);
                }
            }
        }
    }

    /// Supplier pacing deadline: transmit the next scheduled segment, or
    /// `EndSession` when the schedule (base + appends) is exhausted.
    fn tick(&mut self, lane: usize) {
        if !self.suppliers[lane].alive
            || self.suppliers[lane].done
            || self.suppliers[lane].sched.is_none()
        {
            return;
        }
        let cap = self.file.info().segment_count();
        let start_ms = self.suppliers[lane].start_ms;
        let sched = self.suppliers[lane].sched.as_mut().expect("checked above");
        let action = match sched.next_unsent(cap) {
            Some(seg) => {
                sched.consume();
                Some((seg, sched.next_deadline_ms(start_ms)))
            }
            None => None,
        };
        match action {
            Some((seg, next)) => {
                self.trace.record(T_SEND, &[self.now, lane as u64, seg]);
                let bytes = wire_bytes(&Message::SegmentData {
                    session: self.session,
                    index: seg,
                    payload: self.file.segment(seg).into_payload(),
                });
                self.send_stream(lane, Dir::ToRequester, &bytes);
                self.push(next.max(self.now), Event::SupplierTick { lane });
            }
            None => {
                self.suppliers[lane].done = true;
                let bytes = wire_bytes(&Message::EndSession {
                    session: self.session,
                });
                self.send_stream(lane, Dir::ToRequester, &bytes);
            }
        }
    }

    /// Bytes reach the requester: feed the lane's real decoder, then
    /// drive whichever phase the session is in — the admission driver
    /// before the verdict, the session driver after.
    fn deliver_to_requester(&mut self, lane: usize, chunk: &[u8]) {
        if !self.lane_open[lane] {
            return;
        }
        self.trace
            .record(T_CHUNK, &[self.now, lane as u64, 0, chunk.len() as u64]);
        self.req_decs[lane].feed(chunk);
        if self.adm.is_some() {
            self.admission_rx(lane);
            return;
        }
        while self.outcome.is_none() && self.lane_open[lane] {
            let Some(driver_lane) = self.driver_lane_of_mix[lane] else {
                return; // a lane the round never adopted (rejected tail)
            };
            match self.req_decs[lane].poll() {
                Ok(Some(Message::SegmentData {
                    session,
                    index,
                    payload,
                })) if session == self.session => {
                    self.segments_delivered += 1;
                    self.trace.record(
                        T_SEGMENT,
                        &[self.now, lane as u64, index, payload.len() as u64],
                    );
                    self.event(SessionEvent::SegmentArrived {
                        lane: lane as u64,
                        index,
                    });
                    let step = self.driver.as_mut().expect("streaming phase").on_segment(
                        driver_lane,
                        index,
                        payload,
                        self.now,
                    );
                    self.apply(step);
                }
                Ok(Some(Message::EndSession { session })) if session == self.session => {
                    self.trace.record(T_END, &[self.now, lane as u64]);
                    self.lane_open[lane] = false;
                    let step = self
                        .driver
                        .as_mut()
                        .expect("streaming phase")
                        .on_end(driver_lane);
                    self.apply(step);
                }
                Ok(None) => return,
                Ok(Some(_)) | Err(_) => {
                    // A frame this harness never sends, or a corrupt
                    // stream: the reactor treats both as a structured
                    // per-lane failure, so does the simulation.
                    self.lane_open[lane] = false;
                    let step = self
                        .driver
                        .as_mut()
                        .expect("streaming phase")
                        .on_failure(driver_lane);
                    self.apply(step);
                }
            }
        }
    }

    /// Admission-phase frames reaching the requester: `Grant`/`Deny`
    /// replies feed the admission driver's fold (anything else refuses
    /// the lane, inside the driver itself).
    fn admission_rx(&mut self, lane: usize) {
        while self.adm.is_some() && self.lane_open[lane] {
            match self.req_decs[lane].poll() {
                Ok(Some(msg)) => {
                    self.trace
                        .record(T_ADM_RX, &[self.now, lane as u64, adm_code(&msg)]);
                    match &msg {
                        Message::Grant { .. } => {
                            self.event(SessionEvent::AdmissionGrant { lane: lane as u64 })
                        }
                        Message::Deny { .. } => {
                            self.event(SessionEvent::AdmissionDeny { lane: lane as u64 })
                        }
                        _ => {}
                    }
                    let mut adm = self.adm.take().expect("checked above");
                    adm.on_message(lane, &msg);
                    self.adm = Some(adm);
                    self.pump_admission();
                }
                Ok(None) => return,
                Err(_) => {
                    self.lane_open[lane] = false;
                    let mut adm = self.adm.take().expect("checked above");
                    adm.on_lane_error(lane);
                    self.adm = Some(adm);
                    self.pump_admission();
                    return;
                }
            }
        }
    }

    /// Setup/replan bytes reach a supplier: decode with the real decoder
    /// and answer like the live supplier — `StreamRequest` draws the
    /// scripted §4.2 decision, `StartSession`s build/extend the real
    /// schedule, reminders and releases are acknowledged into the trace.
    fn deliver_to_supplier(&mut self, lane: usize, chunk: &[u8]) {
        if !self.suppliers[lane].alive {
            return;
        }
        self.trace
            .record(T_CHUNK, &[self.now, lane as u64, 1, chunk.len() as u64]);
        self.suppliers[lane].dec.feed(chunk);
        loop {
            match self.suppliers[lane].dec.poll() {
                Ok(Some(Message::StreamRequest { session, .. })) if session == self.session => {
                    let reply = match self.suppliers[lane].reply {
                        AdmissionReply::Grant => {
                            self.grants += 1;
                            Message::Grant {
                                session,
                                class: self.suppliers[lane].class,
                            }
                        }
                        AdmissionReply::Deny { busy, favored } => {
                            self.denials += 1;
                            Message::Deny {
                                session,
                                busy,
                                favored,
                            }
                        }
                    };
                    self.trace
                        .record(T_ADM_TX, &[self.now, lane as u64, adm_code(&reply)]);
                    let bytes = wire_bytes(&reply);
                    self.send_stream(lane, Dir::ToRequester, &bytes);
                }
                Ok(Some(Message::StartSession { session, plan })) if session == self.session => {
                    self.trace.record(
                        T_START,
                        &[self.now, lane as u64, plan.segments.len() as u64],
                    );
                    self.start_or_append(lane, plan);
                }
                Ok(Some(Message::Reminder { session, .. })) if session == self.session => {
                    self.reminders += 1;
                    self.trace.record(T_ADM_RX, &[self.now, lane as u64, 4]);
                }
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => return,
            }
        }
    }

    /// The supplier half of `StartSession` handling, mirroring the live
    /// node: first plan builds the schedule and starts pacing; later
    /// (explicit replan) plans append to the running schedule.
    fn start_or_append(&mut self, lane: usize, plan: SessionPlan) {
        if self.suppliers[lane].done {
            // EndSession already left: the requester's leftover path
            // re-replans this share (the live node's closed connection).
            return;
        }
        if let Some(sched) = self.suppliers[lane].sched.as_mut() {
            sched.append(plan.segments.iter().copied());
            return;
        }
        let spp = u64::from(self.suppliers[lane].class.slots_per_segment());
        let Ok(sched) = SupplierSchedule::new(plan, spp) else {
            // Malformed plan — our own policy never emits one; dropping
            // it stalls the lane, which the sweep would flag.
            return;
        };
        self.suppliers[lane].start_ms = self.now;
        let first = sched.next_deadline_ms(self.now);
        self.suppliers[lane].sched = Some(sched);
        self.push(first, Event::SupplierTick { lane });
    }

    /// A scheduled death: the dying supplier's next frame is cut at an
    /// arbitrary byte boundary (the truncated prefix still arrives,
    /// stressing the decoder), then the close lands on the same FIFO.
    fn die(&mut self, lane: usize) {
        if !self.suppliers[lane].alive {
            return;
        }
        self.suppliers[lane].alive = false;
        self.deaths += 1;
        self.trace.record(T_DIE, &[self.now, lane as u64]);
        let cap = self.file.info().segment_count();
        let mut partial = None;
        if !self.suppliers[lane].done {
            if let Some(sched) = self.suppliers[lane].sched.as_mut() {
                partial = sched.next_unsent(cap);
            }
        }
        if let Some(seg) = partial {
            let bytes = wire_bytes(&Message::SegmentData {
                session: self.session,
                index: seg,
                payload: self.file.segment(seg).into_payload(),
            });
            let cut = self.rng.gen_range(0..bytes.len());
            if cut > 0 {
                self.send_stream(lane, Dir::ToRequester, &bytes[..cut]);
            }
        }
        let at = self.links[lane][Dir::ToRequester as usize].send(self.now, 0, &mut self.rng);
        self.push(at + 1, Event::Closed { lane });
    }

    /// The requester observes a lane's connection close — a mid-round
    /// death settles the admission lane, a mid-stream one fails the
    /// session lane.
    fn closed(&mut self, lane: usize) {
        if !self.lane_open[lane] {
            return;
        }
        self.trace.record(T_CLOSED, &[self.now, lane as u64]);
        self.lane_open[lane] = false;
        if self.adm.is_some() {
            let mut adm = self.adm.take().expect("checked above");
            adm.on_lane_error(lane);
            self.adm = Some(adm);
            self.pump_admission();
            return;
        }
        if let Some(driver_lane) = self.driver_lane_of_mix[lane] {
            let step = self
                .driver
                .as_mut()
                .expect("streaming phase")
                .on_failure(driver_lane);
            self.apply(step);
        }
    }

    /// Executes a [`DriverStep`], shipping replanned shares back over
    /// the wire exactly as the reactor does.
    fn apply(&mut self, step: DriverStep) {
        match step {
            DriverStep::Continue => {}
            DriverStep::Replanned(plans) => {
                self.replans += plans.len() as u64;
                for (driver_lane, plan) in plans {
                    let mix_idx = self.mix_of_driver_lane[driver_lane];
                    self.trace.record(
                        T_REPLAN,
                        &[self.now, mix_idx as u64, plan.segments.len() as u64],
                    );
                    self.event(SessionEvent::Replanned {
                        lane: mix_idx as u64,
                        segments: plan.segments.len() as u64,
                    });
                    let bytes = wire_bytes(&Message::StartSession {
                        session: self.session,
                        plan,
                    });
                    self.send_stream(mix_idx, Dir::ToSupplier, &bytes);
                }
            }
            DriverStep::Complete => {
                self.event(SessionEvent::Completed {
                    received: self.segments_delivered,
                });
                self.outcome = Some(RawOutcome::Complete);
            }
            DriverStep::Failed(e) => {
                if let NodeError::SuppliersLost { missing } = &e {
                    let missing = *missing;
                    self.event(SessionEvent::GaveUp { missing });
                }
                self.outcome = Some(RawOutcome::Failed(e));
            }
            _ => unreachable!("non-exhaustive DriverStep grew a variant"),
        }
    }
}
