//! The simulated world: virtual clock, event queue, and the real stack.
//!
//! [`SimWorld`] hosts one streaming session end to end with **zero**
//! threads, sockets or wall-clock reads. The protocol code is the real
//! thing — the same types the live node runs on its epoll reactor:
//!
//! * the requester side is a [`SessionDriver`] (reassembly, lane
//!   liveness, policy replans, completion/failure verdicts) fed through
//!   a per-lane [`FrameDecoder`];
//! * each supplier side is a [`SupplierSchedule`] (§3 pacing, appended
//!   replan shares) whose frames leave through [`FrameEncoder`] framing;
//! * plans come from a real `p2ps-policy` [`SharedPolicy`].
//!
//! Only the transport is simulated: per-lane [`Link`]s impose latency,
//! jitter and bandwidth, the byte stream is fragmented at arbitrary
//! boundaries, and scheduled deaths cut a frame mid-byte before the
//! close lands. Everything is driven by one event queue keyed on virtual
//! milliseconds, with a strictly increasing sequence number breaking
//! ties — two runs of the same [`Schedule`] replay the identical event
//! order, asserted via the run's [`trace_hash`](SimReport::trace_hash).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use p2ps_core::assignment::SegmentDuration;
use p2ps_core::PeerClass;
use p2ps_media::{MediaFile, MediaInfo};
use p2ps_node::{DriverStep, NodeError, SessionDriver};
use p2ps_policy::{SessionContext, SharedPolicy};
use p2ps_proto::{FrameDecoder, FrameEncoder, Message, SessionPlan, SupplierSchedule};

use crate::link::Link;
use crate::{Schedule, SimOutcome, SimReport, TraceHasher};

/// Which way bytes travel on a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Supplier → requester (the stream).
    ToRequester = 0,
    /// Requester → supplier (session setup and replans).
    ToSupplier = 1,
}

/// One thing that happens at a virtual instant.
#[derive(Debug)]
enum Event {
    /// Supplier `lane`'s next §3 pacing deadline.
    SupplierTick { lane: usize },
    /// A chunk of raw bytes reaches one end of `lane`'s connection.
    Deliver {
        lane: usize,
        dir: Dir,
        chunk: Vec<u8>,
    },
    /// The requester observes `lane`'s connection close.
    Closed { lane: usize },
    /// Supplier `lane` dies now.
    Die { lane: usize },
}

/// Queue entry: min-ordered by `(at, seq)` so equal-time events replay
/// in scheduling order.
#[derive(Debug)]
struct Scheduled {
    at: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Trace record tags (folded into the run digest).
const T_SEND: u8 = 1;
const T_CHUNK: u8 = 2;
const T_SEGMENT: u8 = 3;
const T_END: u8 = 4;
const T_START: u8 = 5;
const T_DIE: u8 = 6;
const T_CLOSED: u8 = 7;
const T_REPLAN: u8 = 8;
const T_OUTCOME: u8 = 9;

/// One supplier's in-world state around its real [`SupplierSchedule`].
#[derive(Debug)]
struct SimSupplier {
    class: PeerClass,
    dec: FrameDecoder,
    /// Built when the wire `StartSession` arrives (like the live node).
    sched: Option<SupplierSchedule>,
    start_ms: u64,
    alive: bool,
    /// `EndSession` already sent; late replans are ignored (the live
    /// node's closed connection) and recovered via the driver's
    /// leftover path.
    done: bool,
}

/// How the session ended, before outcome mapping.
enum RawOutcome {
    Complete,
    Failed(NodeError),
}

/// One deterministic run: virtual clock, event queue, links, and the
/// real requester/supplier/policy stack. Build with [`SimWorld::new`],
/// consume with [`SimWorld::run`].
pub struct SimWorld {
    schedule: Schedule,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    rng: SmallRng,
    trace: TraceHasher,

    session: u64,
    file: MediaFile,
    suppliers: Vec<SimSupplier>,
    /// Per lane: `[to_requester, to_supplier]`.
    links: Vec<[Link; 2]>,
    /// Transport-open flag per lane (requester's view).
    lane_open: Vec<bool>,
    req_decs: Vec<FrameDecoder>,
    driver: SessionDriver,
    outcome: Option<RawOutcome>,

    events: u64,
    segments_delivered: u64,
    bytes_on_wire: u64,
    replans: u64,
    deaths: u64,
}

/// A message's full wire bytes (header chunk + zero-copy payload chunk,
/// concatenated — byte-identical to what the reactor writes).
fn wire_bytes(msg: &Message) -> Vec<u8> {
    let (head, payload) = FrameEncoder::frame(msg);
    let mut v = Vec::with_capacity(head.len() + payload.as_ref().map_or(0, |p| p.len()));
    v.extend_from_slice(&head);
    if let Some(p) = payload {
        v.extend_from_slice(&p);
    }
    v
}

impl SimWorld {
    /// Builds the world for one schedule: synthesizes the media file,
    /// runs the real selection policy over the supplier mix, constructs
    /// the driver and supplier machines, and queues the session-opening
    /// `StartSession` frames plus every scheduled death.
    pub fn new(schedule: Schedule) -> SimWorld {
        let session = schedule.seed;
        let info = MediaInfo::new(
            format!("simnet-{:016x}", schedule.seed),
            schedule.segment_count,
            SegmentDuration::from_millis(schedule.dt_ms),
            schedule.segment_bytes,
        );
        let file = MediaFile::synthesize(info);
        let total = file.info().segment_count();
        let dt_ms = schedule.dt_ms;

        let classes: Vec<PeerClass> = schedule
            .mix
            .iter()
            .map(|&k| PeerClass::new(k).expect("mix classes are valid"))
            .collect();
        let policy = SharedPolicy::default();
        let ctx = SessionContext::full(&classes, total).with_seed(session);
        let plan = policy
            .plan(&ctx)
            .expect("the default policy plans rate-matched mixes");
        assert_eq!(plan.slot_count(), classes.len(), "one slot per supplier");

        // Lanes are the slots the policy actually used; remember which
        // mix position each lane came from so links and deaths follow.
        let mut lanes: Vec<(PeerClass, SessionPlan)> = Vec::new();
        let mut lane_of_mix: Vec<Option<usize>> = vec![None; classes.len()];
        let mut links: Vec<[Link; 2]> = Vec::new();
        for (slot, &class) in classes.iter().enumerate() {
            let segments = plan.slot(slot);
            if segments.is_empty() {
                continue;
            }
            lane_of_mix[slot] = Some(lanes.len());
            links.push([
                Link::new(schedule.links[slot]),
                Link::new(schedule.links[slot]),
            ]);
            lanes.push((
                class,
                SessionPlan {
                    item: file.info().name().to_owned(),
                    segments: segments.to_vec(),
                    period: plan.period(),
                    total_segments: total,
                    dt_ms: dt_ms as u32,
                },
            ));
        }

        let driver = SessionDriver::new(session, file.info().name(), total, dt_ms, policy, &lanes);
        let suppliers: Vec<SimSupplier> = lanes
            .iter()
            .map(|(class, _)| SimSupplier {
                class: *class,
                dec: FrameDecoder::new(),
                sched: None,
                start_ms: 0,
                alive: true,
                done: false,
            })
            .collect();
        let lane_count = lanes.len();
        let rng_seed = schedule.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ schedule.scenario.salt();
        let scheduled_deaths = schedule.deaths.clone();

        let mut world = SimWorld {
            schedule,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: SmallRng::seed_from_u64(rng_seed),
            trace: TraceHasher::new(),
            session,
            file,
            suppliers,
            links,
            lane_open: vec![true; lane_count],
            req_decs: (0..lane_count).map(|_| FrameDecoder::new()).collect(),
            driver,
            outcome: None,
            events: 0,
            segments_delivered: 0,
            bytes_on_wire: 0,
            replans: 0,
            deaths: 0,
        };

        // Session setup travels the wire like everything else: the
        // requester's opening StartSession per lane, framed and
        // fragmented; each supplier builds its schedule on receipt.
        for (lane, (_, plan)) in lanes.into_iter().enumerate() {
            let bytes = wire_bytes(&Message::StartSession { session, plan });
            world.send_stream(lane, Dir::ToSupplier, &bytes);
        }
        for &(mix_idx, at) in &scheduled_deaths {
            if let Some(lane) = lane_of_mix[mix_idx] {
                world.push(at, Event::Die { lane });
            }
        }
        world
    }

    /// Runs the world to quiescence and reports.
    pub fn run(mut self) -> SimReport {
        let step = self.driver.status();
        self.apply(step);
        while self.outcome.is_none() {
            let Some(s) = self.queue.pop() else { break };
            debug_assert!(s.at >= self.now, "virtual time must be monotone");
            self.now = s.at;
            self.events += 1;
            self.dispatch(s.ev);
        }
        let outcome = match self.outcome.take() {
            Some(RawOutcome::Complete) => {
                let mut byte_exact = true;
                let (sm, _classes) = self.driver.into_parts();
                for (i, entry) in sm.into_segments().into_iter().enumerate() {
                    let expect = self.file.segment(i as u64).into_payload();
                    match entry {
                        Some((payload, _at)) if payload[..] == expect[..] => {}
                        _ => {
                            byte_exact = false;
                            break;
                        }
                    }
                }
                SimOutcome::Completed { byte_exact }
            }
            Some(RawOutcome::Failed(e)) => match e {
                NodeError::SuppliersLost { missing } => SimOutcome::SuppliersLost { missing },
                NodeError::IncompleteStream { received, expected } => {
                    SimOutcome::Incomplete { received, expected }
                }
                other => SimOutcome::ProtocolError(other.to_string()),
            },
            None => SimOutcome::Stalled {
                received: self.driver.machine().received(),
                expected: self.driver.machine().total_segments(),
            },
        };
        self.trace.record(T_OUTCOME, &[outcome.tag()]);
        SimReport {
            seed: self.schedule.seed,
            scenario: self.schedule.scenario,
            outcome,
            trace_hash: self.trace.digest(),
            events: self.events,
            segments_delivered: self.segments_delivered,
            bytes_on_wire: self.bytes_on_wire,
            replans: self.replans,
            deaths: self.deaths,
        }
    }

    /// Schedules `ev` at virtual time `at` (tie-broken by push order).
    fn push(&mut self, at: u64, ev: Event) {
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::SupplierTick { lane } => self.tick(lane),
            Event::Deliver {
                lane,
                dir: Dir::ToRequester,
                chunk,
            } => self.deliver_to_requester(lane, &chunk),
            Event::Deliver {
                lane,
                dir: Dir::ToSupplier,
                chunk,
            } => self.deliver_to_supplier(lane, &chunk),
            Event::Closed { lane } => self.closed(lane),
            Event::Die { lane } => self.die(lane),
        }
    }

    /// Fragments `bytes` at arbitrary boundaries and schedules each
    /// chunk's FIFO delivery over the lane's link.
    fn send_stream(&mut self, lane: usize, dir: Dir, bytes: &[u8]) {
        self.bytes_on_wire += bytes.len() as u64;
        let max_chunk = self.schedule.max_chunk.max(1);
        let mut off = 0;
        while off < bytes.len() {
            let cap = (bytes.len() - off).min(max_chunk);
            let take = if cap == 1 {
                1
            } else {
                self.rng.gen_range(1..=cap)
            };
            let chunk = bytes[off..off + take].to_vec();
            off += take;
            let at = self.links[lane][dir as usize].send(self.now, chunk.len(), &mut self.rng);
            self.push(at, Event::Deliver { lane, dir, chunk });
        }
    }

    /// Supplier pacing deadline: transmit the next scheduled segment, or
    /// `EndSession` when the schedule (base + appends) is exhausted.
    fn tick(&mut self, lane: usize) {
        if !self.suppliers[lane].alive
            || self.suppliers[lane].done
            || self.suppliers[lane].sched.is_none()
        {
            return;
        }
        let cap = self.file.info().segment_count();
        let start_ms = self.suppliers[lane].start_ms;
        let sched = self.suppliers[lane].sched.as_mut().expect("checked above");
        let action = match sched.next_unsent(cap) {
            Some(seg) => {
                sched.consume();
                Some((seg, sched.next_deadline_ms(start_ms)))
            }
            None => None,
        };
        match action {
            Some((seg, next)) => {
                self.trace.record(T_SEND, &[self.now, lane as u64, seg]);
                let bytes = wire_bytes(&Message::SegmentData {
                    session: self.session,
                    index: seg,
                    payload: self.file.segment(seg).into_payload(),
                });
                self.send_stream(lane, Dir::ToRequester, &bytes);
                self.push(next.max(self.now), Event::SupplierTick { lane });
            }
            None => {
                self.suppliers[lane].done = true;
                let bytes = wire_bytes(&Message::EndSession {
                    session: self.session,
                });
                self.send_stream(lane, Dir::ToRequester, &bytes);
            }
        }
    }

    /// Stream bytes reach the requester: feed the lane's real decoder,
    /// drive the real driver with whatever frames completed.
    fn deliver_to_requester(&mut self, lane: usize, chunk: &[u8]) {
        if !self.lane_open[lane] {
            return;
        }
        self.trace
            .record(T_CHUNK, &[self.now, lane as u64, 0, chunk.len() as u64]);
        self.req_decs[lane].feed(chunk);
        while self.outcome.is_none() && self.lane_open[lane] {
            match self.req_decs[lane].poll() {
                Ok(Some(Message::SegmentData {
                    session,
                    index,
                    payload,
                })) if session == self.session => {
                    self.segments_delivered += 1;
                    self.trace.record(
                        T_SEGMENT,
                        &[self.now, lane as u64, index, payload.len() as u64],
                    );
                    let step = self.driver.on_segment(lane, index, payload, self.now);
                    self.apply(step);
                }
                Ok(Some(Message::EndSession { session })) if session == self.session => {
                    self.trace.record(T_END, &[self.now, lane as u64]);
                    self.lane_open[lane] = false;
                    let step = self.driver.on_end(lane);
                    self.apply(step);
                }
                Ok(None) => return,
                Ok(Some(_)) | Err(_) => {
                    // A frame this harness never sends, or a corrupt
                    // stream: the reactor treats both as a structured
                    // per-lane failure, so does the simulation.
                    self.lane_open[lane] = false;
                    let step = self.driver.on_failure(lane);
                    self.apply(step);
                }
            }
        }
    }

    /// Setup/replan bytes reach a supplier: decode `StartSession`s with
    /// the real decoder and build/extend the real schedule.
    fn deliver_to_supplier(&mut self, lane: usize, chunk: &[u8]) {
        if !self.suppliers[lane].alive {
            return;
        }
        self.trace
            .record(T_CHUNK, &[self.now, lane as u64, 1, chunk.len() as u64]);
        self.suppliers[lane].dec.feed(chunk);
        loop {
            match self.suppliers[lane].dec.poll() {
                Ok(Some(Message::StartSession { session, plan })) if session == self.session => {
                    self.trace.record(
                        T_START,
                        &[self.now, lane as u64, plan.segments.len() as u64],
                    );
                    self.start_or_append(lane, plan);
                }
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => return,
            }
        }
    }

    /// The supplier half of `StartSession` handling, mirroring the live
    /// node: first plan builds the schedule and starts pacing; later
    /// (explicit replan) plans append to the running schedule.
    fn start_or_append(&mut self, lane: usize, plan: SessionPlan) {
        if self.suppliers[lane].done {
            // EndSession already left: the requester's leftover path
            // re-replans this share (the live node's closed connection).
            return;
        }
        if let Some(sched) = self.suppliers[lane].sched.as_mut() {
            sched.append(plan.segments.iter().copied());
            return;
        }
        let spp = u64::from(self.suppliers[lane].class.slots_per_segment());
        let Ok(sched) = SupplierSchedule::new(plan, spp) else {
            // Malformed plan — our own policy never emits one; dropping
            // it stalls the lane, which the sweep would flag.
            return;
        };
        self.suppliers[lane].start_ms = self.now;
        let first = sched.next_deadline_ms(self.now);
        self.suppliers[lane].sched = Some(sched);
        self.push(first, Event::SupplierTick { lane });
    }

    /// A scheduled death: the dying supplier's next frame is cut at an
    /// arbitrary byte boundary (the truncated prefix still arrives,
    /// stressing the decoder), then the close lands on the same FIFO.
    fn die(&mut self, lane: usize) {
        if !self.suppliers[lane].alive {
            return;
        }
        self.suppliers[lane].alive = false;
        self.deaths += 1;
        self.trace.record(T_DIE, &[self.now, lane as u64]);
        let cap = self.file.info().segment_count();
        let mut partial = None;
        if !self.suppliers[lane].done {
            if let Some(sched) = self.suppliers[lane].sched.as_mut() {
                partial = sched.next_unsent(cap);
            }
        }
        if let Some(seg) = partial {
            let bytes = wire_bytes(&Message::SegmentData {
                session: self.session,
                index: seg,
                payload: self.file.segment(seg).into_payload(),
            });
            let cut = self.rng.gen_range(0..bytes.len());
            if cut > 0 {
                self.send_stream(lane, Dir::ToRequester, &bytes[..cut]);
            }
        }
        let at = self.links[lane][Dir::ToRequester as usize].send(self.now, 0, &mut self.rng);
        self.push(at + 1, Event::Closed { lane });
    }

    /// The requester observes a lane's connection close.
    fn closed(&mut self, lane: usize) {
        if !self.lane_open[lane] {
            return;
        }
        self.trace.record(T_CLOSED, &[self.now, lane as u64]);
        self.lane_open[lane] = false;
        let step = self.driver.on_failure(lane);
        self.apply(step);
    }

    /// Executes a [`DriverStep`], shipping replanned shares back over
    /// the wire exactly as the reactor does.
    fn apply(&mut self, step: DriverStep) {
        match step {
            DriverStep::Continue => {}
            DriverStep::Replanned(plans) => {
                self.replans += plans.len() as u64;
                for (lane, plan) in plans {
                    self.trace.record(
                        T_REPLAN,
                        &[self.now, lane as u64, plan.segments.len() as u64],
                    );
                    let bytes = wire_bytes(&Message::StartSession {
                        session: self.session,
                        plan,
                    });
                    self.send_stream(lane, Dir::ToSupplier, &bytes);
                }
            }
            DriverStep::Complete => self.outcome = Some(RawOutcome::Complete),
            DriverStep::Failed(e) => self.outcome = Some(RawOutcome::Failed(e)),
            _ => unreachable!("non-exhaustive DriverStep grew a variant"),
        }
    }
}
