//! In-memory link model with TCP-like FIFO delivery.
//!
//! A [`Link`] carries one direction of one supplier⇆requester pair. It
//! models latency, per-chunk jitter and serialization bandwidth, but —
//! like the TCP connections the real node uses — it never reorders or
//! drops bytes within the stream: each chunk's arrival is clamped to be
//! no earlier than the previous chunk's. Adversity *between* lanes
//! (cross-lane reordering, a crawling peer) emerges from giving lanes
//! different specs; adversity *within* a lane comes from how the world
//! fragments the byte stream into chunks, not from the link.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::LinkSpec;

/// One direction of one lane's connection.
#[derive(Debug)]
pub struct Link {
    spec: LinkSpec,
    /// The FIFO clamp: no chunk may arrive before this instant.
    next_free_ms: u64,
}

impl Link {
    /// A quiet link with the given characteristics.
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            next_free_ms: 0,
        }
    }

    /// The link's fixed characteristics.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Schedules one chunk sent at `now`, returning its arrival time.
    /// Arrivals are monotone per link: `max(prev_arrival, now + latency
    /// + jitter) + ⌈len / bandwidth⌉`.
    pub fn send(&mut self, now_ms: u64, len: usize, rng: &mut SmallRng) -> u64 {
        let jitter = if self.spec.jitter_ms == 0 {
            0
        } else {
            rng.gen_range(0..=self.spec.jitter_ms)
        };
        let tx = (len as u64).div_ceil(self.spec.bytes_per_ms.max(1));
        let arrival = (now_ms + self.spec.latency_ms + jitter).max(self.next_free_ms) + tx;
        self.next_free_ms = arrival;
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_fifo_even_under_jitter() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut link = Link::new(LinkSpec {
            latency_ms: 5,
            jitter_ms: 50,
            bytes_per_ms: 8,
        });
        let mut prev = 0;
        for i in 0..200 {
            let at = link.send(i, 16, &mut rng);
            assert!(at >= prev, "chunk {i} would overtake its predecessor");
            prev = at;
        }
    }

    #[test]
    fn bandwidth_serializes_back_to_back_chunks() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut link = Link::new(LinkSpec {
            latency_ms: 0,
            jitter_ms: 0,
            bytes_per_ms: 1,
        });
        let first = link.send(0, 10, &mut rng);
        let second = link.send(0, 10, &mut rng);
        assert_eq!(first, 10, "10 bytes at 1 B/ms");
        assert_eq!(second, 20, "second chunk queues behind the first");
    }

    #[test]
    fn latency_delays_the_first_byte() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut link = Link::new(LinkSpec {
            latency_ms: 30,
            jitter_ms: 0,
            bytes_per_ms: 100,
        });
        assert_eq!(link.send(5, 100, &mut rng), 36);
    }
}
