//! The seed sweep: a thousand-plus adversarial schedules through the
//! real stack, each run twice to witness bit-for-bit determinism.
//!
//! Every `(seed, scenario)` pair derives a complete run — supplier mix,
//! link models, fragmentation, deaths — and must end in byte-exact
//! reassembly or a structured failure. Any violation panics with a
//! one-line `SIMNET_SEED=…` repro; setting that variable re-runs just
//! the offending seed across all scenarios.

use p2ps_proto::SessionEvent;
use p2ps_simnet::{repro_hint, run, ScenarioKind, SimOutcome};

/// Seeds per scenario in the tier-1 sweep (5 scenarios ⇒ 1,280
/// schedules, each executed twice for the determinism check).
const TIER1_SEEDS: u64 = 256;

/// Seeds per scenario in the extended (`--ignored`, CI nightly-style)
/// sweep: 5 × 2,500 = 12,500 schedules.
const EXTENDED_SEEDS: u64 = 2_500;

/// Runs one `(seed, scenario)` twice, asserts determinism and an
/// acceptable outcome, and returns the report of the first run.
fn check_one(seed: u64, scenario: ScenarioKind) -> p2ps_simnet::SimReport {
    let first = run(seed, scenario);
    let second = run(seed, scenario);
    assert_eq!(
        first.trace_hash,
        second.trace_hash,
        "nondeterministic trace for seed {seed} ({})\n{}",
        scenario.name(),
        repro_hint(seed, scenario)
    );
    assert_eq!(
        first,
        second,
        "nondeterministic report for seed {seed} ({})\n{}",
        scenario.name(),
        repro_hint(seed, scenario)
    );
    assert!(
        first.outcome.is_acceptable(),
        "seed {seed} ({}) ended badly: {:?}\n{}",
        scenario.name(),
        first.outcome,
        repro_hint(seed, scenario)
    );
    // The flight recorder rides the determinism contract: every run
    // opens with an admission request, and a completed run's timeline
    // must close with the `Completed` event.
    assert!(
        !first.recorder.is_empty(),
        "seed {seed} ({}) recorded no flight-recorder events\n{}",
        scenario.name(),
        repro_hint(seed, scenario)
    );
    if matches!(first.outcome, SimOutcome::Completed { .. }) {
        let last = first.recorder.last().expect("checked non-empty");
        assert_eq!(
            last.code,
            SessionEvent::Completed { received: 0 }.code(),
            "seed {seed} ({}) completed without a terminal Completed event\n{}",
            scenario.name(),
            repro_hint(seed, scenario)
        );
    }
    first
}

/// Sweeps `seeds` per scenario and sanity-checks the aggregate: the
/// adversity knobs must actually bite (deaths, replans, structured
/// losses) and the happy paths must actually complete.
fn sweep(seeds: u64) {
    let mut completed = 0u64;
    let mut lost = 0u64;
    let mut rejected = 0u64;
    let mut replans = 0u64;
    let mut deaths = 0u64;
    let mut runs = 0u64;
    for scenario in ScenarioKind::ALL {
        let mut scenario_completed = 0u64;
        for seed in 0..seeds {
            let report = check_one(seed, scenario);
            runs += 1;
            replans += report.replans;
            deaths += report.deaths;
            match report.outcome {
                SimOutcome::Completed { .. } => {
                    completed += 1;
                    scenario_completed += 1;
                }
                SimOutcome::SuppliersLost { .. } | SimOutcome::Incomplete { .. } => lost += 1,
                SimOutcome::Rejected { .. } => rejected += 1,
                _ => unreachable!("check_one rejects unacceptable outcomes"),
            }
        }
        assert!(
            scenario_completed > 0,
            "no {} seed completed in {seeds} runs",
            scenario.name()
        );
    }
    assert_eq!(runs, seeds * ScenarioKind::ALL.len() as u64);
    assert!(deaths > 0, "churn/loss scenarios must kill suppliers");
    assert!(replans > 0, "supplier deaths must trigger live replans");
    assert!(
        lost > 0,
        "killing every supplier must surface SuppliersLost"
    );
    assert!(
        rejected > 0,
        "the admission scenario must reject some rounds"
    );
    assert!(completed > lost, "most runs should still complete");
}

/// `SIMNET_SEED=<n>` pins the sweep to one seed across all scenarios —
/// the repro path printed by every failure message.
fn pinned_seed() -> Option<u64> {
    let raw = std::env::var("SIMNET_SEED").ok()?;
    Some(
        raw.trim()
            .parse()
            .expect("SIMNET_SEED must be an unsigned integer"),
    )
}

#[test]
fn tier1_seed_sweep() {
    if let Some(seed) = pinned_seed() {
        for scenario in ScenarioKind::ALL {
            let report = check_one(seed, scenario);
            // Visible under --nocapture when debugging a pinned seed.
            println!(
                "SIMNET_SEED={seed} {}: {:?} trace={:016x} events={} replans={} deaths={}",
                scenario.name(),
                report.outcome,
                report.trace_hash,
                report.events,
                report.replans,
                report.deaths
            );
        }
        return;
    }
    sweep(TIER1_SEEDS);
}

#[test]
#[ignore = "extended 10,000-seed sweep; run with --ignored (CI nightly gate)"]
fn extended_seed_sweep() {
    if let Some(seed) = pinned_seed() {
        for scenario in ScenarioKind::ALL {
            check_one(seed, scenario);
        }
        return;
    }
    sweep(EXTENDED_SEEDS);
}
