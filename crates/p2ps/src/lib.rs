//! **p2ps** — a full reproduction of *On Peer-to-Peer Media Streaming*
//! (D. Xu, M. Hefeeda, S. Hambrusch, B. Bhargava — ICDCS 2002).
//!
//! The paper contributes two algorithms for streaming a stored CBR media
//! file through a self-growing peer-to-peer system:
//!
//! * **`OTSp2p`** — assigns media segments to the multiple supplying peers
//!   of one session so that the buffering delay is minimal (`n·δt` for `n`
//!   suppliers, Theorem 1).
//! * **`DACp2p`** — a fully distributed, *differentiated* admission
//!   control protocol that favors requesting peers pledging more
//!   out-bound bandwidth, amplifying the system's total streaming
//!   capacity as fast as possible while still benefiting every class.
//!
//! This facade re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `p2ps-core` | model types, `OTSp2p`, `DACp2p`, baselines |
//! | [`policy`] | `p2ps-policy` | pluggable `SelectionPolicy` trait: `OTSp2p` + BitTorrent-style baselines |
//! | [`media`] | `p2ps-media` | CBR segmentation, stores, playback buffer |
//! | [`lookup`] | `p2ps-lookup` | centralized directory and Chord ring |
//! | [`proto`] | `p2ps-proto` | wire messages, binary codec, sans-io frame decoder/encoder |
//! | [`net`] | `p2ps-net` | Linux epoll reactor + multi-reactor `ReactorPool`: nonblocking sockets, buffered writes, timer wheel, key-sharded pools |
//! | [`node`] | `p2ps-node` | runnable TCP peer node (reactor-hosted directory, supplier *and* requester paths), swarm harness |
//! | [`sim`] | `p2ps-sim` | the paper's 50,100-peer evaluation as a deterministic simulator, plus the policy × VoD-scenario matrix |
//! | [`metrics`] | `p2ps-metrics` | series, tables, plots for the experiment harness |
//! | [`monitor`] | `p2ps-monitor` | lock-free introspection tree, Prometheus exposition, status endpoint |
//!
//! # Quickstart
//!
//! Compute the paper's Figure-1 optimal assignment:
//!
//! ```
//! use p2ps::core::assignment::otsp2p;
//! use p2ps::core::PeerClass;
//!
//! let classes = [2u8, 3, 4, 4]
//!     .into_iter()
//!     .map(PeerClass::new)
//!     .collect::<Result<Vec<_>, _>>()?;
//! let assignment = otsp2p(&classes)?;
//! assert_eq!(assignment.buffering_delay_slots(), 4); // Theorem 1: n·δt
//! # Ok::<(), p2ps::core::Error>(())
//! ```
//!
//! Run a scaled-down version of the paper's capacity experiment:
//!
//! ```
//! use p2ps::core::admission::Protocol;
//! use p2ps::sim::{ArrivalPattern, SimConfig, Simulation};
//!
//! let config = SimConfig::builder()
//!     .requesting_peers(300)
//!     .seed_suppliers(5)
//!     .arrival_window_hours(8)
//!     .duration_hours(16)
//!     .pattern(ArrivalPattern::Constant)
//!     .protocol(Protocol::Dac)
//!     .build()?;
//! let report = Simulation::new(config, 7).run();
//! println!("final capacity: {:.1}", report.final_capacity());
//! # Ok::<(), p2ps::sim::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use p2ps_core as core;
pub use p2ps_lookup as lookup;
pub use p2ps_media as media;
pub use p2ps_metrics as metrics;
pub use p2ps_monitor as monitor;
pub use p2ps_net as net;
pub use p2ps_node as node;
pub use p2ps_policy as policy;
pub use p2ps_proto as proto;
pub use p2ps_sim as sim;

/// The most commonly used items in one import.
///
/// # Examples
///
/// ```
/// use p2ps::prelude::*;
///
/// let classes = vec![PeerClass::new(2)?, PeerClass::new(2)?];
/// assert_eq!(otsp2p(&classes)?.buffering_delay_slots(), 2);
/// # Ok::<(), p2ps::core::Error>(())
/// ```
pub mod prelude {
    pub use p2ps_core::admission::{
        AdmissionVector, BackoffPolicy, Protocol, RequesterState, SupplierConfig, SupplierState,
    };
    pub use p2ps_core::assignment::{edf, otsp2p, Assignment, SegmentDuration};
    pub use p2ps_core::{Bandwidth, CapacityTracker, PeerClass, PeerId};
    pub use p2ps_media::{MediaFile, MediaInfo, PlaybackBuffer};
    pub use p2ps_node::{DirectoryServer, NodeConfig, NodeReactor, PeerNode, PendingStream, Swarm};
    pub use p2ps_policy::{
        Otsp2p, RandomBaseline, RarestFirst, SelectionPolicy, SequentialWindow, SessionContext,
        SharedPolicy,
    };
    pub use p2ps_sim::{
        ArrivalPattern, CellMetric, ScenarioMatrix, SimConfig, SimReport, Simulation, VodScenario,
    };
}
