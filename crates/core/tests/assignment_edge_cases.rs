//! Targeted edge cases for the assignment algorithms beyond the
//! property-based suite.

use p2ps_core::assignment::{
    contiguous, edf, otsp2p, round_robin, schedule, session_period, Assignment, SegmentDuration,
};
use p2ps_core::{Error, PeerClass};

fn classes_of(raw: &[u8]) -> Vec<PeerClass> {
    raw.iter().map(|&k| PeerClass::new(k).unwrap()).collect()
}

#[test]
fn single_supplier_of_every_strategy() {
    let classes = classes_of(&[1]);
    for a in [
        otsp2p(&classes).unwrap(),
        edf(&classes).unwrap(),
        contiguous(&classes).unwrap(),
        round_robin(&classes).unwrap(),
    ] {
        assert_eq!(a.period(), 1);
        assert_eq!(a.supplier_count(), 1);
        assert_eq!(a.segments_of(0), &[0]);
        assert_eq!(a.buffering_delay_slots(), 1);
    }
}

#[test]
fn maximal_class_spread_is_supported() {
    // One supplier per class 2..=16 plus a final class-16 to close the sum:
    // 1/2 + 1/4 + … + 1/2^15 + 1/2^15 = 1.
    let mut raw: Vec<u8> = (2..=16).collect();
    raw.push(16);
    let classes = classes_of(&raw);
    assert_eq!(session_period(&classes).unwrap(), 1 << 15);
    let a = edf(&classes).unwrap();
    assert_eq!(a.supplier_count(), 16);
    assert_eq!(
        a.buffering_delay_slots(),
        16,
        "Theorem 1 at the maximum supported spread"
    );
    // The literal pseudo-code still produces a *valid* schedule here,
    // just not the optimal one.
    let literal = otsp2p(&classes).unwrap();
    assert!(literal.buffering_delay_slots() >= 16);
}

#[test]
fn sixty_four_uniform_suppliers() {
    // 64 class-7 suppliers (1/64 each): the widest uniform session.
    let classes = classes_of(&[7; 64]);
    let a = otsp2p(&classes).unwrap();
    assert_eq!(a.period(), 64);
    assert_eq!(a.buffering_delay_slots(), 64);
    for (i, _, segs) in a.iter() {
        assert_eq!(segs.len(), 1, "supplier {i} quota");
    }
}

#[test]
fn supplier_of_segment_is_total_over_many_periods() {
    let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
    for seg in 0..1_000u64 {
        let slot = a.supplier_of_segment(seg);
        assert!(a.segments_of(slot).contains(&((seg % 8) as u32)));
    }
}

#[test]
fn schedule_total_bytes_parity() {
    // Over whole periods every supplier transmits exactly its share.
    let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
    let periods = 5u64;
    let schedule = schedule::TransmissionSchedule::new(&a, a.period() as u64 * periods);
    for (slot, class, segs) in a.iter() {
        let count = schedule.iter().filter(|e| e.supplier == slot).count() as u64;
        assert_eq!(count, segs.len() as u64 * periods, "{class}");
    }
}

#[test]
fn from_parts_preserves_caller_order() {
    // from_parts (unlike the algorithms) must not reorder suppliers.
    let classes = classes_of(&[3, 2, 3]);
    let a = Assignment::from_parts(classes.clone(), vec![vec![3], vec![0, 2], vec![1]]).unwrap();
    assert_eq!(a.classes(), classes.as_slice());
    assert_eq!(a.input_index(0), 0);
    assert_eq!(a.input_index(2), 2);
}

#[test]
fn error_cases_are_precise() {
    assert_eq!(session_period(&[]).unwrap_err(), Error::NoSuppliers);
    let short = classes_of(&[3]);
    match session_period(&short).unwrap_err() {
        Error::BandwidthMismatch { offered } => {
            assert_eq!(offered, PeerClass::new(3).unwrap().bandwidth());
        }
        other => panic!("wrong error {other:?}"),
    }
    // Overflowing aggregation (many class-1 suppliers) errors out instead
    // of wrapping.
    let too_many = classes_of(&[1; 9]);
    assert!(matches!(
        session_period(&too_many),
        Err(Error::BandwidthMismatch { .. })
    ));
}

#[test]
fn buffering_delay_scales_with_segment_duration() {
    let a = otsp2p(&classes_of(&[2, 2])).unwrap();
    assert_eq!(
        a.buffering_delay(SegmentDuration::from_millis(10)),
        std::time::Duration::from_millis(20)
    );
    assert_eq!(
        a.buffering_delay(SegmentDuration::from_secs(3)),
        std::time::Duration::from_secs(6)
    );
}

#[test]
fn strategies_agree_on_two_suppliers() {
    // With two equal suppliers there are only two assignments of each
    // period; all strategies are optimal.
    let classes = classes_of(&[2, 2]);
    for a in [
        otsp2p(&classes).unwrap(),
        edf(&classes).unwrap(),
        contiguous(&classes).unwrap(),
        round_robin(&classes).unwrap(),
    ] {
        assert_eq!(a.buffering_delay_slots(), 2);
    }
}

#[test]
fn display_roundtrips_are_informative() {
    let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
    let text = format!("{a}");
    assert!(text.contains("4 suppliers"));
    assert!(text.contains("period 8"));
    assert!(text.contains("delay 4·δt"));
}
