//! Property-based tests of the `DACp2p` admission machinery: the vector
//! algebra, the greedy covering rule, and model-based state-machine
//! checks on arbitrary operation sequences.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use p2ps_core::admission::{
    greedy_take, AdmissionVector, BackoffPolicy, Protocol, RequestDecision, SupplierConfig,
    SupplierState,
};
use p2ps_core::{Bandwidth, PeerClass};

fn class(k: u8) -> PeerClass {
    PeerClass::new(k).unwrap()
}

fn class_strategy(max: u8) -> impl Strategy<Value = PeerClass> {
    (1u8..=max).prop_map(class)
}

proptest! {
    /// Initialization (§4.1(a)): a class-k supplier favors exactly the
    /// classes 1..=k, and probabilities halve per class below.
    #[test]
    fn initial_vector_structure(k in 1u8..=8, num in 1u8..=8) {
        prop_assume!(k <= num);
        let v = AdmissionVector::initial(class(k), num).unwrap();
        for j in 1..=num {
            let p = v.probability(class(j));
            if j <= k {
                prop_assert_eq!(p, 1.0);
            } else {
                prop_assert_eq!(p, f64::powi(2.0, -((j - k) as i32)));
            }
        }
        prop_assert_eq!(v.lowest_favored(), class(k));
    }

    /// Relaxation is monotone: no probability ever decreases, and after
    /// enough steps the vector is all ones.
    #[test]
    fn relaxation_is_monotone_and_convergent(k in 1u8..=8, num in 1u8..=8, steps in 0u64..12) {
        prop_assume!(k <= num);
        let mut v = AdmissionVector::initial(class(k), num).unwrap();
        let mut prev: Vec<f64> = v.iter().map(|(_, p)| p).collect();
        for _ in 0..steps {
            v.relax();
            let now: Vec<f64> = v.iter().map(|(_, p)| p).collect();
            for (a, b) in prev.iter().zip(&now) {
                prop_assert!(b >= a, "relaxation decreased a probability");
            }
            prev = now;
        }
        v.relax_times(64);
        prop_assert!(v.is_fully_relaxed());
    }

    /// Tightening to class k̂ yields exactly the initial vector of a
    /// class-k̂ supplier — the paper's reset semantics.
    #[test]
    fn tighten_equals_reinitialization(anchor in 1u8..=8, num in 1u8..=8, pre_relax in 0u64..8) {
        prop_assume!(anchor <= num);
        let mut v = AdmissionVector::all_ones(num).unwrap();
        v.relax_times(pre_relax); // no-op on all-ones; just exercise the path
        v.tighten(class(anchor));
        let fresh = AdmissionVector::initial(class(anchor), num).unwrap();
        prop_assert_eq!(v, fresh);
    }

    /// Class 1 is favored in every reachable vector state.
    #[test]
    fn class_one_is_always_favored(
        k in 1u8..=8,
        num in 1u8..=8,
        ops in prop::collection::vec((0u8..3, 1u8..=8), 0..32),
    ) {
        prop_assume!(k <= num);
        let mut v = AdmissionVector::initial(class(k), num).unwrap();
        for (op, arg) in ops {
            match op {
                0 => v.relax(),
                1 => v.relax_times(arg as u64),
                _ => {
                    let anchor = 1 + (arg - 1) % num;
                    v.tighten(class(anchor));
                }
            }
            prop_assert!(v.favors(class(1)));
        }
    }

    /// The probabilistic test's empirical frequency tracks the stored
    /// probability (law of large numbers at test scale).
    #[test]
    fn decide_frequency_matches_probability(e in 0u8..5, seed in 0u64..1_000) {
        let mut v = AdmissionVector::all_ones(4).unwrap();
        // Build a vector whose class-4 exponent is e.
        for _ in 0..e {
            // halve class 4 by tightening around class 3 repeatedly is not
            // expressible directly; construct via initial of class (4-e).
        }
        let anchor = 4u8.saturating_sub(e).max(1);
        v.tighten(class(anchor));
        let p_expected = v.probability(class(4));
        let mut rng = SmallRng::seed_from_u64(seed);
        let trials = 4_000u32;
        let mut hits = 0u32;
        for _ in 0..trials {
            if v.decide(class(4), &mut rng) {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        prop_assert!(
            (freq - p_expected).abs() < 0.05,
            "freq {freq} vs expected {p_expected}"
        );
    }

    /// `greedy_take` never overshoots the target, picks indices in order,
    /// and achieves the target exactly whenever offers are descending
    /// powers of two and some subset reaches it.
    #[test]
    fn greedy_take_invariants(classes in prop::collection::vec(class_strategy(8), 0..12), target_class in 1u8..=4) {
        let mut sorted = classes.clone();
        sorted.sort();
        let offers: Vec<Bandwidth> = sorted.iter().map(|c| c.bandwidth()).collect();
        let target = class(target_class).bandwidth();
        let (taken, total) = greedy_take(&offers, target);
        prop_assert!(total <= target);
        prop_assert!(taken.windows(2).all(|w| w[0] < w[1]));
        let sum_taken: Bandwidth = taken.iter().map(|&i| offers[i]).sum();
        prop_assert_eq!(sum_taken, total);
        // For descending powers of two, greedy reaches the target exactly
        // whenever the offers that *fit* (≤ target) sum to at least the
        // target; oversized offers can never contribute.
        let usable_total: u64 = offers
            .iter()
            .filter(|b| **b <= target)
            .map(|b| b.raw() as u64)
            .sum();
        if usable_total >= target.raw() as u64 {
            prop_assert_eq!(total, target, "greedy must cover a coverable target");
        }
    }

    /// Backoff delays are monotone in the rejection count and exactly
    /// geometric until saturation.
    #[test]
    fn backoff_is_geometric(base in 1u64..10_000, factor in 1u32..5, i in 1u32..12) {
        let b = BackoffPolicy::new(base, factor);
        let d_i = b.delay_after(i);
        let d_next = b.delay_after(i + 1);
        prop_assert!(d_next >= d_i);
        if d_next < u64::MAX {
            prop_assert_eq!(d_next, d_i.saturating_mul(factor as u64));
        }
    }

    /// Model-based supplier state machine: arbitrary interleavings of
    /// requests, reminders, sessions and time jumps never panic, never
    /// grant while busy, and keep the favored-class invariant.
    #[test]
    fn supplier_state_machine_is_sound(
        own in 1u8..=4,
        timeout in prop::option::of(1u64..5_000),
        ops in prop::collection::vec((0u8..4, 1u8..=4, 0u64..10_000), 1..64),
        seed in 0u64..1_000,
    ) {
        let cfg = SupplierConfig::new(4, timeout.unwrap_or(0), Protocol::Dac).unwrap();
        let mut s = SupplierState::new(class(own), cfg, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut now = 0u64;
        for (op, k, dt) in ops {
            now += dt;
            match op {
                0 => {
                    let d = s.handle_request(now, class(k), &mut rng);
                    let busy_reply = matches!(d, RequestDecision::Busy { .. });
                    prop_assert_eq!(busy_reply, s.is_busy());
                }
                1 => s.leave_reminder(class(k)),
                2 => {
                    if !s.is_busy() {
                        s.begin_session(now);
                    }
                    prop_assert!(s.is_busy());
                }
                _ => {
                    if s.is_busy() {
                        s.end_session(now);
                    }
                    prop_assert!(!s.is_busy());
                }
            }
            prop_assert!(s.vector_at(now).favors(class(1)));
        }
    }

    /// NDAC suppliers grant every idle request regardless of history.
    #[test]
    fn ndac_always_grants_when_idle(
        ops in prop::collection::vec((1u8..=4, 0u64..1_000), 1..32),
        seed in 0u64..100,
    ) {
        let cfg = SupplierConfig::new(4, 60, Protocol::Ndac).unwrap();
        let mut s = SupplierState::new(class(2), cfg, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut now = 0;
        for (k, dt) in ops {
            now += dt;
            prop_assert_eq!(
                s.handle_request(now, class(k), &mut rng),
                RequestDecision::Granted
            );
        }
    }
}

#[test]
fn lazy_relaxation_equals_eager_relaxation() {
    // The simulator relies on lazy catch-up being observationally
    // equivalent to waking on every T_out: compare against an explicit
    // eager loop over many checkpoints.
    let timeout = 97u64; // deliberately not a divisor of the checkpoints
    let cfg = SupplierConfig::new(6, timeout, Protocol::Dac).unwrap();
    let mut lazy = SupplierState::new(class(1), cfg, 0).unwrap();

    let mut eager_vector = AdmissionVector::initial(class(1), 6).unwrap();
    let mut eager_elapsed = 0u64;
    for checkpoint in (0..2_000u64).step_by(13) {
        while eager_elapsed + timeout <= checkpoint {
            eager_vector.relax();
            eager_elapsed += timeout;
        }
        assert_eq!(
            lazy.vector_at(checkpoint),
            &eager_vector,
            "diverged at t={checkpoint}"
        );
    }
}
