//! Core algorithms from *On Peer-to-Peer Media Streaming*
//! (D. Xu, M. Hefeeda, S. Hambrusch, B. Bhargava — ICDCS 2002).
//!
//! The paper models a peer-to-peer system that streams a stored
//! constant-bit-rate media file. A **requesting peer** receives the stream
//! at the full playback rate `R0`; a **supplying peer** contributes an
//! out-bound bandwidth of `R0 / 2^(k-1)` where `k` is the peer's *class*
//! (class 1 is the highest). Because a single supplier may offer less than
//! `R0`, one streaming session aggregates several suppliers whose offers sum
//! to exactly `R0`. After a session finishes, the requesting peer becomes a
//! supplying peer, so the system's capacity grows over time.
//!
//! This crate implements the paper's two contributions plus the
//! model-level types they need:
//!
//! * [`assignment`] — the `OTSp2p` **optimal media data assignment**
//!   (paper §3, Theorem 1) together with baseline assignments and an
//!   exhaustive optimality checker.
//! * [`admission`] — the `DACp2p` **distributed differentiated admission
//!   control** protocol (paper §4): per-class admission probability
//!   vectors, relax/tighten dynamics, the *reminder* mechanism,
//!   requester-side probing and exponential backoff, and the
//!   non-differentiated `NDACp2p` baseline.
//! * [`PeerClass`], [`Bandwidth`], [`PeerId`] — exact model arithmetic.
//! * [`CapacityTracker`] — the paper's system-capacity definition
//!   `C(t) = Σ out-bound bandwidth / R0`.
//!
//! # Quickstart
//!
//! ```
//! use p2ps_core::assignment::{otsp2p, SegmentDuration};
//! use p2ps_core::PeerClass;
//!
//! // The Figure-1 session: suppliers of classes 2, 3, 4 and 4 together
//! // offer R0/2 + R0/4 + R0/8 + R0/8 = R0.
//! let classes = [
//!     PeerClass::new(2)?,
//!     PeerClass::new(3)?,
//!     PeerClass::new(4)?,
//!     PeerClass::new(4)?,
//! ];
//! let assignment = otsp2p(&classes)?;
//! // Theorem 1: minimum buffering delay is n·δt for n suppliers.
//! assert_eq!(assignment.buffering_delay_slots(), 4);
//! let dt = SegmentDuration::from_millis(1_000);
//! assert_eq!(assignment.buffering_delay(dt).as_millis(), 4_000);
//! # Ok::<(), p2ps_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod assignment;
mod capacity;
mod error;
mod types;

pub use capacity::CapacityTracker;
pub use error::Error;
pub use types::{Bandwidth, PeerClass, PeerId};

/// Convenient alias for results with this crate's [`Error`].
pub type Result<T> = std::result::Result<T, Error>;
