//! Requester-side `DACp2p` logic (paper §4.2).

use serde::{Deserialize, Serialize};

use crate::{Bandwidth, PeerClass};

use super::RequestDecision;

/// The requesting peer's retry backoff: after the `i`-th rejection the peer
/// waits `T_bkf · E_bkf^(i-1)` before asking again (paper §4.2).
///
/// # Examples
///
/// ```
/// use p2ps_core::admission::BackoffPolicy;
///
/// // The paper's defaults: T_bkf = 10 min (600 s), E_bkf = 2.
/// let b = BackoffPolicy::new(600, 2);
/// assert_eq!(b.delay_after(1), 600);
/// assert_eq!(b.delay_after(2), 1_200);
/// assert_eq!(b.delay_after(4), 4_800);
/// // E_bkf = 1 is the constant-backoff scheme of Figure 9.
/// assert_eq!(BackoffPolicy::new(600, 1).delay_after(10), 600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BackoffPolicy {
    base: u64,
    factor: u32,
}

impl BackoffPolicy {
    /// Creates a policy with base delay `T_bkf` (caller's tick unit) and
    /// exponential factor `E_bkf`.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0` or `factor == 0`.
    pub fn new(base: u64, factor: u32) -> Self {
        assert!(base > 0, "backoff base must be positive");
        assert!(factor > 0, "backoff factor must be at least 1");
        BackoffPolicy { base, factor }
    }

    /// The base delay `T_bkf`.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The exponential factor `E_bkf`.
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Backoff delay after the `i`-th rejection (`i >= 1`), saturating at
    /// `u64::MAX` instead of overflowing.
    ///
    /// # Panics
    ///
    /// Panics if `rejections == 0` — the delay is only defined after at
    /// least one rejection.
    pub fn delay_after(&self, rejections: u32) -> u64 {
        assert!(
            rejections >= 1,
            "delay_after requires at least one rejection"
        );
        let mut delay = self.base;
        for _ in 1..rejections {
            delay = delay.saturating_mul(self.factor as u64);
        }
        delay
    }

    /// Total waiting time accumulated by a peer that suffered `n`
    /// rejections before admission: `Σ_{i=1..n} T_bkf · E_bkf^(i-1)`
    /// (saturating). This is the paper's §5.2(4) formula for deriving the
    /// average waiting time from the average rejection count.
    pub fn total_wait_after(&self, rejections: u32) -> u64 {
        let mut total = 0u64;
        for i in 1..=rejections {
            total = total.saturating_add(self.delay_after(i));
        }
        total
    }
}

/// Admission bookkeeping of one requesting peer.
///
/// Tracks the first request time (for waiting-time statistics) and the
/// rejection count driving the exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequesterState {
    class: PeerClass,
    backoff: BackoffPolicy,
    rejections: u32,
    first_request_at: Option<u64>,
}

impl RequesterState {
    /// Creates the state for a class-`class` requesting peer.
    pub fn new(class: PeerClass, backoff: BackoffPolicy) -> Self {
        RequesterState {
            class,
            backoff,
            rejections: 0,
            first_request_at: None,
        }
    }

    /// The peer's pledged class.
    pub fn class(&self) -> PeerClass {
        self.class
    }

    /// Number of rejections suffered so far.
    pub fn rejections(&self) -> u32 {
        self.rejections
    }

    /// Tick of the peer's first streaming request, once made.
    pub fn first_request_at(&self) -> Option<u64> {
        self.first_request_at
    }

    /// Records that a request was issued at tick `now` (only the first call
    /// pins the waiting-time origin).
    pub fn record_request(&mut self, now: u64) {
        if self.first_request_at.is_none() {
            self.first_request_at = Some(now);
        }
    }

    /// Records a rejection and returns the backoff delay before the next
    /// retry (paper §4.2: `T_bkf · E_bkf^(i-1)` after the `i`-th rejection).
    pub fn record_rejection(&mut self) -> u64 {
        self.rejections += 1;
        self.backoff.delay_after(self.rejections)
    }

    /// Waiting time from first request to an admission at tick `now`.
    ///
    /// # Panics
    ///
    /// Panics if no request was ever recorded or `now` precedes it.
    pub fn waiting_time(&self, now: u64) -> u64 {
        let first = self
            .first_request_at
            .expect("waiting_time before any request");
        now.checked_sub(first)
            .expect("admission cannot precede the first request")
    }
}

/// Greedily takes offers (in the given order) while they fit under
/// `target`, returning the chosen indices and the achieved total.
///
/// With power-of-two offers sorted in descending order this reaches
/// `target` exactly whenever any subset does, which is why both the
/// securing step and the reminder-set (`Ω`) selection of paper §4.2 use it.
///
/// # Examples
///
/// ```
/// use p2ps_core::admission::greedy_take;
/// use p2ps_core::{Bandwidth, PeerClass};
///
/// let offers: Vec<Bandwidth> = [2u8, 3, 3, 4]
///     .into_iter()
///     .map(|k| PeerClass::new(k).unwrap().bandwidth())
///     .collect();
/// let (taken, total) = greedy_take(&offers, Bandwidth::FULL_RATE);
/// assert_eq!(taken, vec![0, 1, 2]); // 1/2 + 1/4 + 1/4 = R0
/// assert!(total.is_full_rate());
/// ```
pub fn greedy_take(offers: &[Bandwidth], target: Bandwidth) -> (Vec<usize>, Bandwidth) {
    let mut taken = Vec::new();
    let mut total = Bandwidth::ZERO;
    for (i, &b) in offers.iter().enumerate() {
        if total + b <= target {
            total += b;
            taken.push(i);
            if total == target {
                break;
            }
        }
    }
    (taken, total)
}

/// Result of one admission attempt (paper §4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// The requester secured exactly `R0`; `granted` are the indices (into
    /// the probed candidate list) of the suppliers to stream from.
    Admitted {
        /// Indices of the granting suppliers used for the session.
        granted: Vec<usize>,
    },
    /// The requester could not reach `R0`.
    Rejected {
        /// Aggregate bandwidth that was secured (and then released).
        secured: Bandwidth,
        /// Indices of the busy candidates that received reminders (`Ω`).
        reminders: Vec<usize>,
    },
}

impl ProbeOutcome {
    /// Whether the attempt was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, ProbeOutcome::Admitted { .. })
    }
}

/// One candidate supplier as seen by a probing requester.
///
/// The discrete-event simulator implements this over its in-memory peer
/// table; the real node implements it with network round-trips. Keeping
/// the trait minimal ensures the *protocol* logic in [`attempt_admission`]
/// is shared verbatim between the two.
pub trait Candidate {
    /// The candidate's advertised class (known from the lookup service).
    fn class(&self) -> PeerClass;

    /// The out-bound bandwidth this candidate offers.
    ///
    /// Defaults to the §2 model value `R0 / 2^(class-1)`. The paper's
    /// *evaluation* operates on a scale where a class-`k` peer offers
    /// `R0 / 2^k` (see DESIGN.md §4.6), so the simulator overrides this;
    /// offers must remain monotone in class and powers of two.
    fn offer(&self) -> Bandwidth {
        self.class().bandwidth()
    }

    /// Contacts the supplier with a streaming request.
    fn request(&mut self, from: PeerClass) -> RequestDecision;

    /// Leaves a reminder with a busy supplier (paper §4.2).
    fn leave_reminder(&mut self, from: PeerClass);

    /// Releases a grant that will not be used (either the offer did not
    /// fit, or the attempt was rejected overall).
    fn release(&mut self);
}

/// Runs one full admission attempt of a class-`class` requesting peer
/// against `M` candidate suppliers (paper §4.2).
///
/// Candidates are contacted from high to low class (stable order for
/// ties). Grants are accumulated greedily while they fit under `R0`;
/// over-sized grants are released immediately. On reaching exactly `R0`
/// the attempt succeeds and remaining candidates are not contacted. On
/// failure every secured grant is released and reminders are left with the
/// busy candidates that (1) currently favor the requester's class and
/// (2) greedily cover the bandwidth shortfall `R0 - secured` (the set `Ω`).
///
/// The caller is responsible for turning an `Admitted` outcome into a
/// session: invoking `begin_session` on each granted supplier and running
/// `OTSp2p` over their classes.
pub fn attempt_admission<C: Candidate>(class: PeerClass, candidates: &mut [C]) -> ProbeOutcome {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&i| candidates[i].class().get());

    let mut secured = Bandwidth::ZERO;
    let mut granted: Vec<usize> = Vec::new();
    let mut busy_favored: Vec<usize> = Vec::new();

    for &i in &order {
        if secured.is_full_rate() {
            break;
        }
        let offer = candidates[i].offer();
        match candidates[i].request(class) {
            RequestDecision::Granted => {
                if secured + offer <= Bandwidth::FULL_RATE {
                    secured += offer;
                    granted.push(i);
                } else {
                    candidates[i].release();
                }
            }
            RequestDecision::Refused => {}
            RequestDecision::Busy { favored } => {
                if favored {
                    busy_favored.push(i);
                }
            }
        }
    }

    if secured.is_full_rate() {
        return ProbeOutcome::Admitted { granted };
    }

    for &i in &granted {
        candidates[i].release();
    }

    // Ω: busy candidates favoring our class, high class first, greedily
    // covering the shortfall.
    let shortfall = Bandwidth::FULL_RATE - secured;
    let offers: Vec<Bandwidth> = busy_favored
        .iter()
        .map(|&i| candidates[i].offer())
        .collect();
    let (chosen, _) = greedy_take(&offers, shortfall);
    let reminders: Vec<usize> = chosen.into_iter().map(|j| busy_favored[j]).collect();
    for &i in &reminders {
        candidates[i].leave_reminder(class);
    }

    ProbeOutcome::Rejected { secured, reminders }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    /// Scripted candidate for protocol tests.
    struct Scripted {
        class: PeerClass,
        decision: RequestDecision,
        requested: bool,
        reminded: bool,
        released: bool,
    }

    impl Scripted {
        fn new(k: u8, decision: RequestDecision) -> Self {
            Scripted {
                class: class(k),
                decision,
                requested: false,
                reminded: false,
                released: false,
            }
        }
    }

    impl Candidate for Scripted {
        fn class(&self) -> PeerClass {
            self.class
        }
        fn request(&mut self, _from: PeerClass) -> RequestDecision {
            self.requested = true;
            self.decision
        }
        fn leave_reminder(&mut self, _from: PeerClass) {
            self.reminded = true;
        }
        fn release(&mut self) {
            self.released = true;
        }
    }

    const GRANT: RequestDecision = RequestDecision::Granted;
    const REFUSE: RequestDecision = RequestDecision::Refused;
    const BUSY_FAV: RequestDecision = RequestDecision::Busy { favored: true };
    const BUSY_UNFAV: RequestDecision = RequestDecision::Busy { favored: false };

    #[test]
    fn backoff_delays() {
        let b = BackoffPolicy::new(600, 2);
        assert_eq!(b.base(), 600);
        assert_eq!(b.factor(), 2);
        assert_eq!(b.delay_after(1), 600);
        assert_eq!(b.delay_after(3), 2_400);
        // saturation instead of overflow
        assert_eq!(BackoffPolicy::new(u64::MAX, 2).delay_after(5), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one rejection")]
    fn delay_after_zero_panics() {
        let _ = BackoffPolicy::new(1, 1).delay_after(0);
    }

    #[test]
    fn total_wait_is_the_geometric_sum() {
        let b = BackoffPolicy::new(600, 2); // paper defaults (seconds)
        assert_eq!(b.total_wait_after(0), 0);
        assert_eq!(b.total_wait_after(1), 600);
        assert_eq!(b.total_wait_after(3), 600 + 1_200 + 2_400);
        // constant backoff: n · T_bkf
        assert_eq!(BackoffPolicy::new(600, 1).total_wait_after(5), 3_000);
        // saturation
        assert_eq!(
            BackoffPolicy::new(u64::MAX, 2).total_wait_after(3),
            u64::MAX
        );
    }

    #[test]
    fn requester_state_tracks_rejections_and_waiting_time() {
        let mut r = RequesterState::new(class(3), BackoffPolicy::new(600, 2));
        assert_eq!(r.class(), class(3));
        assert_eq!(r.rejections(), 0);
        r.record_request(100);
        r.record_request(500); // later retries keep the original origin
        assert_eq!(r.first_request_at(), Some(100));
        assert_eq!(r.record_rejection(), 600);
        assert_eq!(r.record_rejection(), 1_200);
        assert_eq!(r.rejections(), 2);
        assert_eq!(r.waiting_time(1_900), 1_800);
    }

    #[test]
    fn greedy_take_exact_cover() {
        let offers: Vec<Bandwidth> = [2, 3, 3, 4].iter().map(|&k| class(k).bandwidth()).collect();
        let (taken, total) = greedy_take(&offers, Bandwidth::FULL_RATE);
        assert_eq!(taken, vec![0, 1, 2]);
        assert!(total.is_full_rate());
    }

    #[test]
    fn greedy_take_skips_oversized_offers() {
        // target 1/4: the 1/2 offers must be skipped.
        let offers: Vec<Bandwidth> = [2, 2, 3].iter().map(|&k| class(k).bandwidth()).collect();
        let (taken, total) = greedy_take(&offers, class(3).bandwidth());
        assert_eq!(taken, vec![2]);
        assert_eq!(total, class(3).bandwidth());
    }

    #[test]
    fn greedy_take_partial_when_unreachable() {
        let offers = vec![class(3).bandwidth()];
        let (taken, total) = greedy_take(&offers, Bandwidth::FULL_RATE);
        assert_eq!(taken, vec![0]);
        assert_eq!(total, class(3).bandwidth());
    }

    #[test]
    fn admission_succeeds_and_stops_contacting() {
        let mut cands = vec![
            Scripted::new(2, GRANT),
            Scripted::new(2, GRANT),
            Scripted::new(4, GRANT), // should never be contacted
        ];
        let outcome = attempt_admission(class(3), &mut cands);
        assert_eq!(
            outcome,
            ProbeOutcome::Admitted {
                granted: vec![0, 1]
            }
        );
        assert!(!cands[2].requested, "probing must stop once R0 is secured");
    }

    #[test]
    fn candidates_are_contacted_high_class_first() {
        let mut cands = vec![
            Scripted::new(4, GRANT),
            Scripted::new(1, GRANT),
            Scripted::new(3, GRANT),
        ];
        let outcome = attempt_admission(class(4), &mut cands);
        // The class-1 candidate alone covers R0.
        assert_eq!(outcome, ProbeOutcome::Admitted { granted: vec![1] });
        assert!(!cands[0].requested);
        assert!(!cands[2].requested);
    }

    #[test]
    fn grants_accumulate_in_class_order() {
        // Candidates of classes [2,3,2,3]: contact order is both class-2
        // peers first, so R0 is secured from exactly those two and the
        // class-3 candidates are never contacted.
        //
        // Note on the "oversized grant" release branch in
        // `attempt_admission`: because candidates are contacted in
        // descending-bandwidth order, the secured total is always a
        // multiple of the current candidate's offer, so an offer that
        // overshoots R0 cannot actually occur — the branch is defensive.
        let mut cands = vec![
            Scripted::new(2, GRANT),
            Scripted::new(3, GRANT),
            Scripted::new(2, GRANT),
            Scripted::new(3, GRANT),
        ];
        let outcome = attempt_admission(class(1), &mut cands);
        assert_eq!(
            outcome,
            ProbeOutcome::Admitted {
                granted: vec![0, 2]
            }
        );
        assert!(!cands[1].requested);
        assert!(!cands[3].requested);
        assert!(!cands[0].released);
    }

    #[test]
    fn rejection_releases_grants_and_leaves_reminders() {
        let mut cands = vec![
            Scripted::new(2, GRANT),
            Scripted::new(2, BUSY_FAV),
            Scripted::new(3, BUSY_UNFAV),
            Scripted::new(4, REFUSE),
        ];
        let outcome = attempt_admission(class(2), &mut cands);
        match outcome {
            ProbeOutcome::Rejected { secured, reminders } => {
                assert_eq!(secured, class(2).bandwidth());
                // shortfall 1/2 covered by the favored busy class-2 peer
                assert_eq!(reminders, vec![1]);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(
            cands[0].released,
            "secured grant must be released on rejection"
        );
        assert!(cands[1].reminded);
        assert!(
            !cands[2].reminded,
            "unfavored busy candidate gets no reminder"
        );
        assert!(!cands[3].reminded);
    }

    #[test]
    fn reminder_set_covers_shortfall_not_more() {
        // Nothing secured; shortfall R0. Busy favored candidates of classes
        // 2, 2, 2: greedy takes the first two (1/2 + 1/2) and stops.
        let mut cands = vec![
            Scripted::new(2, BUSY_FAV),
            Scripted::new(2, BUSY_FAV),
            Scripted::new(2, BUSY_FAV),
        ];
        let outcome = attempt_admission(class(1), &mut cands);
        match outcome {
            ProbeOutcome::Rejected { reminders, .. } => {
                assert_eq!(reminders, vec![0, 1]);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(!cands[2].reminded);
    }

    #[test]
    fn all_refused_leaves_no_reminders() {
        let mut cands = vec![Scripted::new(1, REFUSE), Scripted::new(2, REFUSE)];
        let outcome = attempt_admission(class(4), &mut cands);
        assert_eq!(
            outcome,
            ProbeOutcome::Rejected {
                secured: Bandwidth::ZERO,
                reminders: vec![]
            }
        );
    }

    #[test]
    fn empty_candidate_list_rejects() {
        let mut cands: Vec<Scripted> = Vec::new();
        let outcome = attempt_admission(class(1), &mut cands);
        assert!(!outcome.is_admitted());
    }
}
