//! Per-class admission probability vectors (paper §4.1).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{PeerClass, Result};

/// A supplying peer's admission probability vector.
///
/// Entry `j` is the probability with which an idle supplier grants a
/// streaming request from a class-`j` requesting peer. All probabilities
/// are exact powers of two, stored as exponents (`P = 2^-e`), so the
/// paper's update rules — doubling on relaxation, halving sequences on
/// initialization and tightening — are exact and reproducible:
///
/// * **Initialization** for a class-`k` supplier: `P[j] = 1.0` for
///   `j <= k` and `P[j] = 2^-(j-k)` for `j > k` (paper §4.1(a)).
/// * **Relaxation** (idle timeout, or a session with no favored-class
///   request): every probability below `1.0` doubles (paper §4.1(b)).
/// * **Tightening** to class `k̂` (a reminder from a favored class-`k̂`
///   requester): the vector is reset as if the supplier were class `k̂`
///   (paper §4.1(c)).
///
/// A class `j` with `P[j] = 1.0` is a *favored class*.
///
/// # Examples
///
/// ```
/// use p2ps_core::admission::AdmissionVector;
/// use p2ps_core::PeerClass;
///
/// // The paper's example: a class-2 supplier with 4 classes starts at
/// // [1.0, 1.0, 0.5, 0.25].
/// let mut v = AdmissionVector::initial(PeerClass::new(2)?, 4)?;
/// assert_eq!(v.probability(PeerClass::new(3)?), 0.5);
/// assert_eq!(v.lowest_favored(), PeerClass::new(2)?);
/// v.relax();
/// assert_eq!(v.probability(PeerClass::new(3)?), 1.0);
/// assert_eq!(v.probability(PeerClass::new(4)?), 0.5);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdmissionVector {
    /// `exps[j-1]` is `e` with `P[j] = 2^-e`.
    exps: Vec<u8>,
}

impl AdmissionVector {
    /// The initial vector of a class-`k` supplier over `num_classes`
    /// classes (paper §4.1(a)).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidClassCount`] if `num_classes` is zero
    /// or exceeds [`PeerClass::MAX`], and [`crate::Error::InvalidClass`] if
    /// `own` is not within `1..=num_classes`.
    pub fn initial(own: PeerClass, num_classes: u8) -> Result<Self> {
        if !(1..=PeerClass::MAX).contains(&num_classes) {
            return Err(crate::Error::InvalidClassCount { value: num_classes });
        }
        if own.get() > num_classes {
            return Err(crate::Error::InvalidClass { value: own.get() });
        }
        let k = own.get();
        let exps = (1..=num_classes).map(|j| j.saturating_sub(k)).collect();
        Ok(AdmissionVector { exps })
    }

    /// A vector with every probability pinned at `1.0` — the `NDACp2p`
    /// baseline (paper §5.1).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidClassCount`] for an invalid class
    /// count.
    pub fn all_ones(num_classes: u8) -> Result<Self> {
        if !(1..=PeerClass::MAX).contains(&num_classes) {
            return Err(crate::Error::InvalidClassCount { value: num_classes });
        }
        Ok(AdmissionVector {
            exps: vec![0; num_classes as usize],
        })
    }

    /// Number of classes the vector covers.
    pub fn num_classes(&self) -> u8 {
        self.exps.len() as u8
    }

    /// The admission probability for a class (`2^-e`).
    ///
    /// # Panics
    ///
    /// Panics if `class` exceeds [`Self::num_classes`].
    pub fn probability(&self, class: PeerClass) -> f64 {
        let e = self.exponent(class);
        // 2^-e, exact for e < 1024 — e is a u8 so always exact.
        f64::powi(2.0, -(e as i32))
    }

    /// The exponent `e` such that the class probability is `2^-e`.
    ///
    /// # Panics
    ///
    /// Panics if `class` exceeds [`Self::num_classes`].
    pub fn exponent(&self, class: PeerClass) -> u8 {
        self.exps[(class.get() - 1) as usize]
    }

    /// Whether `class` is currently favored (probability `1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `class` exceeds [`Self::num_classes`].
    pub fn favors(&self, class: PeerClass) -> bool {
        self.exponent(class) == 0
    }

    /// The lowest (numerically largest) favored class. Class 1 is always
    /// favored, so this always exists.
    pub fn lowest_favored(&self) -> PeerClass {
        let mut lowest = 1u8;
        for (i, &e) in self.exps.iter().enumerate() {
            if e == 0 {
                lowest = i as u8 + 1;
            }
        }
        PeerClass::new(lowest).expect("class 1 always favored")
    }

    /// One relaxation step: every probability below `1.0` doubles
    /// (paper §4.1(b)).
    ///
    /// The paper phrases this as doubling classes below the supplier's own
    /// class; after tightening, classes *above* the anchor can also sit
    /// below `1.0`, and doubling them too is the only reading under which
    /// "the update is performed until every probability is 1.0" holds in
    /// all states. For vectors reachable without such tightening the two
    /// readings coincide.
    pub fn relax(&mut self) {
        for e in &mut self.exps {
            *e = e.saturating_sub(1);
        }
    }

    /// Applies `n` relaxation steps (used for lazy idle-timeout catch-up).
    pub fn relax_times(&mut self, n: u64) {
        let max_e = self.exps.iter().copied().max().unwrap_or(0) as u64;
        let n = n.min(max_e);
        for _ in 0..n {
            self.relax();
        }
    }

    /// Tightens the vector around class `k̂`: `P[j] = 1.0` for `j <= k̂`
    /// and `P[j] = 2^-(j-k̂)` below (paper §4.1(c), reminder handling).
    ///
    /// # Panics
    ///
    /// Panics if `to` exceeds [`Self::num_classes`].
    pub fn tighten(&mut self, to: PeerClass) {
        assert!(
            to.get() <= self.num_classes(),
            "tighten class {to} outside vector of {} classes",
            self.num_classes()
        );
        let k = to.get();
        for (i, e) in self.exps.iter_mut().enumerate() {
            let j = i as u8 + 1;
            *e = j.saturating_sub(k);
        }
    }

    /// Whether every class is favored (fully relaxed vector).
    pub fn is_fully_relaxed(&self) -> bool {
        self.exps.iter().all(|&e| e == 0)
    }

    /// Draws the probabilistic admission test for `class`: `true` with
    /// probability exactly `2^-e` using `e` fair bits from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `class` exceeds [`Self::num_classes`].
    pub fn decide<R: Rng + ?Sized>(&self, class: PeerClass, rng: &mut R) -> bool {
        let e = self.exponent(class);
        if e == 0 {
            return true;
        }
        debug_assert!(e < 64);
        let mask = (1u64 << e) - 1;
        rng.gen::<u64>() & mask == 0
    }

    /// Iterates over `(class, probability)` pairs, highest class first.
    pub fn iter(&self) -> impl Iterator<Item = (PeerClass, f64)> + '_ {
        self.exps.iter().enumerate().map(|(i, &e)| {
            (
                PeerClass::new(i as u8 + 1).expect("valid by construction"),
                f64::powi(2.0, -(e as i32)),
            )
        })
    }
}

impl std::fmt::Display for AdmissionVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, (_, p)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    #[test]
    fn paper_initialization_example() {
        // class-2 supplier, K=4 -> [1.0, 1.0, 0.5, 0.25]
        let v = AdmissionVector::initial(class(2), 4).unwrap();
        let probs: Vec<f64> = v.iter().map(|(_, p)| p).collect();
        assert_eq!(probs, vec![1.0, 1.0, 0.5, 0.25]);
        assert!(v.favors(class(1)));
        assert!(v.favors(class(2)));
        assert!(!v.favors(class(3)));
        assert_eq!(v.lowest_favored(), class(2));
    }

    #[test]
    fn class1_supplier_initially_favors_only_class1() {
        let v = AdmissionVector::initial(class(1), 4).unwrap();
        let probs: Vec<f64> = v.iter().map(|(_, p)| p).collect();
        assert_eq!(probs, vec![1.0, 0.5, 0.25, 0.125]);
        assert_eq!(v.lowest_favored(), class(1));
    }

    #[test]
    fn class4_supplier_favors_everyone() {
        let v = AdmissionVector::initial(class(4), 4).unwrap();
        assert!(v.is_fully_relaxed());
        assert_eq!(v.lowest_favored(), class(4));
    }

    #[test]
    fn initial_rejects_bad_arguments() {
        assert!(AdmissionVector::initial(class(5), 4).is_err());
        assert!(AdmissionVector::initial(class(1), 0).is_err());
        assert!(AdmissionVector::initial(class(1), 17).is_err());
        assert!(AdmissionVector::all_ones(0).is_err());
    }

    #[test]
    fn relax_converges_to_all_ones() {
        let mut v = AdmissionVector::initial(class(1), 4).unwrap();
        v.relax();
        assert_eq!(v.probability(class(2)), 1.0);
        assert_eq!(v.probability(class(4)), 0.25);
        v.relax();
        v.relax();
        assert!(v.is_fully_relaxed());
        v.relax(); // idempotent at the fixed point
        assert!(v.is_fully_relaxed());
    }

    #[test]
    fn relax_times_matches_repeated_relax() {
        let mut a = AdmissionVector::initial(class(1), 8).unwrap();
        let mut b = a.clone();
        a.relax_times(3);
        for _ in 0..3 {
            b.relax();
        }
        assert_eq!(a, b);
        // huge n terminates and fully relaxes
        let mut c = AdmissionVector::initial(class(1), 8).unwrap();
        c.relax_times(u64::MAX);
        assert!(c.is_fully_relaxed());
    }

    #[test]
    fn tighten_resets_around_anchor() {
        let mut v = AdmissionVector::all_ones(4).unwrap();
        v.tighten(class(2));
        let probs: Vec<f64> = v.iter().map(|(_, p)| p).collect();
        assert_eq!(probs, vec![1.0, 1.0, 0.5, 0.25]);
        v.tighten(class(1));
        let probs: Vec<f64> = v.iter().map(|(_, p)| p).collect();
        assert_eq!(probs, vec![1.0, 0.5, 0.25, 0.125]);
    }

    #[test]
    #[should_panic(expected = "outside vector")]
    fn tighten_outside_vector_panics() {
        let mut v = AdmissionVector::all_ones(2).unwrap();
        v.tighten(class(3));
    }

    #[test]
    fn ndac_vector_always_grants() {
        let v = AdmissionVector::all_ones(4).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for k in 1..=4 {
            assert!(v.decide(class(k), &mut rng));
        }
    }

    #[test]
    fn decide_frequency_approximates_probability() {
        let v = AdmissionVector::initial(class(1), 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let trials = 40_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            if v.decide(class(3), &mut rng) {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!(
            (freq - 0.25).abs() < 0.02,
            "frequency {freq} too far from 0.25"
        );
    }

    #[test]
    fn display_shows_probabilities() {
        let v = AdmissionVector::initial(class(2), 4).unwrap();
        assert_eq!(format!("{v}"), "[1, 1, 0.5, 0.25]");
    }

    #[test]
    fn lowest_favored_after_partial_relax() {
        let mut v = AdmissionVector::initial(class(1), 4).unwrap();
        assert_eq!(v.lowest_favored(), class(1));
        v.relax();
        assert_eq!(v.lowest_favored(), class(2));
        v.relax();
        assert_eq!(v.lowest_favored(), class(3));
        v.relax();
        assert_eq!(v.lowest_favored(), class(4));
    }
}
