//! Supplier-side `DACp2p` state machine (paper §4.1).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{PeerClass, Result};

use super::{AdmissionVector, Protocol};

/// Static protocol parameters of a supplying peer.
///
/// # Examples
///
/// ```
/// use p2ps_core::admission::{Protocol, SupplierConfig};
///
/// // The paper's defaults: 4 classes, T_out = 20 min (in seconds here).
/// let cfg = SupplierConfig::new(4, 20 * 60, Protocol::Dac)?;
/// assert_eq!(cfg.num_classes(), 4);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupplierConfig {
    num_classes: u8,
    idle_timeout: u64,
    protocol: Protocol,
    reminders_enabled: bool,
    session_relax_enabled: bool,
}

impl SupplierConfig {
    /// Creates a configuration.
    ///
    /// `idle_timeout` is the paper's `T_out` in the caller's tick unit
    /// (the simulator uses seconds); `0` disables idle relaxation.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidClassCount`] for an invalid class
    /// count.
    pub fn new(num_classes: u8, idle_timeout: u64, protocol: Protocol) -> Result<Self> {
        // Validate eagerly so a bad count fails here, not at first use.
        let _ = AdmissionVector::all_ones(num_classes)?;
        Ok(SupplierConfig {
            num_classes,
            idle_timeout,
            protocol,
            reminders_enabled: true,
            session_relax_enabled: true,
        })
    }

    /// Ablation switch: disables the *reminder* mechanism (paper §4.1(c)
    /// tightening). Reminders are still accepted but ignored at session
    /// end. Enabled by default.
    pub fn reminders(mut self, enabled: bool) -> Self {
        self.reminders_enabled = enabled;
        self
    }

    /// Ablation switch: disables the end-of-session relaxation step
    /// (paper §4.1(c) first case). Idle-timeout relaxation is controlled
    /// separately via `idle_timeout = 0`. Enabled by default.
    pub fn session_relax(mut self, enabled: bool) -> Self {
        self.session_relax_enabled = enabled;
        self
    }

    /// Number of peer classes in the system.
    pub fn num_classes(&self) -> u8 {
        self.num_classes
    }

    /// The idle relaxation timeout `T_out` (0 = disabled).
    pub fn idle_timeout(&self) -> u64 {
        self.idle_timeout
    }

    /// The admission protocol in force.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Whether the reminder mechanism is active (ablation switch).
    pub fn reminders_enabled(&self) -> bool {
        self.reminders_enabled
    }

    /// Whether end-of-session relaxation is active (ablation switch).
    pub fn session_relax_enabled(&self) -> bool {
        self.session_relax_enabled
    }
}

/// Outcome of a streaming request arriving at a supplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestDecision {
    /// The supplier is idle, passed the probabilistic admission test and
    /// grants its out-bound bandwidth to the requester.
    Granted,
    /// The supplier is idle but the probabilistic admission test failed.
    Refused,
    /// The supplier is busy in another streaming session. `favored` tells
    /// the requester whether this supplier currently favors its class —
    /// the precondition for leaving a reminder (paper §4.2).
    Busy {
        /// Whether the requester's class is currently favored.
        favored: bool,
    },
}

impl RequestDecision {
    /// Whether the request was granted.
    pub fn is_granted(self) -> bool {
        matches!(self, RequestDecision::Granted)
    }
}

/// The admission-control state of one supplying peer.
///
/// Drives the paper's §4.1 rules: initialization, idle relaxation after
/// every `T_out`, and the end-of-session update (tighten around the highest
/// reminding class, or relax when no favored-class request was seen).
/// Idle relaxation is applied *lazily*: instead of waking on a timer, the
/// state folds in all pending relaxation steps whenever it is touched,
/// which is observationally equivalent (verified in tests) and keeps the
/// simulator's event queue small.
///
/// # Examples
///
/// ```
/// use p2ps_core::admission::{Protocol, RequestDecision, SupplierConfig, SupplierState};
/// use p2ps_core::PeerClass;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let cfg = SupplierConfig::new(4, 1_200, Protocol::Dac)?;
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut s = SupplierState::new(PeerClass::new(1)?, cfg, 0)?;
/// // A class-1 supplier always grants class-1 requests when idle.
/// let d = s.handle_request(0, PeerClass::new(1)?, &mut rng);
/// assert_eq!(d, RequestDecision::Granted);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplierState {
    class: PeerClass,
    config: SupplierConfig,
    vector: AdmissionVector,
    /// `Some(start)` while participating in a streaming session.
    busy_since: Option<u64>,
    /// Last tick at which idle relaxation was accounted for.
    relax_anchor: u64,
    /// Did a favored-class request arrive while busy in this session?
    saw_favored_request: bool,
    /// Classes of reminders left during the current session.
    reminders: Vec<PeerClass>,
}

impl SupplierState {
    /// Creates the state of a peer that just became a supplier at tick
    /// `now` (paper §4.1(a) initialization; `NDACp2p` pins all ones).
    ///
    /// # Errors
    ///
    /// Returns an error if `class` is outside the configured class count.
    pub fn new(class: PeerClass, config: SupplierConfig, now: u64) -> Result<Self> {
        let vector = match config.protocol {
            Protocol::Dac => AdmissionVector::initial(class, config.num_classes)?,
            Protocol::Ndac => AdmissionVector::all_ones(config.num_classes)?,
        };
        Ok(SupplierState {
            class,
            config,
            vector,
            busy_since: None,
            relax_anchor: now,
            saw_favored_request: false,
            reminders: Vec::new(),
        })
    }

    /// This supplier's own class.
    pub fn class(&self) -> PeerClass {
        self.class
    }

    /// The configuration the supplier was created with.
    pub fn config(&self) -> &SupplierConfig {
        &self.config
    }

    /// Whether the supplier is currently serving a streaming session.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Read access to the admission vector *after* folding in idle
    /// relaxation up to tick `now`.
    pub fn vector_at(&mut self, now: u64) -> &AdmissionVector {
        self.sync(now);
        &self.vector
    }

    /// The lowest favored class at tick `now` (paper Fig. 7's metric).
    pub fn lowest_favored_at(&mut self, now: u64) -> PeerClass {
        self.sync(now);
        self.vector.lowest_favored()
    }

    /// Folds pending idle relaxation steps into the vector (paper §4.1(b)).
    fn sync(&mut self, now: u64) {
        if self.config.protocol == Protocol::Ndac {
            self.relax_anchor = now.max(self.relax_anchor);
            return;
        }
        if self.is_busy() || self.config.idle_timeout == 0 {
            return;
        }
        if now <= self.relax_anchor {
            return;
        }
        let steps = (now - self.relax_anchor) / self.config.idle_timeout;
        if steps > 0 {
            self.vector.relax_times(steps);
            self.relax_anchor += steps * self.config.idle_timeout;
        }
    }

    /// Handles a streaming request from a class-`from` requester at tick
    /// `now` (paper §4.1/§4.2).
    ///
    /// When idle, runs the probabilistic admission test; a grant does *not*
    /// make the supplier busy — the requester confirms with
    /// [`begin_session`](Self::begin_session) only if it secured the full
    /// playback rate. When busy, records whether a favored-class request
    /// arrived (input to the end-of-session rule) and reports `Busy`.
    pub fn handle_request<R: Rng + ?Sized>(
        &mut self,
        now: u64,
        from: PeerClass,
        rng: &mut R,
    ) -> RequestDecision {
        self.sync(now);
        if self.is_busy() {
            let favored = self.vector.favors(from);
            if favored {
                self.saw_favored_request = true;
            }
            return RequestDecision::Busy { favored };
        }
        if self.vector.decide(from, rng) {
            RequestDecision::Granted
        } else {
            RequestDecision::Refused
        }
    }

    /// Records a reminder left by a rejected class-`from` requester
    /// (paper §4.2). Reminders are only meaningful while busy; calls on an
    /// idle supplier are ignored (the requester raced a session end).
    pub fn leave_reminder(&mut self, from: PeerClass) {
        if self.is_busy() {
            self.reminders.push(from);
        }
    }

    /// Marks the supplier busy: its granted bandwidth is now committed to a
    /// streaming session (paper §2(1): at most one session at a time).
    ///
    /// # Panics
    ///
    /// Panics if the supplier is already busy — the admission layer must
    /// never double-book a supplier.
    pub fn begin_session(&mut self, now: u64) {
        self.sync(now);
        assert!(
            self.busy_since.is_none(),
            "supplier double-booked into a second session"
        );
        self.busy_since = Some(now);
        self.saw_favored_request = false;
        self.reminders.clear();
    }

    /// Ends the current session and applies the paper's §4.1(c) update:
    ///
    /// * no favored-class request arrived during the session → relax once;
    /// * reminders were left → tighten around the highest reminding class;
    /// * a favored-class request arrived but left no reminder → unchanged
    ///   (the paper does not specify this case; see DESIGN.md).
    ///
    /// # Panics
    ///
    /// Panics if the supplier is not busy.
    pub fn end_session(&mut self, now: u64) {
        assert!(self.busy_since.is_some(), "end_session on an idle supplier");
        self.busy_since = None;
        if self.config.protocol == Protocol::Dac {
            if !self.saw_favored_request {
                if self.config.session_relax_enabled {
                    self.vector.relax();
                }
            } else if self.config.reminders_enabled {
                if let Some(highest) = self.reminders.iter().min() {
                    self.vector.tighten(*highest);
                }
            }
        }
        self.saw_favored_request = false;
        self.reminders.clear();
        self.relax_anchor = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    fn dac_config(timeout: u64) -> SupplierConfig {
        SupplierConfig::new(4, timeout, Protocol::Dac).unwrap()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn config_accessors() {
        let cfg = dac_config(1200);
        assert_eq!(cfg.num_classes(), 4);
        assert_eq!(cfg.idle_timeout(), 1200);
        assert_eq!(cfg.protocol(), Protocol::Dac);
        assert!(SupplierConfig::new(0, 1, Protocol::Dac).is_err());
    }

    #[test]
    fn grants_favored_class_when_idle() {
        let mut s = SupplierState::new(class(2), dac_config(1200), 0).unwrap();
        let mut r = rng();
        assert_eq!(
            s.handle_request(0, class(1), &mut r),
            RequestDecision::Granted
        );
        assert_eq!(
            s.handle_request(0, class(2), &mut r),
            RequestDecision::Granted
        );
    }

    #[test]
    fn low_class_requests_are_sometimes_refused() {
        let mut s = SupplierState::new(class(1), dac_config(0), 0).unwrap();
        let mut r = rng();
        let mut refused = 0;
        let mut granted = 0;
        for _ in 0..1000 {
            match s.handle_request(0, class(4), &mut r) {
                RequestDecision::Refused => refused += 1,
                RequestDecision::Granted => granted += 1,
                RequestDecision::Busy { .. } => unreachable!(),
            }
        }
        // P = 0.125: both outcomes must occur, refusals dominate.
        assert!(granted > 50, "granted {granted}");
        assert!(refused > 700, "refused {refused}");
    }

    #[test]
    fn busy_supplier_reports_favored_flag() {
        let mut s = SupplierState::new(class(2), dac_config(1200), 0).unwrap();
        let mut r = rng();
        s.begin_session(0);
        assert_eq!(
            s.handle_request(1, class(2), &mut r),
            RequestDecision::Busy { favored: true }
        );
        assert_eq!(
            s.handle_request(1, class(4), &mut r),
            RequestDecision::Busy { favored: false }
        );
    }

    #[test]
    fn idle_relaxation_is_lazy_but_exact() {
        let timeout = 100;
        let mut s = SupplierState::new(class(1), dac_config(timeout), 0).unwrap();
        // After 2.5 timeouts, exactly two relaxation steps must have applied.
        let v = s.vector_at(250).clone();
        let mut expect = AdmissionVector::initial(class(1), 4).unwrap();
        expect.relax_times(2);
        assert_eq!(v, expect);
        // The residual 50 ticks carry over: at t=300 the third step lands.
        let v = s.vector_at(300).clone();
        expect.relax();
        assert_eq!(v, expect);
    }

    #[test]
    fn relaxation_freezes_while_busy() {
        let timeout = 100;
        let mut s = SupplierState::new(class(1), dac_config(timeout), 0).unwrap();
        s.begin_session(10);
        // Long busy stretch: no relaxation may occur.
        let v = s.vector_at(10_000).clone();
        assert_eq!(v, AdmissionVector::initial(class(1), 4).unwrap());
        s.end_session(10_000);
        // Session saw no favored request -> exactly one relax step.
        let mut expect = AdmissionVector::initial(class(1), 4).unwrap();
        expect.relax();
        assert_eq!(*s.vector_at(10_000), expect);
    }

    #[test]
    fn end_session_without_favored_request_relaxes() {
        let mut s = SupplierState::new(class(2), dac_config(0), 0).unwrap();
        let mut r = rng();
        s.begin_session(0);
        // Non-favored (class 3/4) requests arrive while busy.
        let _ = s.handle_request(1, class(3), &mut r);
        let _ = s.handle_request(1, class(4), &mut r);
        s.end_session(100);
        let mut expect = AdmissionVector::initial(class(2), 4).unwrap();
        expect.relax();
        assert_eq!(*s.vector_at(100), expect);
    }

    #[test]
    fn end_session_with_reminder_tightens_to_highest() {
        let mut s = SupplierState::new(class(4), dac_config(0), 0).unwrap();
        let mut r = rng();
        s.begin_session(0);
        let d = s.handle_request(1, class(3), &mut r);
        assert_eq!(d, RequestDecision::Busy { favored: true });
        s.leave_reminder(class(3));
        let d = s.handle_request(2, class(2), &mut r);
        assert_eq!(d, RequestDecision::Busy { favored: true });
        s.leave_reminder(class(2));
        s.end_session(100);
        // Tightened around class 2: [1, 1, 0.5, 0.25].
        let mut expect = AdmissionVector::all_ones(4).unwrap();
        expect.tighten(class(2));
        assert_eq!(*s.vector_at(100), expect);
    }

    #[test]
    fn favored_request_without_reminder_leaves_vector_unchanged() {
        let mut s = SupplierState::new(class(4), dac_config(0), 0).unwrap();
        let mut r = rng();
        s.begin_session(0);
        let _ = s.handle_request(1, class(1), &mut r); // favored, no reminder
        s.end_session(100);
        assert_eq!(*s.vector_at(100), AdmissionVector::all_ones(4).unwrap());
    }

    #[test]
    fn reminders_on_idle_supplier_are_ignored() {
        let mut s = SupplierState::new(class(4), dac_config(0), 0).unwrap();
        s.leave_reminder(class(1));
        s.begin_session(0);
        s.end_session(1);
        // The stale reminder did not tighten anything; the no-favored rule
        // relaxed instead (already fully relaxed for a class-4 supplier).
        assert!(s.vector_at(1).is_fully_relaxed());
    }

    #[test]
    fn ndac_never_differentiates() {
        let cfg = SupplierConfig::new(4, 100, Protocol::Ndac).unwrap();
        let mut s = SupplierState::new(class(1), cfg, 0).unwrap();
        let mut r = rng();
        for _ in 0..200 {
            assert!(s.handle_request(0, class(4), &mut r).is_granted());
        }
        s.begin_session(0);
        let _ = s.handle_request(1, class(1), &mut r);
        s.leave_reminder(class(1));
        s.end_session(50);
        assert!(s.vector_at(1_000_000).is_fully_relaxed());
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_begin_session_panics() {
        let mut s = SupplierState::new(class(1), dac_config(0), 0).unwrap();
        s.begin_session(0);
        s.begin_session(1);
    }

    #[test]
    #[should_panic(expected = "idle supplier")]
    fn end_session_when_idle_panics() {
        let mut s = SupplierState::new(class(1), dac_config(0), 0).unwrap();
        s.end_session(0);
    }

    #[test]
    fn ablation_disabling_reminders_skips_tightening() {
        let cfg = dac_config(0).reminders(false);
        assert!(!cfg.reminders_enabled());
        let mut s = SupplierState::new(class(4), cfg, 0).unwrap();
        let mut r = rng();
        s.begin_session(0);
        let _ = s.handle_request(1, class(1), &mut r); // favored while busy
        s.leave_reminder(class(1));
        s.end_session(100);
        // Without the mechanism the vector stays fully relaxed instead of
        // tightening around class 1.
        assert!(s.vector_at(100).is_fully_relaxed());
    }

    #[test]
    fn ablation_disabling_session_relax_freezes_vector() {
        let cfg = dac_config(0).session_relax(false);
        assert!(!cfg.session_relax_enabled());
        let mut s = SupplierState::new(class(1), cfg, 0).unwrap();
        s.begin_session(0);
        s.end_session(100); // no favored request, but relaxation disabled
        assert_eq!(
            *s.vector_at(100),
            AdmissionVector::initial(class(1), 4).unwrap()
        );
    }

    #[test]
    fn lowest_favored_tracks_relaxation() {
        let mut s = SupplierState::new(class(1), dac_config(10), 0).unwrap();
        assert_eq!(s.lowest_favored_at(0), class(1));
        assert_eq!(s.lowest_favored_at(10), class(2));
        assert_eq!(s.lowest_favored_at(30), class(4));
    }
}
