//! Differentiated admission control (paper §4).
//!
//! `DACp2p` amplifies the system's streaming capacity quickly by favoring
//! requesting peers that pledge more out-bound bandwidth: they will
//! contribute more capacity once they become suppliers. The protocol is
//! fully distributed:
//!
//! * Every supplying peer keeps an [`AdmissionVector`] — one admission
//!   probability per requesting-peer class, all exact powers of two. A
//!   supplier *favors* the classes whose probability is `1.0`.
//! * An **idle** supplier *relaxes* (doubles the sub-1.0 probabilities)
//!   every [`Timeout`](SupplierConfig) period, so low-class peers are never
//!   starved.
//! * A **busy** supplier collects *reminders* from favored-class requesters
//!   it had to turn away; when its session ends it *tightens* its vector
//!   around the highest reminding class (or relaxes, if no favored-class
//!   request arrived at all).
//! * Requesting peers probe `M` random candidate suppliers from the lookup
//!   service in descending class order, are admitted once they secure
//!   exactly `R0` aggregate bandwidth, and otherwise back off
//!   `T_bkf · E_bkf^(i-1)` after their `i`-th rejection.
//!
//! The non-differentiated baseline `NDACp2p` (all probabilities pinned at
//! `1.0`) is selected with [`Protocol::Ndac`].
//!
//! This module is deliberately *runtime-agnostic*: the same state machines
//! drive both the discrete-event simulator (`p2ps-sim`) and the real
//! threaded node (`p2ps-node`). Time is an abstract `u64` tick supplied by
//! the caller.

mod requester;
mod supplier;
mod vector;

pub use requester::{
    attempt_admission, greedy_take, BackoffPolicy, Candidate, ProbeOutcome, RequesterState,
};
pub use supplier::{RequestDecision, SupplierConfig, SupplierState};
pub use vector::AdmissionVector;

use serde::{Deserialize, Serialize};

/// Which admission protocol a supplier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Protocol {
    /// `DACp2p` — the paper's differentiated admission control.
    #[default]
    Dac,
    /// `NDACp2p` — the non-differentiated baseline: every class is always
    /// admitted with probability `1.0`.
    Ndac,
}

impl Protocol {
    /// Short lowercase name used in reports (`"dac"` / `"ndac"`).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Dac => "dac",
            Protocol::Ndac => "ndac",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Protocol::Dac => write!(f, "DACp2p"),
            Protocol::Ndac => write!(f, "NDACp2p"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::Dac.name(), "dac");
        assert_eq!(Protocol::Ndac.name(), "ndac");
        assert_eq!(format!("{}", Protocol::Dac), "DACp2p");
        assert_eq!(format!("{}", Protocol::Ndac), "NDACp2p");
        assert_eq!(Protocol::default(), Protocol::Dac);
    }
}
