//! A provably optimal assignment for *every* supplier mix (slot-sorting).
//!
//! The paper's `OTSp2p` pseudo-code (Fig. 2) achieves the Theorem-1 optimum
//! `n·δt` on every instance the paper exercises (all four-class mixes), but
//! on wide class spreads it can fall short: for classes `[2,3,4,5,6,6]` the
//! literal algorithm yields `9·δt` while `6·δt` is achievable. This module
//! contains an assignment that attains `n·δt` for **all** valid supplier
//! sets, so Theorem 1's *value* is preserved everywhere.
//!
//! # Why `n·δt` is always optimal
//!
//! Model each supplier `i` as a machine whose `p`-th transmitted segment
//! completes at slot `p · spp_i` (`spp_i = 2^(k_i - 1)`). Over one period
//! `P = 2^(ℓ-1)` the machine completes exactly `quota_i = P / spp_i`
//! segments, so the multiset of *slot completion times* has exactly `P`
//! elements. An assignment is feasible with delay `D` iff segment `t`
//! (deadline `t + D`) can be matched to a slot completing by `t + D`; with
//! both sides sorted this holds iff `c_k ≤ (k-1) + D` for the `k`-th
//! smallest completion `c_k`. Therefore
//! `D_min = max_k (c_k - k + 1)`.
//!
//! *Lower bound*: every machine's last slot completes at exactly `P`
//! (because `quota_i · spp_i = P`), so the `n` largest completions all
//! equal `P`, giving `D_min ≥ P - (P - n) = n`.
//!
//! *Upper bound*: for any completion value `C`, the number of slots
//! completing strictly before `C` is `Σ_i ⌊(C-1)/spp_i⌋ >
//! Σ_i ((C-1)/spp_i) - n = (C-1) - n` (using `Σ 1/spp_i = Σ b_i/R0 = 1`),
//! hence at least `C - n`; so `c_k - k + 1 ≤ n` for every `k`.
//!
//! Assigning segment `k-1` to the owner of the `k`-th smallest slot
//! (earliest-deadline-first against slot completions) therefore always
//! realizes the optimum — we call the construction [`edf`].

use crate::{PeerClass, Result};

use super::{session_period, sort_by_bandwidth, Assignment};

/// Computes a minimum-buffering-delay assignment by earliest-deadline-first
/// matching of segments to supplier transmission slots.
///
/// Always achieves the Theorem-1 optimum `n·δt`, including wide class
/// spreads where the literal [`otsp2p`](super::otsp2p) pseudo-code does not
/// (see the module docs).
///
/// # Errors
///
/// Same conditions as [`super::otsp2p`].
///
/// # Examples
///
/// ```
/// use p2ps_core::assignment::{edf, otsp2p};
/// use p2ps_core::PeerClass;
///
/// let wide = [2u8, 3, 4, 5, 6, 6]
///     .into_iter()
///     .map(PeerClass::new)
///     .collect::<Result<Vec<_>, _>>()?;
/// assert_eq!(edf(&wide)?.buffering_delay_slots(), 6);     // n·δt
/// assert_eq!(otsp2p(&wide)?.buffering_delay_slots(), 9);  // paper literal
/// # Ok::<(), p2ps_core::Error>(())
/// ```
pub fn edf(classes: &[PeerClass]) -> Result<Assignment> {
    let period = session_period(classes)?;
    let (sorted, input_order) = sort_by_bandwidth(classes);

    // Build the multiset of (completion, machine) slots and sort it;
    // stable tie-break on machine index keeps per-machine slot order.
    let mut slots: Vec<(u32, usize)> = Vec::with_capacity(period as usize);
    for (i, c) in sorted.iter().enumerate() {
        let spp = c.slots_per_segment();
        let quota = period / spp;
        for p in 1..=quota {
            slots.push((p * spp, i));
        }
    }
    slots.sort_by_key(|&(c, i)| (c, i));

    let mut segments: Vec<Vec<u32>> = vec![Vec::new(); sorted.len()];
    for (k, &(_, machine)) in slots.iter().enumerate() {
        segments[machine].push(k as u32);
    }

    Assignment::from_sorted_parts(sorted, input_order, segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{classes_of, otsp2p, verify::exhaustive_min_delay};

    #[test]
    fn achieves_n_on_paper_cases() {
        let cases: &[&[u8]] = &[
            &[1],
            &[2, 2],
            &[2, 3, 3],
            &[2, 3, 4, 4],
            &[3, 3, 3, 3],
            &[2, 4, 4, 4, 4],
            &[4, 4, 4, 4, 4, 4, 4, 4],
        ];
        for raw in cases {
            let classes = classes_of(raw);
            assert_eq!(
                edf(&classes).unwrap().buffering_delay_slots(),
                classes.len() as u32,
                "classes {raw:?}"
            );
        }
    }

    #[test]
    fn achieves_n_where_literal_otsp2p_does_not() {
        let classes = classes_of(&[2, 3, 4, 5, 6, 6]);
        assert_eq!(edf(&classes).unwrap().buffering_delay_slots(), 6);
        assert_eq!(otsp2p(&classes).unwrap().buffering_delay_slots(), 9);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let cases: &[&[u8]] = &[
            &[2, 3, 4, 4],
            &[3, 3, 4, 4, 4, 4],
            &[2, 3, 4, 5, 5],
            &[2, 3, 5, 5, 5, 5],
            &[2, 4, 4, 5, 5, 5, 5],
        ];
        for raw in cases {
            let classes = classes_of(raw);
            assert_eq!(
                edf(&classes).unwrap().buffering_delay_slots(),
                exhaustive_min_delay(&classes).unwrap(),
                "classes {raw:?}"
            );
        }
    }

    #[test]
    fn per_machine_segments_are_ascending_and_complete() {
        let classes = classes_of(&[2, 3, 4, 5, 6, 6]);
        let a = edf(&classes).unwrap();
        // from_parts would have panicked otherwise; double-check quotas.
        for (_, class, segs) in a.iter() {
            assert_eq!(segs.len() as u32, a.period() / class.slots_per_segment());
        }
    }

    #[test]
    fn rejects_invalid_sets() {
        assert!(edf(&[]).is_err());
        assert!(edf(&classes_of(&[2])).is_err());
    }
}
