//! Baseline (non-optimal) media data assignments.
//!
//! The paper's Figure 1 contrasts the optimal assignment (Assignment II,
//! produced by `OTSp2p`) with a natural but suboptimal "contiguous block"
//! assignment (Assignment I). These baselines let the benchmark harness and
//! examples quantify how much buffering delay `OTSp2p` saves.

use crate::{PeerClass, Result};

use super::{session_period, sort_by_bandwidth, Assignment};

/// The paper's Figure 1 "Assignment I": each supplier receives a
/// *contiguous block* of segments proportional to its bandwidth, fastest
/// supplier first.
///
/// For the Figure-1 session (classes 2, 3, 4, 4) this assigns segments
/// `0–3` to the class-2 supplier, `4–5` to the class-3 supplier and one
/// segment each to the class-4 suppliers, yielding a buffering delay of
/// `5·δt` versus the optimal `4·δt`.
///
/// # Errors
///
/// Same conditions as [`super::otsp2p`].
///
/// # Examples
///
/// ```
/// use p2ps_core::assignment::{contiguous, otsp2p};
/// use p2ps_core::PeerClass;
///
/// let classes = [2u8, 3, 4, 4]
///     .into_iter()
///     .map(PeerClass::new)
///     .collect::<Result<Vec<_>, _>>()?;
/// assert_eq!(contiguous(&classes)?.buffering_delay_slots(), 5);
/// assert_eq!(otsp2p(&classes)?.buffering_delay_slots(), 4);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
pub fn contiguous(classes: &[PeerClass]) -> Result<Assignment> {
    let period = session_period(classes)?;
    let (sorted, input_order) = sort_by_bandwidth(classes);
    let mut segments = Vec::with_capacity(sorted.len());
    let mut next = 0u32;
    for c in &sorted {
        let quota = period / c.slots_per_segment();
        segments.push((next..next + quota).collect());
        next += quota;
    }
    Assignment::from_sorted_parts(sorted, input_order, segments)
}

/// Round-robin assignment: segments `0, 1, 2, …` are dealt to suppliers in
/// turn (fastest first), skipping suppliers whose per-period quota is
/// already exhausted.
///
/// This is `OTSp2p` run *forwards* instead of backwards; it spreads
/// segments like the optimal algorithm but anchors the sparse (slow)
/// suppliers at the *start* of the period, which hurts the early deadlines
/// and generally costs extra buffering delay.
///
/// # Errors
///
/// Same conditions as [`super::otsp2p`].
pub fn round_robin(classes: &[PeerClass]) -> Result<Assignment> {
    let period = session_period(classes)?;
    let (sorted, input_order) = sort_by_bandwidth(classes);
    let quotas: Vec<u32> = sorted
        .iter()
        .map(|c| period / c.slots_per_segment())
        .collect();
    let mut segments: Vec<Vec<u32>> = vec![Vec::new(); sorted.len()];
    let mut s = 0u32;
    while s < period {
        for (i, quota) in quotas.iter().enumerate() {
            if s >= period {
                break;
            }
            if (segments[i].len() as u32) < *quota {
                segments[i].push(s);
                s += 1;
            }
        }
    }
    Assignment::from_sorted_parts(sorted, input_order, segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{classes_of, otsp2p};

    #[test]
    fn figure1_assignment_i() {
        let a = contiguous(&classes_of(&[2, 3, 4, 4])).unwrap();
        assert_eq!(a.segments_of(0), &[0, 1, 2, 3]);
        assert_eq!(a.segments_of(1), &[4, 5]);
        assert_eq!(a.segments_of(2), &[6]);
        assert_eq!(a.segments_of(3), &[7]);
        assert_eq!(a.buffering_delay_slots(), 5);
    }

    #[test]
    fn round_robin_dealing_order() {
        let a = round_robin(&classes_of(&[2, 3, 4, 4])).unwrap();
        assert_eq!(a.segments_of(0), &[0, 4, 6, 7]);
        assert_eq!(a.segments_of(1), &[1, 5]);
        assert_eq!(a.segments_of(2), &[2]);
        assert_eq!(a.segments_of(3), &[3]);
    }

    #[test]
    fn baselines_never_beat_otsp2p() {
        let cases: &[&[u8]] = &[
            &[1],
            &[2, 2],
            &[2, 3, 3],
            &[2, 3, 4, 4],
            &[3, 3, 3, 3],
            &[2, 4, 4, 4, 4],
            &[4, 4, 4, 4, 4, 4, 4, 4],
            &[2, 3, 4, 5, 6, 6],
        ];
        for raw in cases {
            let classes = classes_of(raw);
            let best = otsp2p(&classes).unwrap().buffering_delay_slots();
            let cont = contiguous(&classes).unwrap().buffering_delay_slots();
            let rr = round_robin(&classes).unwrap().buffering_delay_slots();
            assert!(cont >= best, "contiguous beat otsp2p on {raw:?}");
            assert!(rr >= best, "round_robin beat otsp2p on {raw:?}");
        }
    }

    #[test]
    fn uniform_supplier_sets_are_equivalent() {
        // With all suppliers of the same class each transmits exactly one
        // segment per period, so every assignment is a permutation and all
        // strategies achieve the same (optimal) delay of n·δt.
        let classes = classes_of(&[3, 3, 3, 3]);
        assert_eq!(otsp2p(&classes).unwrap().buffering_delay_slots(), 4);
        assert_eq!(contiguous(&classes).unwrap().buffering_delay_slots(), 4);
        assert_eq!(round_robin(&classes).unwrap().buffering_delay_slots(), 4);
    }

    #[test]
    fn baselines_reject_invalid_sets() {
        assert!(contiguous(&[]).is_err());
        assert!(round_robin(&classes_of(&[2])).is_err());
    }
}
