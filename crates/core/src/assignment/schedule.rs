//! Transmission schedules and buffering-delay computation.
//!
//! Given an [`Assignment`], each supplier transmits its assigned segments in
//! ascending segment order, back to back, at its offered bandwidth: a
//! class-`k` supplier needs `2^(k-1)` slots of `δt` per segment. The
//! requesting peer plays segment `s` during slot `D + s` where `D` is the
//! buffering delay in slots. Playback is continuous iff every segment
//! arrives no later than its playback deadline; the *minimum* feasible `D`
//! is the assignment's buffering delay (paper §3).

use serde::{Deserialize, Serialize};

use super::Assignment;

/// The minimum buffering delay of `assignment` in slots of `δt`.
///
/// For supplier `i` with `2^(k-1)` slots per segment, its `p`-th assigned
/// segment (1-based, ascending) finishes arriving at slot `p · 2^(k-1)` of
/// each period; the segment's playback deadline is `D + s` slots after the
/// start of that period. The schedule is periodic and each supplier's
/// per-period transmission time exactly fills the period, so checking one
/// period suffices; the minimum `D` is the largest deadline violation at
/// `D = 0`.
pub fn min_delay_slots(assignment: &Assignment) -> u32 {
    let mut delay: i64 = 1; // playback can never start before one slot of data exists
    for (_, class, segments) in assignment.iter() {
        let spp = class.slots_per_segment() as i64;
        for (p, &s) in segments.iter().enumerate() {
            let arrival = (p as i64 + 1) * spp;
            delay = delay.max(arrival - s as i64);
        }
    }
    delay as u32
}

/// Whether playback with buffering delay `delay_slots` is continuous
/// (no segment misses its deadline).
pub fn is_feasible(assignment: &Assignment, delay_slots: u32) -> bool {
    delay_slots >= min_delay_slots(assignment)
}

/// One scheduled segment transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentEvent {
    /// Supplier slot index within the assignment.
    pub supplier: usize,
    /// Global segment number.
    pub segment: u64,
    /// Slot (in units of `δt` from session start) at which transmission of
    /// this segment starts.
    pub start_slot: u64,
    /// Slot at which the segment has fully arrived at the requesting peer.
    pub arrival_slot: u64,
}

/// Expands an [`Assignment`] into the concrete per-segment transmission
/// timetable for a media file of `total_segments` segments.
///
/// The timetable is what the runnable node uses to pace its sends and what
/// the playback buffer uses to check continuity; it is also a convenient
/// oracle for tests.
///
/// # Examples
///
/// ```
/// use p2ps_core::assignment::{otsp2p, schedule::TransmissionSchedule};
/// use p2ps_core::PeerClass;
///
/// let classes = [2u8, 2]
///     .into_iter()
///     .map(PeerClass::new)
///     .collect::<Result<Vec<_>, _>>()?;
/// let a = otsp2p(&classes)?;
/// let schedule = TransmissionSchedule::new(&a, 4);
/// assert_eq!(schedule.len(), 4);
/// // Every segment arrives by its deadline with the optimal delay.
/// let d = a.buffering_delay_slots() as u64;
/// for ev in schedule.iter() {
///     assert!(ev.arrival_slot <= d + ev.segment);
/// }
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionSchedule {
    events: Vec<SegmentEvent>,
}

impl TransmissionSchedule {
    /// Builds the timetable for the first `total_segments` segments of the
    /// media file under `assignment`.
    pub fn new(assignment: &Assignment, total_segments: u64) -> Self {
        let period = assignment.period() as u64;
        let mut events = Vec::with_capacity(total_segments as usize);
        for (slot_idx, class, segments) in assignment.iter() {
            let spp = class.slots_per_segment() as u64;
            let per_period = segments.len() as u64;
            // Global transmission position p maps to the segment
            // `(p / per_period) * period + segments[p % per_period]`, which
            // is strictly increasing in p, so we can stop at the first
            // overflow past the end of the media file.
            for p in 0u64.. {
                let seg = (p / per_period) * period + segments[(p % per_period) as usize] as u64;
                if seg >= total_segments {
                    break;
                }
                let start = p * spp;
                events.push(SegmentEvent {
                    supplier: slot_idx,
                    segment: seg,
                    start_slot: start,
                    arrival_slot: start + spp,
                });
            }
        }
        events.sort_by_key(|e| (e.arrival_slot, e.segment));
        TransmissionSchedule { events }
    }

    /// Number of scheduled segment transmissions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over events in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &SegmentEvent> + '_ {
        self.events.iter()
    }

    /// The slot by which all segments have arrived.
    pub fn completion_slot(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.arrival_slot)
            .max()
            .unwrap_or(0)
    }

    /// The minimal feasible buffering delay for this concrete (finite)
    /// timetable: `max(arrival - segment)` over all events.
    pub fn min_delay_slots(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.arrival_slot.saturating_sub(e.segment))
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{classes_of, contiguous, otsp2p, Assignment};

    #[test]
    fn figure1_delays() {
        let classes = classes_of(&[2, 3, 4, 4]);
        assert_eq!(min_delay_slots(&otsp2p(&classes).unwrap()), 4);
        assert_eq!(min_delay_slots(&contiguous(&classes).unwrap()), 5);
    }

    #[test]
    fn feasibility_threshold() {
        let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
        assert!(!is_feasible(&a, 3));
        assert!(is_feasible(&a, 4));
        assert!(is_feasible(&a, 100));
    }

    #[test]
    fn schedule_covers_every_segment_once() {
        let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
        let s = TransmissionSchedule::new(&a, 20);
        assert_eq!(s.len(), 20);
        let mut segs: Vec<u64> = s.iter().map(|e| e.segment).collect();
        segs.sort_unstable();
        assert_eq!(segs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_delay_matches_analytic_delay() {
        for raw in [&[2u8, 3, 4, 4][..], &[2, 2], &[1], &[3, 3, 3, 3]] {
            let classes = classes_of(raw);
            let a = otsp2p(&classes).unwrap();
            // several whole periods so the steady state is visible
            let s = TransmissionSchedule::new(&a, a.period() as u64 * 4);
            assert_eq!(
                s.min_delay_slots(),
                min_delay_slots(&a) as u64,
                "classes {raw:?}"
            );
        }
    }

    #[test]
    fn supplier_transmissions_do_not_overlap() {
        let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
        let s = TransmissionSchedule::new(&a, 32);
        for i in 0..a.supplier_count() {
            let mut mine: Vec<_> = s.iter().filter(|e| e.supplier == i).collect();
            mine.sort_by_key(|e| e.start_slot);
            for w in mine.windows(2) {
                assert!(
                    w[0].arrival_slot <= w[1].start_slot,
                    "supplier {i} overlaps: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn supplier_is_busy_for_the_whole_period() {
        // Each supplier's per-period transmissions exactly fill the period:
        // quota * slots_per_segment == period.
        let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
        for (_, class, segs) in a.iter() {
            assert_eq!(segs.len() as u32 * class.slots_per_segment(), a.period());
        }
    }

    #[test]
    fn partial_period_schedule() {
        let a = otsp2p(&classes_of(&[2, 2])).unwrap();
        let s = TransmissionSchedule::new(&a, 3); // one and a half periods
        assert_eq!(s.len(), 3);
        assert!(s.completion_slot() >= 3);
    }

    #[test]
    fn min_delay_of_custom_assignment() {
        // Give the slow supplier the *first* segment: delay blows up to the
        // slow supplier's transmission time.
        let classes = classes_of(&[2, 3, 4, 4]);
        let a = Assignment::from_parts(
            classes,
            vec![vec![4, 5, 6, 7], vec![2, 3], vec![0], vec![1]],
        )
        .unwrap();
        // class-4 supplier (8 slots/segment) owns segment 0 -> D >= 8.
        assert_eq!(min_delay_slots(&a), 8);
    }

    #[test]
    fn empty_schedule() {
        let a = otsp2p(&classes_of(&[1])).unwrap();
        let s = TransmissionSchedule::new(&a, 0);
        assert!(s.is_empty());
        assert_eq!(s.completion_slot(), 0);
        assert_eq!(s.min_delay_slots(), 1);
    }
}
