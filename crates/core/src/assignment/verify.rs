//! Exhaustive optimality checking for media data assignments.
//!
//! Theorem 1 of the paper states that `OTSp2p` achieves the minimum
//! possible buffering delay of `n·δt`. This module provides a brute-force
//! oracle that enumerates *every* valid assignment of one period and
//! returns the best achievable delay, so the test-suite can confirm the
//! theorem on small instances instead of trusting it.

use crate::{PeerClass, Result};

use super::{session_period, sort_by_bandwidth};

/// Minimum buffering delay (in slots of `δt`) achievable by *any* valid
/// assignment for the given supplier set, found by exhaustive search with
/// branch-and-bound pruning.
///
/// The search assigns segments `period-1, period-2, …, 0` one at a time to
/// any supplier with remaining quota, tracking each supplier's deadline
/// slack incrementally. Supplier sets with periods up to 16 (a few thousand
/// assignments) finish instantly; larger periods grow combinatorially, so
/// keep this to tests.
///
/// # Errors
///
/// Same conditions as [`super::otsp2p`]: the supplier list must be
/// non-empty and offers must sum to `R0`.
///
/// # Examples
///
/// ```
/// use p2ps_core::assignment::{otsp2p, verify::exhaustive_min_delay};
/// use p2ps_core::PeerClass;
///
/// let classes = [2u8, 3, 4, 4]
///     .into_iter()
///     .map(PeerClass::new)
///     .collect::<Result<Vec<_>, _>>()?;
/// // Theorem 1: no assignment beats n·δt, and OTSp2p attains it.
/// assert_eq!(exhaustive_min_delay(&classes)?, 4);
/// assert_eq!(otsp2p(&classes)?.buffering_delay_slots(), 4);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
pub fn exhaustive_min_delay(classes: &[PeerClass]) -> Result<u32> {
    let period = session_period(classes)?;
    let (sorted, _) = sort_by_bandwidth(classes);
    let spp: Vec<u32> = sorted.iter().map(|c| c.slots_per_segment()).collect();
    let mut quota: Vec<u32> = sorted
        .iter()
        .map(|c| period / c.slots_per_segment())
        .collect();

    // Assign segments from the END of the period downward. When supplier i
    // has q_i segments still unassigned (out of Q_i total), the next segment
    // it takes becomes its q_i-th in ascending order, arriving at slot
    // q_i * spp_i; assigning segment s to it imposes delay >= q_i*spp_i - s.
    struct Search {
        spp: Vec<u32>,
        best: i64,
    }

    impl Search {
        fn go(&mut self, seg: i64, quota: &mut [u32], current: i64) {
            if current >= self.best {
                return; // prune: already no better than the best found
            }
            if seg < 0 {
                self.best = current;
                return;
            }
            for i in 0..quota.len() {
                if quota[i] == 0 {
                    continue;
                }
                // Skip symmetric twins: identical suppliers with identical
                // remaining quotas produce identical subtrees.
                if i > 0 && self.spp[i] == self.spp[i - 1] && quota[i] == quota[i - 1] {
                    continue;
                }
                let arrival = quota[i] as i64 * self.spp[i] as i64;
                let need = arrival - seg;
                quota[i] -= 1;
                self.go(seg - 1, quota, current.max(need));
                quota[i] += 1;
            }
        }
    }

    let mut search = Search {
        spp,
        best: i64::MAX,
    };
    search.go(period as i64 - 1, &mut quota, 1);
    Ok(search.best as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{classes_of, otsp2p};

    #[test]
    fn theorem1_on_small_instances() {
        let cases: &[&[u8]] = &[
            &[1],
            &[2, 2],
            &[2, 3, 3],
            &[2, 3, 4, 4],
            &[3, 3, 3, 3],
            &[2, 4, 4, 4, 4],
            &[3, 3, 4, 4, 4, 4],
            &[4, 4, 4, 4, 4, 4, 4, 4],
            &[2, 3, 4, 5, 5],
            &[2, 3, 5, 5, 5, 5],
        ];
        for raw in cases {
            let classes = classes_of(raw);
            let brute = exhaustive_min_delay(&classes).unwrap();
            let ots = otsp2p(&classes).unwrap().buffering_delay_slots();
            assert_eq!(brute, classes.len() as u32, "brute force on {raw:?}");
            assert_eq!(ots, brute, "otsp2p matches brute force on {raw:?}");
        }
    }

    #[test]
    fn invalid_sets_are_rejected() {
        assert!(exhaustive_min_delay(&[]).is_err());
        assert!(exhaustive_min_delay(&classes_of(&[3])).is_err());
    }
}
