//! The `OTSp2p` optimal media data assignment algorithm (paper §3, Fig. 2).

use crate::{PeerClass, Result};

use super::{session_period, sort_by_bandwidth, Assignment};

/// Computes the optimal media data assignment for a streaming session
/// (Algorithm `OTSp2p`, paper Fig. 2).
///
/// The suppliers are sorted in descending order of out-bound bandwidth
/// offer. With `ℓ` the lowest class present, the algorithm assigns the
/// first `2^(ℓ-1)` segments — the assignment then repeats every
/// `2^(ℓ-1)` segments for the rest of the media file. Starting from the
/// *last* segment of the period and walking down, each `while` iteration
/// hands one segment to every supplier whose per-period quota
/// (`period / 2^(k-1)` segments for a class-`k` supplier) is not yet
/// exhausted.
///
/// By Theorem 1 the resulting session achieves the minimum possible
/// buffering delay of `n·δt` for `n` suppliers. The returned
/// [`Assignment`] stores suppliers in the sorted order;
/// [`Assignment::input_index`] maps slots back to the caller's order.
///
/// # Errors
///
/// * [`crate::Error::NoSuppliers`] if `classes` is empty.
/// * [`crate::Error::BandwidthMismatch`] if the offers do not sum to `R0`.
///
/// # Examples
///
/// Reproducing the paper's Figure 1, Assignment II:
///
/// ```
/// use p2ps_core::assignment::otsp2p;
/// use p2ps_core::PeerClass;
///
/// let classes = [2u8, 3, 4, 4]
///     .into_iter()
///     .map(PeerClass::new)
///     .collect::<Result<Vec<_>, _>>()?;
/// let a = otsp2p(&classes)?;
/// assert_eq!(a.segments_of(0), &[0, 1, 3, 7]); // class-2 supplier
/// assert_eq!(a.segments_of(1), &[2, 6]);       // class-3 supplier
/// assert_eq!(a.segments_of(2), &[5]);          // class-4 supplier
/// assert_eq!(a.segments_of(3), &[4]);          // class-4 supplier
/// assert_eq!(a.buffering_delay_slots(), 4);    // Theorem 1: n·δt
/// # Ok::<(), p2ps_core::Error>(())
/// ```
pub fn otsp2p(classes: &[PeerClass]) -> Result<Assignment> {
    let period = session_period(classes)?;
    let (sorted, input_order) = sort_by_bandwidth(classes);

    let quotas: Vec<u32> = sorted
        .iter()
        .map(|c| period / c.slots_per_segment())
        .collect();
    let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); sorted.len()];

    // Paper Fig. 2: j starts at 2^(ℓ-1) - 1 and counts down; each pass of
    // the `for` loop gives the current segment to the next supplier whose
    // assignment is not yet complete.
    let mut j = period as i64 - 1;
    while j >= 0 {
        for (i, quota) in quotas.iter().enumerate() {
            if j < 0 {
                break;
            }
            if (assigned[i].len() as u32) < *quota {
                assigned[i].push(j as u32);
                j -= 1;
            }
        }
    }

    for list in &mut assigned {
        list.reverse(); // collected descending; store ascending
    }

    Assignment::from_sorted_parts(sorted, input_order, assigned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::classes_of;
    use crate::Error;

    #[test]
    fn figure1_assignment_ii() {
        let a = otsp2p(&classes_of(&[2, 3, 4, 4])).unwrap();
        assert_eq!(a.period(), 8);
        assert_eq!(a.segments_of(0), &[0, 1, 3, 7]);
        assert_eq!(a.segments_of(1), &[2, 6]);
        assert_eq!(a.segments_of(2), &[5]);
        assert_eq!(a.segments_of(3), &[4]);
        assert_eq!(a.buffering_delay_slots(), 4);
    }

    #[test]
    fn single_class1_supplier() {
        let a = otsp2p(&classes_of(&[1])).unwrap();
        assert_eq!(a.period(), 1);
        assert_eq!(a.segments_of(0), &[0]);
        assert_eq!(a.buffering_delay_slots(), 1);
    }

    #[test]
    fn two_class2_suppliers() {
        let a = otsp2p(&classes_of(&[2, 2])).unwrap();
        assert_eq!(a.period(), 2);
        assert_eq!(a.segments_of(0), &[1]);
        assert_eq!(a.segments_of(1), &[0]);
        assert_eq!(a.buffering_delay_slots(), 2);
    }

    #[test]
    fn eight_class4_suppliers() {
        let a = otsp2p(&classes_of(&[4; 8])).unwrap();
        assert_eq!(a.period(), 8);
        for i in 0..8 {
            assert_eq!(a.segments_of(i), &[7 - i as u32]);
        }
        assert_eq!(a.buffering_delay_slots(), 8);
    }

    #[test]
    fn unsorted_input_is_sorted_with_back_mapping() {
        let a = otsp2p(&classes_of(&[4, 2, 4, 3])).unwrap();
        assert_eq!(a.class_of(0).get(), 2);
        assert_eq!(a.input_index(0), 1); // class-2 was input slot 1
        assert_eq!(a.input_index(1), 3); // class-3 was input slot 3
        assert_eq!(a.segments_of(0), &[0, 1, 3, 7]);
    }

    #[test]
    fn theorem1_delay_equals_supplier_count() {
        // Every supplier mix drawn from the paper's four-class evaluation
        // world (plus uniform mixes of any class) attains the Theorem-1
        // optimum n·δt under the literal pseudo-code.
        let cases: &[&[u8]] = &[
            &[1],
            &[2, 2],
            &[2, 3, 3],
            &[2, 3, 4, 4],
            &[3, 3, 3, 3],
            &[2, 4, 4, 4, 4],
            &[3, 3, 3, 4, 4],
            &[4, 4, 4, 4, 4, 4, 4, 4],
            &[2, 3, 4, 5, 5],
            &[5; 16],
        ];
        for raw in cases {
            let classes = classes_of(raw);
            let a = otsp2p(&classes).unwrap();
            assert_eq!(
                a.buffering_delay_slots(),
                classes.len() as u32,
                "classes {raw:?}"
            );
        }
    }

    #[test]
    fn literal_pseudocode_misses_optimum_on_wide_spreads() {
        // Documented deviation from Theorem 1: on classes [2,3,4,5,6,6]
        // the literal Fig.-2 pseudo-code yields 9·δt although 6·δt is
        // achievable (see assignment::edf). The paper's evaluation never
        // exercises spreads beyond four classes, where the pseudo-code is
        // optimal.
        let classes = classes_of(&[2, 3, 4, 5, 6, 6]);
        let a = otsp2p(&classes).unwrap();
        assert_eq!(a.buffering_delay_slots(), 9);
    }

    #[test]
    fn rejects_invalid_supplier_sets() {
        assert!(matches!(otsp2p(&[]), Err(Error::NoSuppliers)));
        assert!(matches!(
            otsp2p(&classes_of(&[2])),
            Err(Error::BandwidthMismatch { .. })
        ));
        assert!(matches!(
            otsp2p(&classes_of(&[1, 1])),
            Err(Error::BandwidthMismatch { .. })
        ));
    }

    #[test]
    fn every_period_segment_is_assigned_exactly_once() {
        let a = otsp2p(&classes_of(&[2, 3, 4, 5, 5])).unwrap();
        let mut seen = vec![false; a.period() as usize];
        for (_, _, segs) in a.iter() {
            for &s in segs {
                assert!(!seen[s as usize]);
                seen[s as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
