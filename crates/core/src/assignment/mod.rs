//! Media data assignment for multi-supplier streaming sessions (paper §3).
//!
//! A streaming session involves a requesting peer and `n` supplying peers
//! whose out-bound bandwidth offers sum to exactly the playback rate `R0`.
//! The media file is divided into segments of equal playback time `δt`; an
//! *assignment* decides which supplier transmits which segments. Every
//! assignment is **periodic** with period `2^(ℓ-1)` segments, where `ℓ` is
//! the lowest class among the suppliers: within one period a class-`k`
//! supplier transmits `period / 2^(k-1)` segments, which exactly matches its
//! bandwidth share.
//!
//! Different assignments lead to different **buffering delays** — the time
//! between the start of transmission and the start of playback (paper
//! Fig. 1). [`otsp2p`] computes the provably optimal assignment
//! (Theorem 1: minimum delay `n·δt`); [`contiguous`] and [`round_robin`]
//! are the baselines used for comparison; [`verify`] contains an
//! exhaustive-search optimality checker used by the test-suite.

mod baseline;
mod edf;
mod otsp2p;
pub mod schedule;
pub mod verify;

pub use baseline::{contiguous, round_robin};
pub use edf::edf;
pub use otsp2p::otsp2p;

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::{Bandwidth, Error, PeerClass, Result};

/// Playback time `δt` of one media segment.
///
/// The paper assumes `δt` is "typically in the magnitude of seconds"; the
/// real node scales it down to milliseconds so tests and examples finish
/// quickly. Buffering delays are integer multiples of `δt`.
///
/// # Examples
///
/// ```
/// use p2ps_core::assignment::SegmentDuration;
///
/// let dt = SegmentDuration::from_secs(1);
/// assert_eq!(dt.as_millis(), 1_000);
/// assert_eq!(dt.slots(5).as_millis(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentDuration(u64);

impl SegmentDuration {
    /// Creates a segment duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms == 0`; zero-length segments make playback deadlines
    /// meaningless.
    pub fn from_millis(ms: u64) -> Self {
        assert!(ms > 0, "segment duration must be positive");
        SegmentDuration(ms)
    }

    /// Creates a segment duration from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs == 0`.
    pub fn from_secs(secs: u64) -> Self {
        Self::from_millis(secs * 1_000)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The wall-clock duration of `n` slots (`n · δt`).
    pub const fn slots(self, n: u32) -> Duration {
        Duration::from_millis(self.0 * n as u64)
    }
}

impl From<SegmentDuration> for Duration {
    fn from(dt: SegmentDuration) -> Duration {
        Duration::from_millis(dt.0)
    }
}

impl fmt::Display for SegmentDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "δt={}ms", self.0)
    }
}

/// A periodic media data assignment for one streaming session.
///
/// Suppliers are stored in descending-bandwidth order (the order `OTSp2p`
/// operates in); [`Assignment::input_index`] maps each slot back to the
/// caller's original supplier list. Segment numbers are *within one
/// period*: supplier `i` transmits segment `s + j·period` for every period
/// `j` whenever `s` is in its per-period list.
///
/// Construct assignments with [`otsp2p`], [`contiguous`], [`round_robin`]
/// or — for experiments with arbitrary assignments — [`Assignment::from_parts`].
///
/// # Examples
///
/// ```
/// use p2ps_core::assignment::otsp2p;
/// use p2ps_core::PeerClass;
///
/// let classes = [2, 3, 4, 4]
///     .into_iter()
///     .map(PeerClass::new)
///     .collect::<Result<Vec<_>, _>>()?;
/// let a = otsp2p(&classes)?;
/// assert_eq!(a.period(), 8);
/// assert_eq!(a.supplier_count(), 4);
/// // Fastest supplier (class 2) carries half the segments of each period.
/// assert_eq!(a.segments_of(0), &[0, 1, 3, 7]);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    classes: Vec<PeerClass>,
    input_order: Vec<usize>,
    period: u32,
    segments: Vec<Vec<u32>>,
}

impl Assignment {
    /// Builds an assignment from raw parts, validating every model
    /// invariant. `classes` must be in the intended supplier order and
    /// `segments[i]` lists the per-period segments of supplier `i`.
    ///
    /// # Errors
    ///
    /// * [`Error::NoSuppliers`] for an empty supplier list.
    /// * [`Error::BandwidthMismatch`] if offers do not sum to `R0`.
    ///
    /// # Panics
    ///
    /// Panics if the segment lists do not form a partition of
    /// `0..period` with each supplier receiving exactly its bandwidth share
    /// (`period / 2^(k-1)` segments) — such inputs are programming errors,
    /// not recoverable conditions.
    pub fn from_parts(classes: Vec<PeerClass>, segments: Vec<Vec<u32>>) -> Result<Self> {
        let period = session_period(&classes)?;
        assert_eq!(
            classes.len(),
            segments.len(),
            "one segment list per supplier required"
        );
        let mut seen = vec![false; period as usize];
        for (i, (class, segs)) in classes.iter().zip(&segments).enumerate() {
            let quota = (period / class.slots_per_segment()) as usize;
            assert_eq!(
                segs.len(),
                quota,
                "supplier {i} ({class}) must receive exactly {quota} segments per period"
            );
            let mut prev: Option<u32> = None;
            for &s in segs {
                assert!((s as usize) < seen.len(), "segment {s} out of period range");
                assert!(!seen[s as usize], "segment {s} assigned twice");
                if let Some(p) = prev {
                    assert!(s > p, "segment list of supplier {i} must be ascending");
                }
                seen[s as usize] = true;
                prev = Some(s);
            }
        }
        assert!(
            seen.iter().all(|&b| b),
            "every segment of the period must be assigned"
        );
        let input_order = (0..classes.len()).collect();
        Ok(Assignment {
            classes,
            input_order,
            period,
            segments,
        })
    }

    pub(crate) fn from_sorted_parts(
        classes: Vec<PeerClass>,
        input_order: Vec<usize>,
        segments: Vec<Vec<u32>>,
    ) -> Result<Self> {
        let mut a = Assignment::from_parts(classes, segments)?;
        a.input_order = input_order;
        Ok(a)
    }

    /// Number of participating suppliers `n`.
    pub fn supplier_count(&self) -> usize {
        self.classes.len()
    }

    /// The assignment period `2^(ℓ-1)` in segments, where `ℓ` is the lowest
    /// supplier class.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Class of supplier slot `i` (descending-bandwidth order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= supplier_count()`.
    pub fn class_of(&self, i: usize) -> PeerClass {
        self.classes[i]
    }

    /// All supplier classes in slot order.
    pub fn classes(&self) -> &[PeerClass] {
        &self.classes
    }

    /// Index of supplier slot `i` in the caller's original supplier list
    /// (algorithms sort by bandwidth internally).
    ///
    /// # Panics
    ///
    /// Panics if `i >= supplier_count()`.
    pub fn input_index(&self, i: usize) -> usize {
        self.input_order[i]
    }

    /// The per-period segments transmitted by supplier slot `i`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i >= supplier_count()`.
    pub fn segments_of(&self, i: usize) -> &[u32] {
        &self.segments[i]
    }

    /// Which supplier slot transmits segment `seg` (segment numbers are
    /// global; the period is applied internally).
    pub fn supplier_of_segment(&self, seg: u64) -> usize {
        let s = (seg % self.period as u64) as u32;
        self.segments
            .iter()
            .position(|list| list.binary_search(&s).is_ok())
            .expect("assignment partitions the period")
    }

    /// Iterates over `(slot, class, per-period segments)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, PeerClass, &[u32])> + '_ {
        self.classes
            .iter()
            .zip(&self.segments)
            .enumerate()
            .map(|(i, (&c, s))| (i, c, s.as_slice()))
    }

    /// The minimum buffering delay of this assignment in units of `δt`
    /// (paper: the interval between the start of transmission and the start
    /// of playback needed for continuous playback).
    pub fn buffering_delay_slots(&self) -> u32 {
        schedule::min_delay_slots(self)
    }

    /// The minimum buffering delay as wall-clock time for a given `δt`.
    pub fn buffering_delay(&self, dt: SegmentDuration) -> Duration {
        dt.slots(self.buffering_delay_slots())
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "assignment over {} suppliers, period {} segments, delay {}·δt:",
            self.supplier_count(),
            self.period,
            self.buffering_delay_slots()
        )?;
        for (i, c, segs) in self.iter() {
            writeln!(f, "  slot {i} ({c}): segments {segs:?}")?;
        }
        Ok(())
    }
}

/// Computes the session period `2^(ℓ-1)` for a supplier set, validating the
/// aggregate-bandwidth precondition `Σ b_i = R0`.
///
/// # Errors
///
/// * [`Error::NoSuppliers`] for an empty list.
/// * [`Error::BandwidthMismatch`] if offers do not sum to exactly `R0`.
pub fn session_period(classes: &[PeerClass]) -> Result<u32> {
    if classes.is_empty() {
        return Err(Error::NoSuppliers);
    }
    let mut total = Bandwidth::ZERO;
    for c in classes {
        total = total
            .checked_add(c.bandwidth())
            .ok_or(Error::BandwidthMismatch { offered: total })?;
    }
    if !total.is_full_rate() {
        return Err(Error::BandwidthMismatch { offered: total });
    }
    let lowest = classes.iter().max().expect("non-empty");
    Ok(lowest.slots_per_segment())
}

/// Sorts supplier classes descending by bandwidth (ascending class number),
/// stably, returning `(sorted_classes, input_order)`.
pub(crate) fn sort_by_bandwidth(classes: &[PeerClass]) -> (Vec<PeerClass>, Vec<usize>) {
    let mut order: Vec<usize> = (0..classes.len()).collect();
    order.sort_by_key(|&i| classes[i].get());
    let sorted = order.iter().map(|&i| classes[i]).collect();
    (sorted, order)
}

#[cfg(test)]
pub(crate) fn classes_of(raw: &[u8]) -> Vec<PeerClass> {
    raw.iter().map(|&k| PeerClass::new(k).unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_duration_conversions() {
        let dt = SegmentDuration::from_secs(2);
        assert_eq!(dt.as_millis(), 2_000);
        assert_eq!(Duration::from(dt), Duration::from_millis(2_000));
        assert_eq!(dt.slots(3), Duration::from_millis(6_000));
        assert_eq!(format!("{dt}"), "δt=2000ms");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_segment_duration_panics() {
        let _ = SegmentDuration::from_millis(0);
    }

    #[test]
    fn session_period_requires_full_rate() {
        assert_eq!(session_period(&classes_of(&[1])).unwrap(), 1);
        assert_eq!(session_period(&classes_of(&[2, 2])).unwrap(), 2);
        assert_eq!(session_period(&classes_of(&[2, 3, 4, 4])).unwrap(), 8);
        assert!(matches!(
            session_period(&classes_of(&[2])),
            Err(Error::BandwidthMismatch { .. })
        ));
        assert!(matches!(
            session_period(&classes_of(&[1, 2])),
            Err(Error::BandwidthMismatch { .. })
        ));
        assert!(matches!(session_period(&[]), Err(Error::NoSuppliers)));
    }

    #[test]
    fn from_parts_validates_partition() {
        let classes = classes_of(&[2, 2]);
        let a = Assignment::from_parts(classes.clone(), vec![vec![0], vec![1]]).unwrap();
        assert_eq!(a.period(), 2);
        assert_eq!(a.supplier_count(), 2);
        assert_eq!(a.segments_of(0), &[0]);
        assert_eq!(a.input_index(1), 1);
        assert_eq!(a.supplier_of_segment(0), 0);
        assert_eq!(a.supplier_of_segment(3), 1);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_segment_panics() {
        let _ = Assignment::from_parts(classes_of(&[2, 2]), vec![vec![0], vec![0]]);
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn wrong_quota_panics() {
        let _ = Assignment::from_parts(classes_of(&[2, 2]), vec![vec![0, 1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn descending_segments_panic() {
        // classes [2,3,3]: period 4, quotas 2/1/1 — supplier 0's list is
        // the right length but out of order.
        let classes = classes_of(&[2, 3, 3]);
        let _ = Assignment::from_parts(classes, vec![vec![1, 0], vec![2], vec![3]]);
    }

    #[test]
    fn sort_by_bandwidth_is_stable() {
        let classes = classes_of(&[4, 2, 4, 3]);
        let (sorted, order) = sort_by_bandwidth(&classes);
        assert_eq!(sorted, classes_of(&[2, 3, 4, 4]));
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn display_lists_slots() {
        let a = Assignment::from_parts(classes_of(&[1]), vec![vec![0]]).unwrap();
        let text = format!("{a}");
        assert!(text.contains("slot 0"));
        assert!(text.contains("period 1"));
    }
}
