//! Model-level value types: peer identifiers, classes and bandwidth.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// Opaque identifier for a peer.
///
/// # Examples
///
/// ```
/// use p2ps_core::PeerId;
///
/// let a = PeerId::new(7);
/// assert_eq!(a.get(), 7);
/// assert_eq!(format!("{a}"), "peer-7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PeerId(u64);

impl PeerId {
    /// Wraps a raw identifier.
    pub const fn new(id: u64) -> Self {
        PeerId(id)
    }

    /// Returns the raw identifier.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

impl From<u64> for PeerId {
    fn from(v: u64) -> Self {
        PeerId(v)
    }
}

/// A peer's bandwidth class (paper §2(3)).
///
/// A class-`k` peer offers out-bound bandwidth `R0 / 2^(k-1)` where `R0` is
/// the media playback rate. Class 1 is the *highest* class (offers the full
/// rate); larger numbers are lower classes. The special power-of-two value
/// set is what keeps media data assignment out of bin-packing territory
/// (paper footnote 2).
///
/// # Examples
///
/// ```
/// use p2ps_core::{Bandwidth, PeerClass};
///
/// let c1 = PeerClass::new(1)?;
/// let c2 = PeerClass::new(2)?;
/// assert_eq!(c1.bandwidth(), Bandwidth::FULL_RATE);
/// assert_eq!(c2.bandwidth() + c2.bandwidth(), Bandwidth::FULL_RATE);
/// assert!(c1.is_higher_than(c2));
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerClass(u8);

impl PeerClass {
    /// The lowest (numerically largest) supported class.
    ///
    /// Classes up to 16 keep bandwidth arithmetic exact in the fixed-point
    /// representation used by [`Bandwidth`]; the paper's evaluation uses
    /// four classes.
    pub const MAX: u8 = 16;

    /// The highest class (offers the full playback rate `R0`).
    pub const HIGHEST: PeerClass = PeerClass(1);

    /// Creates a class from its number.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidClass`] unless `1 <= k <= PeerClass::MAX`.
    pub fn new(k: u8) -> Result<Self> {
        if (1..=Self::MAX).contains(&k) {
            Ok(PeerClass(k))
        } else {
            Err(Error::InvalidClass { value: k })
        }
    }

    /// The class number (`1` is highest).
    pub const fn get(self) -> u8 {
        self.0
    }

    /// The out-bound bandwidth offered by a peer of this class:
    /// `R0 / 2^(k-1)`.
    pub const fn bandwidth(self) -> Bandwidth {
        Bandwidth(Bandwidth::FULL_RATE.0 >> (self.0 - 1))
    }

    /// Transmission time of one segment in units of the segment playback
    /// time `δt`: a class-`k` supplier needs `2^(k-1)` slots per segment.
    pub const fn slots_per_segment(self) -> u32 {
        1 << (self.0 - 1)
    }

    /// Whether `self` is a higher class (more bandwidth) than `other`.
    pub const fn is_higher_than(self, other: PeerClass) -> bool {
        self.0 < other.0
    }

    /// Iterator over all classes `1 ..= num_classes`, highest first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidClassCount`] unless
    /// `1 <= num_classes <= PeerClass::MAX`.
    pub fn all(num_classes: u8) -> Result<impl DoubleEndedIterator<Item = PeerClass> + Clone> {
        if !(1..=Self::MAX).contains(&num_classes) {
            return Err(Error::InvalidClassCount { value: num_classes });
        }
        Ok((1..=num_classes).map(PeerClass))
    }
}

impl fmt::Display for PeerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class-{}", self.0)
    }
}

impl TryFrom<u8> for PeerClass {
    type Error = Error;

    fn try_from(v: u8) -> Result<Self> {
        PeerClass::new(v)
    }
}

impl From<PeerClass> for u8 {
    fn from(c: PeerClass) -> u8 {
        c.0
    }
}

/// Out-bound bandwidth in exact fixed-point units of `R0 / 2^16`.
///
/// All bandwidths appearing in the model are sums of `R0 / 2^(k-1)` terms,
/// so this representation is exact: aggregating offers and comparing the
/// total against the playback rate never suffers floating-point error.
///
/// # Examples
///
/// ```
/// use p2ps_core::{Bandwidth, PeerClass};
///
/// let half = PeerClass::new(2)?.bandwidth();
/// let quarter = PeerClass::new(3)?.bandwidth();
/// assert_eq!(half + quarter + quarter, Bandwidth::FULL_RATE);
/// assert_eq!(Bandwidth::FULL_RATE.fraction_of_rate(), 1.0);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u32);

impl Bandwidth {
    /// Number of fractional bits in the fixed-point representation.
    pub const FRACTION_BITS: u32 = 16;

    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// The full playback rate `R0`.
    pub const FULL_RATE: Bandwidth = Bandwidth(1 << Self::FRACTION_BITS);

    /// Creates a bandwidth from raw fixed-point units of `R0 / 2^16`.
    pub const fn from_raw(units: u32) -> Self {
        Bandwidth(units)
    }

    /// The raw fixed-point value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// This bandwidth as a fraction of the playback rate (`1.0 == R0`).
    pub fn fraction_of_rate(self) -> f64 {
        self.0 as f64 / Self::FULL_RATE.0 as f64
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Bandwidth) -> Option<Bandwidth> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Bandwidth(v)),
            None => None,
        }
    }

    /// Whether this is exactly the playback rate.
    pub const fn is_full_rate(self) -> bool {
        self.0 == Self::FULL_RATE.0
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}·R0", self.fraction_of_rate())
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;

    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;

    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_bounds() {
        assert!(PeerClass::new(0).is_err());
        assert!(PeerClass::new(1).is_ok());
        assert!(PeerClass::new(16).is_ok());
        assert!(PeerClass::new(17).is_err());
    }

    #[test]
    fn class_bandwidth_halves_per_class() {
        for k in 1..PeerClass::MAX {
            let hi = PeerClass::new(k).unwrap().bandwidth();
            let lo = PeerClass::new(k + 1).unwrap().bandwidth();
            assert_eq!(lo + lo, hi, "class {k} vs {}", k + 1);
        }
    }

    #[test]
    fn class_ordering_and_display() {
        let c1 = PeerClass::new(1).unwrap();
        let c4 = PeerClass::new(4).unwrap();
        assert!(c1.is_higher_than(c4));
        assert!(!c4.is_higher_than(c1));
        assert!(!c1.is_higher_than(c1));
        assert_eq!(format!("{c1}"), "class-1");
        assert_eq!(format!("{c4}"), "class-4");
    }

    #[test]
    fn slots_per_segment() {
        assert_eq!(PeerClass::HIGHEST.slots_per_segment(), 1);
        assert_eq!(PeerClass::new(4).unwrap().slots_per_segment(), 8);
    }

    #[test]
    fn all_classes_iterator() {
        let v: Vec<u8> = PeerClass::all(4).unwrap().map(PeerClass::get).collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
        assert!(PeerClass::all(0).is_err());
        assert!(PeerClass::all(17).is_err());
    }

    #[test]
    fn try_from_round_trips() {
        let c = PeerClass::try_from(3).unwrap();
        assert_eq!(u8::from(c), 3);
        assert!(PeerClass::try_from(0).is_err());
    }

    #[test]
    fn bandwidth_arithmetic_is_exact() {
        let b4 = PeerClass::new(4).unwrap().bandwidth();
        let sum: Bandwidth = std::iter::repeat_n(b4, 8).sum();
        assert!(sum.is_full_rate());
        assert_eq!(sum, Bandwidth::FULL_RATE);
    }

    #[test]
    fn bandwidth_fraction() {
        assert_eq!(Bandwidth::ZERO.fraction_of_rate(), 0.0);
        assert_eq!(Bandwidth::FULL_RATE.fraction_of_rate(), 1.0);
        assert_eq!(
            PeerClass::new(2).unwrap().bandwidth().fraction_of_rate(),
            0.5
        );
    }

    #[test]
    fn bandwidth_saturating_and_checked() {
        let b = PeerClass::new(2).unwrap().bandwidth();
        assert_eq!(Bandwidth::ZERO.saturating_sub(b), Bandwidth::ZERO);
        assert_eq!(Bandwidth::FULL_RATE.saturating_sub(b), b);
        assert_eq!(b.checked_add(b), Some(Bandwidth::FULL_RATE));
        assert_eq!(Bandwidth::from_raw(u32::MAX).checked_add(b), None);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(format!("{}", Bandwidth::FULL_RATE), "1.0000·R0");
    }

    #[test]
    fn peer_id_basics() {
        let id = PeerId::from(3);
        assert_eq!(id, PeerId::new(3));
        assert_eq!(id.get(), 3);
        assert_eq!(format!("{id}"), "peer-3");
        assert_eq!(PeerId::default().get(), 0);
    }
}
