//! System streaming capacity (paper §2(4)).

use serde::{Deserialize, Serialize};

use crate::{Bandwidth, PeerClass};

/// Tracks the total streaming capacity of the system:
/// `C(t) = Σ_{supplying peers} b_out / R0` — the number of simultaneous
/// full-rate streaming sessions the supplier population can provide.
///
/// The tracker counts *all* supplying peers regardless of whether they are
/// currently busy, exactly as the paper's definition does; it is the figure
/// plotted on the y-axis of the paper's Figures 4 and 8.
///
/// # Examples
///
/// ```
/// use p2ps_core::{CapacityTracker, PeerClass};
///
/// let mut cap = CapacityTracker::new();
/// cap.add_supplier(PeerClass::new(1)?); // R0      -> 1.0 sessions
/// cap.add_supplier(PeerClass::new(2)?); // R0/2    -> 0.5 sessions
/// cap.add_supplier(PeerClass::new(2)?);
/// assert_eq!(cap.sessions(), 2.0);
/// assert_eq!(cap.supplier_count(), 3);
/// # Ok::<(), p2ps_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CapacityTracker {
    /// Total bandwidth in raw fixed-point units; u64 so ~2^48 class-1
    /// suppliers fit without overflow.
    total_raw: u64,
    suppliers: u64,
}

impl CapacityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CapacityTracker::default()
    }

    /// Registers a new supplying peer of the given class.
    pub fn add_supplier(&mut self, class: PeerClass) {
        self.total_raw += class.bandwidth().raw() as u64;
        self.suppliers += 1;
    }

    /// Removes a supplying peer of the given class (e.g. peer departure).
    ///
    /// # Panics
    ///
    /// Panics if more bandwidth is removed than was added — that would mean
    /// the caller's bookkeeping of which peers are suppliers is corrupt.
    pub fn remove_supplier(&mut self, class: PeerClass) {
        let raw = class.bandwidth().raw() as u64;
        assert!(
            self.total_raw >= raw && self.suppliers > 0,
            "removing a supplier that was never added"
        );
        self.total_raw -= raw;
        self.suppliers -= 1;
    }

    /// Number of registered supplying peers.
    pub fn supplier_count(&self) -> u64 {
        self.suppliers
    }

    /// Capacity in simultaneous full-rate sessions (may be fractional).
    pub fn sessions(&self) -> f64 {
        self.total_raw as f64 / Bandwidth::FULL_RATE.raw() as f64
    }

    /// Capacity in whole sessions (floor of [`sessions`](Self::sessions)),
    /// i.e. how many requesting peers could be admitted right now if every
    /// supplier were idle.
    pub fn whole_sessions(&self) -> u64 {
        self.total_raw / Bandwidth::FULL_RATE.raw() as u64
    }

    /// Total aggregated out-bound bandwidth in raw fixed-point units.
    pub fn total_raw(&self) -> u64 {
        self.total_raw
    }
}

impl std::fmt::Display for CapacityTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} sessions across {} suppliers",
            self.sessions(),
            self.suppliers
        )
    }
}

impl Extend<PeerClass> for CapacityTracker {
    fn extend<T: IntoIterator<Item = PeerClass>>(&mut self, iter: T) {
        for c in iter {
            self.add_supplier(c);
        }
    }
}

impl FromIterator<PeerClass> for CapacityTracker {
    fn from_iter<T: IntoIterator<Item = PeerClass>>(iter: T) -> Self {
        let mut cap = CapacityTracker::new();
        cap.extend(iter);
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(k: u8) -> PeerClass {
        PeerClass::new(k).unwrap()
    }

    #[test]
    fn paper_figure3_example() {
        // Two class-2 and two class-1 peers: 0.5+0.5+1+1 ... the paper's
        // Figure 3 uses two class-2 and two class-1 suppliers for capacity 1
        // under its axis; here we verify the arithmetic of the definition:
        let cap: CapacityTracker = [class(2), class(2), class(1), class(1)]
            .into_iter()
            .collect();
        assert_eq!(cap.sessions(), 3.0);

        // Four suppliers of classes 2,2,1,1 in the paper's figure add to
        // capacity 1 only if classes are 2,2,3,3 — the published figure is
        // schematic. With 2,2,3,3:
        let cap: CapacityTracker = [class(2), class(2), class(3), class(3)]
            .into_iter()
            .collect();
        assert_eq!(cap.sessions(), 1.5);
        assert_eq!(cap.whole_sessions(), 1);
    }

    #[test]
    fn add_remove_round_trips() {
        let mut cap = CapacityTracker::new();
        cap.add_supplier(class(1));
        cap.add_supplier(class(4));
        assert_eq!(cap.supplier_count(), 2);
        cap.remove_supplier(class(4));
        assert_eq!(cap.sessions(), 1.0);
        cap.remove_supplier(class(1));
        assert_eq!(cap, CapacityTracker::new());
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn removing_unknown_supplier_panics() {
        let mut cap = CapacityTracker::new();
        cap.remove_supplier(class(1));
    }

    #[test]
    fn paper_maximum_capacity() {
        // 100 class-1 seeds + 50,000 peers at 10/10/40/40% of classes 1-4
        // (paper §5.1) gives 100 + 50_000 * 0.3 = 15_100 sessions.
        let mut cap = CapacityTracker::new();
        for _ in 0..100 {
            cap.add_supplier(class(1));
        }
        for _ in 0..5_000 {
            cap.add_supplier(class(1));
            cap.add_supplier(class(2));
        }
        for _ in 0..20_000 {
            cap.add_supplier(class(3));
            cap.add_supplier(class(4));
        }
        assert_eq!(cap.sessions(), 15_100.0);
        assert_eq!(cap.supplier_count(), 50_100);
    }

    #[test]
    fn display_mentions_sessions() {
        let cap: CapacityTracker = [class(1)].into_iter().collect();
        assert!(format!("{cap}").contains("1.00 sessions"));
    }
}
