//! Crate error type.

use std::fmt;

/// Errors produced by the core model and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A peer class outside `1 ..= PeerClass::MAX` was requested.
    InvalidClass {
        /// The rejected raw class value.
        value: u8,
    },
    /// A class system with zero classes or more than [`crate::PeerClass::MAX`]
    /// classes was requested.
    InvalidClassCount {
        /// The rejected number of classes.
        value: u8,
    },
    /// The aggregated supplier bandwidth does not equal the playback rate
    /// `R0`, so no continuous streaming session is possible (paper §3
    /// requires `Σ b_i = R0`).
    BandwidthMismatch {
        /// Aggregated offer of the proposed supplier set.
        offered: crate::Bandwidth,
    },
    /// An empty supplier set was provided where at least one supplier is
    /// required.
    NoSuppliers,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidClass { value } => {
                write!(
                    f,
                    "peer class {value} is outside the valid range 1..={}",
                    crate::PeerClass::MAX
                )
            }
            Error::InvalidClassCount { value } => {
                write!(
                    f,
                    "class count {value} is outside the valid range 1..={}",
                    crate::PeerClass::MAX
                )
            }
            Error::BandwidthMismatch { offered } => {
                write!(
                    f,
                    "aggregated supplier bandwidth {offered} does not equal the playback rate"
                )
            }
            Error::NoSuppliers => write!(f, "at least one supplying peer is required"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bandwidth;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidClass { value: 0 };
        assert!(e.to_string().contains("class 0"));
        let e = Error::BandwidthMismatch {
            offered: Bandwidth::ZERO,
        };
        assert!(e.to_string().contains("does not equal"));
        let e = Error::NoSuppliers;
        assert!(e.to_string().contains("at least one"));
        let e = Error::InvalidClassCount { value: 200 };
        assert!(e.to_string().contains("200"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
