//! Integration tests driving a live reactor thread over loopback TCP.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use p2ps_net::{ConnId, Ctx, Handler, Reactor, ReactorConfig};

/// Replies to every received chunk, closes idle connections after a read
/// timeout, and emits a one-byte "tick" on a pacing timer.
struct TestHandler {
    read_timeout_ms: u64,
    ticks: Option<(u64, u32)>, // (interval_ms, count)
    closed: Arc<AtomicUsize>,
}

const K_READ: u32 = 0;
const K_TICK: u32 = 1;

impl Handler for TestHandler {
    type Cmd = ();

    fn on_command(&mut self, _ctx: &mut Ctx<'_>, _cmd: ()) {}

    fn on_accept(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _tag: u64) {
        ctx.set_timer(conn, K_READ, self.read_timeout_ms);
        if let Some((interval, _)) = self.ticks {
            ctx.set_timer(conn, K_TICK, interval);
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        ctx.set_timer(conn, K_READ, self.read_timeout_ms); // reset
        if data == b"bye" {
            ctx.send(conn, Bytes::from(&b"!"[..]));
            ctx.close_after_flush(conn);
            return;
        }
        ctx.send(conn, Bytes::from(data.to_vec()));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, kind: u32) {
        match kind {
            K_READ => ctx.close(conn),
            K_TICK => {
                ctx.send(conn, Bytes::from(&b"t"[..]));
                if let Some((interval, ref mut left)) = self.ticks {
                    *left -= 1;
                    if *left > 0 {
                        ctx.set_timer(conn, K_TICK, interval);
                    } else {
                        ctx.close_after_flush(conn);
                    }
                }
            }
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_close(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {
        self.closed.fetch_add(1, Ordering::Relaxed);
    }
}

fn start(
    handler_cfg: (u64, Option<(u64, u32)>),
) -> (
    std::net::SocketAddr,
    p2ps_net::Handle<()>,
    std::thread::JoinHandle<std::io::Result<()>>,
    Arc<AtomicUsize>,
) {
    let (reactor, handle) = Reactor::new(ReactorConfig::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    handle.add_listener(listener, 7).unwrap();
    let closed = Arc::new(AtomicUsize::new(0));
    let closed2 = Arc::clone(&closed);
    let (read_timeout_ms, ticks) = handler_cfg;
    let thread = std::thread::spawn(move || {
        reactor.run(&mut TestHandler {
            read_timeout_ms,
            ticks,
            closed: closed2,
        })
    });
    (addr, handle, thread, closed)
}

#[test]
fn many_echo_clients_on_one_thread() {
    let (addr, handle, thread, _) = start((60_000, None));
    let mut clients: Vec<TcpStream> = (0..100)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();
    // Interleave writes across every client before reading any reply:
    // a serial server would deadlock or stall here.
    for (i, c) in clients.iter_mut().enumerate() {
        c.write_all(format!("hello-{i}").as_bytes()).unwrap();
    }
    for (i, c) in clients.iter_mut().enumerate() {
        let expected = format!("hello-{i}");
        let mut buf = vec![0u8; expected.len()];
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.read_exact(&mut buf).unwrap();
        assert_eq!(buf, expected.as_bytes());
    }
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn read_timeout_closes_idle_connections_without_blocking_others() {
    let (addr, handle, thread, closed) = start((100, None));
    let mut idle = TcpStream::connect(addr).unwrap();
    let mut active = TcpStream::connect(addr).unwrap();
    let start_t = Instant::now();
    // The active client keeps chatting while the idle one times out.
    for _ in 0..5 {
        active.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        active
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        active.read_exact(&mut buf).unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    assert!(start_t.elapsed() >= Duration::from_millis(150));
    // By now the idle connection must have been closed by its timer.
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(idle.read(&mut buf).unwrap(), 0, "idle conn saw EOF");
    handle.shutdown();
    thread.join().unwrap().unwrap();
    assert_eq!(
        closed.load(Ordering::Relaxed),
        0,
        "timer closes are handler-initiated: no on_close"
    );
}

#[test]
fn pacing_timers_deliver_on_schedule_then_flush_close() {
    let (addr, handle, thread, _) = start((60_000, Some((20, 5))));
    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let start_t = Instant::now();
    let mut got = Vec::new();
    let mut buf = [0u8; 16];
    loop {
        match c.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
    let elapsed = start_t.elapsed();
    assert_eq!(got, b"ttttt", "five paced ticks then EOF");
    assert!(
        elapsed >= Duration::from_millis(95),
        "5 ticks at 20 ms spacing cannot finish in {elapsed:?}"
    );
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn peer_close_notifies_handler() {
    let (addr, handle, thread, closed) = start((60_000, None));
    let c = TcpStream::connect(addr).unwrap();
    // Make sure the conn is registered before we drop it.
    std::thread::sleep(Duration::from_millis(50));
    drop(c);
    let deadline = Instant::now() + Duration::from_secs(5);
    while closed.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(closed.load(Ordering::Relaxed), 1, "handler saw the close");
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn close_after_flush_delivers_the_goodbye_byte() {
    let (addr, handle, thread, _) = start((60_000, None));
    for _ in 0..10 {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"bye").unwrap();
        let mut all = Vec::new();
        c.read_to_end(&mut all).unwrap();
        assert_eq!(all, b"!", "reply arrives before the close");
    }
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn listeners_can_come_and_go_at_runtime() {
    let (addr1, handle, thread, _) = start((60_000, None));
    let extra = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr2 = extra.local_addr().unwrap();
    handle.add_listener(extra, 8).unwrap();
    for addr in [addr1, addr2] {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        c.read_exact(&mut buf).unwrap();
    }
    handle.remove_listener(8);
    // Removal is asynchronous; poll until connects start failing or the
    // accepted conn is never served. After removal the OS refuses new
    // connections to addr2 once the listener socket is closed.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut refused = false;
    while Instant::now() < deadline {
        match TcpStream::connect_timeout(&addr2, Duration::from_millis(200)) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(refused, "removed listener keeps accepting");
    handle.shutdown();
    thread.join().unwrap().unwrap();
}
