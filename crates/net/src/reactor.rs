//! The event loop: nonblocking sockets, buffered writes, timers.
//!
//! One [`Reactor`] thread multiplexes any number of listeners and
//! connections through level-triggered epoll. The reactor owns the
//! *transport* half of every connection — accept, nonblocking reads,
//! a per-connection outbound queue of [`Bytes`] chunks flushed with
//! vectored writes, interest management, and a coarse [`TimerWheel`] —
//! while a [`Handler`] owns the *protocol* half (typically a
//! `p2ps_proto::FrameDecoder` per connection). Bytes go up via
//! [`Handler::on_data`]; frames come back down as zero-copy chunks via
//! [`Ctx::send`]; deadlines (read timeouts, paced segment transmissions)
//! are [`Ctx::set_timer`] round trips.
//!
//! Other threads talk to a running reactor through its cloneable
//! [`Handle`]: registering listeners, delivering typed commands to the
//! handler, and shutdown — all woken through a self-pipe so the epoll
//! wait never has to poll.

use std::collections::HashMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use p2ps_monitor::{Counter, Gauge, Monitor};
use p2ps_proto::{ChunkQueue, MAX_GATHER_SLICES};

use crate::sys::{Epoll, Event, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::TimerWheel;

/// Tuning knobs for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Timer wheel granularity in milliseconds.
    pub tick_ms: u64,
    /// Timer wheel size (one rotation spans `tick_ms · wheel_slots` ms).
    pub wheel_slots: usize,
    /// A connection whose outbound queue exceeds this many bytes is
    /// treated as a dead-slow consumer and closed.
    pub max_write_buffer: usize,
    /// Longest epoll sleep when no timer is due sooner (bounds shutdown
    /// latency even if a wake-up is somehow lost).
    pub idle_wait_ms: u64,
    /// Introspection scope this reactor registers its transport metrics
    /// on (connection count, queued write bytes, timer backlog, byte
    /// counters). Defaults to a detached root, so an unwired reactor
    /// costs only the relaxed atomic updates; [`crate::ReactorPool`]
    /// replaces it with a per-shard `reactor={i}` child scope.
    pub monitor: Monitor,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            tick_ms: 2,
            wheel_slots: 512,
            max_write_buffer: 64 * 1024 * 1024,
            idle_wait_ms: 100,
            monitor: Monitor::default(),
        }
    }
}

/// Identifies one live connection. Slot indices are reused, so the id
/// carries a generation: operations on a stale id are silently ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId {
    idx: u32,
    gen: u32,
}

/// The protocol side of a reactor: invoked for every transport event.
///
/// Callbacks run on the reactor thread. They may call any [`Ctx`] method,
/// including closing the very connection being dispatched (remaining
/// events for it are dropped).
pub trait Handler {
    /// Typed commands other threads deliver through [`Handle::send`].
    type Cmd: Send + 'static;

    /// A command arrived from a [`Handle`].
    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: Self::Cmd);

    /// A listener registered with `tag` accepted `conn`.
    fn on_accept(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, listener_tag: u64);

    /// Bytes arrived on `conn`. Fragmentation is arbitrary; feed them to
    /// an incremental decoder.
    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]);

    /// A timer armed with [`Ctx::set_timer`] for `kind` fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, kind: u32);

    /// `conn` is gone: the peer closed it, an I/O error occurred, or its
    /// outbound queue overran [`ReactorConfig::max_write_buffer`]. Not
    /// called for closes the handler itself requested via [`Ctx::close`]
    /// or [`Ctx::close_after_flush`]. The connection is already removed;
    /// `Ctx` calls on it are no-ops.
    fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId);
}

enum Control<C> {
    AddListener(TcpListener, u64),
    RemoveListener(u64),
    User(C),
}

/// A cloneable remote control for a running [`Reactor`].
pub struct Handle<C> {
    tx: Sender<Control<C>>,
    waker: Arc<UnixStream>,
    stop: Arc<AtomicBool>,
}

impl<C> Clone for Handle<C> {
    fn clone(&self) -> Self {
        Handle {
            tx: self.tx.clone(),
            waker: Arc::clone(&self.waker),
            stop: Arc::clone(&self.stop),
        }
    }
}

impl<C> std::fmt::Debug for Handle<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl<C> Handle<C> {
    /// Hands a bound listener to the reactor; accepted connections reach
    /// the handler's `on_accept` with `tag`. The listener is switched to
    /// nonblocking here, before it crosses threads.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` error; delivery itself cannot
    /// fail while the reactor lives (and is silently dropped after
    /// shutdown, like every other control).
    pub fn add_listener(&self, listener: TcpListener, tag: u64) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        self.push(Control::AddListener(listener, tag));
        Ok(())
    }

    /// Removes (and drops) the listener registered with `tag`. Already
    /// accepted connections are unaffected.
    pub fn remove_listener(&self, tag: u64) {
        self.push(Control::RemoveListener(tag));
    }

    /// Delivers a typed command to the handler.
    pub fn send(&self, cmd: C) {
        self.push(Control::User(cmd));
    }

    /// Asks the reactor to exit its run loop. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.wake();
    }

    fn push(&self, ctl: Control<C>) {
        if self.tx.send(ctl).is_ok() {
            self.wake();
        }
    }

    fn wake(&self) {
        // One byte on the self-pipe; WouldBlock means a wake-up is
        // already pending, which is just as good.
        crate::sys::record_write();
        let _ = (&*self.waker).write(&[1u8]);
    }
}

const BASE_INTEREST: u32 = EPOLLIN | EPOLLRDHUP;

struct Conn {
    stream: TcpStream,
    /// Outbound queue: the gather/partial-advance bookkeeping is the
    /// shared `p2ps_proto::ChunkQueue`, the same type the blocking
    /// `FrameEncoder` drains through.
    wq: ChunkQueue,
    interest: u32,
    /// kind → sequence number of the one live timer of that kind.
    timers: HashMap<u32, u64>,
    close_after_flush: bool,
    closing: bool,
    /// Deliver `on_close` at sweep time (peer/error closes only).
    notify: bool,
}

#[derive(Debug, Clone, Copy)]
struct TimerKey {
    idx: u32,
    gen: u32,
    kind: u32,
    seq: u64,
}

/// Transport metrics registered on the reactor's monitor scope at
/// construction time. Every update below is one relaxed atomic — the
/// event loop takes no lock for any of them (the registration lock is
/// only held once, inside [`Reactor::new`]).
struct Stats {
    /// Live connections on this reactor (accepted + adopted − closed).
    connections: Gauge,
    /// Bytes sitting in outbound queues, not yet accepted by sockets.
    queued_write_bytes: Gauge,
    /// Armed entries in the timer wheel (refreshed once per loop turn).
    timer_entries: Gauge,
    /// Total bytes read from sockets.
    bytes_read: Counter,
    /// Total bytes the kernel accepted from outbound queues.
    bytes_written: Counter,
    /// Connections accepted from listeners.
    accepts: Counter,
    /// Typed commands delivered through [`Handle::send`].
    commands: Counter,
    /// Timer callbacks actually dispatched to the handler.
    timer_fires: Counter,
    /// `read` syscalls this reactor issued (sockets + self-pipe).
    sys_reads: Counter,
    /// `writev` syscalls this reactor issued flushing outbound queues.
    sys_writevs: Counter,
    /// `accept` syscalls this reactor issued (incl. the EWOULDBLOCK probe).
    sys_accepts: Counter,
    /// `epoll_wait` calls this reactor's loop made.
    sys_epoll_waits: Counter,
}

impl Stats {
    fn register(monitor: &Monitor) -> Stats {
        Stats {
            connections: monitor.gauge("connections", "live connections on this reactor"),
            queued_write_bytes: monitor.gauge(
                "queued_write_bytes",
                "outbound bytes queued but not yet accepted by sockets",
            ),
            timer_entries: monitor.gauge("timer_entries", "armed entries in the timer wheel"),
            bytes_read: monitor.counter("bytes_read_total", "bytes read from sockets"),
            bytes_written: monitor.counter("bytes_written_total", "bytes written to sockets"),
            accepts: monitor.counter("accepts_total", "connections accepted from listeners"),
            commands: monitor.counter("commands_total", "typed commands delivered to the handler"),
            timer_fires: monitor.counter("timer_fires_total", "timer callbacks dispatched"),
            sys_reads: monitor.counter("syscalls_read_total", "read syscalls issued"),
            sys_writevs: monitor.counter("syscalls_writev_total", "writev syscalls issued"),
            sys_accepts: monitor.counter("syscalls_accept_total", "accept syscalls issued"),
            sys_epoll_waits: monitor.counter("syscalls_epoll_wait_total", "epoll_wait calls made"),
        }
    }
}

struct Inner {
    epoll: Epoll,
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    listeners: Vec<Option<(TcpListener, u64)>>,
    wheel: TimerWheel<TimerKey>,
    closing: Vec<u32>,
    next_seq: u64,
    start: Instant,
    cfg: ReactorConfig,
    stats: Stats,
}

const TAG_LISTENER: u64 = 1 << 62;
const TAG_CONN: u64 = 2 << 62;
const TOK_WAKER: u64 = u64::MAX;
const GEN_MASK: u64 = (1 << 30) - 1;

fn tok_listener(idx: u32) -> u64 {
    TAG_LISTENER | u64::from(idx)
}

fn tok_conn(idx: u32, gen: u32) -> u64 {
    TAG_CONN | ((u64::from(gen) & GEN_MASK) << 32) | u64::from(idx)
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn valid(&self, id: ConnId) -> bool {
        let idx = id.idx as usize;
        idx < self.conns.len()
            && self.gens[idx] == id.gen
            && self.conns[idx].as_ref().is_some_and(|c| !c.closing)
    }

    fn conn_mut(&mut self, id: ConnId) -> Option<&mut Conn> {
        if !self.valid(id) {
            return None;
        }
        self.conns[id.idx as usize].as_mut()
    }

    fn alloc(&mut self, stream: TcpStream) -> io::Result<ConnId> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                (self.conns.len() - 1) as u32
            }
        };
        let gen = self.gens[idx as usize];
        self.epoll
            .add(stream.as_raw_fd(), tok_conn(idx, gen), BASE_INTEREST)?;
        self.conns[idx as usize] = Some(Conn {
            stream,
            wq: ChunkQueue::new(),
            interest: BASE_INTEREST,
            timers: HashMap::new(),
            close_after_flush: false,
            closing: false,
            notify: false,
        });
        self.stats.connections.add(1);
        Ok(ConnId { idx, gen })
    }

    fn mark_closing(&mut self, id: ConnId, notify: bool) {
        if let Some(conn) = self.conn_mut(id) {
            conn.closing = true;
            conn.notify = notify;
            self.closing.push(id.idx);
        }
    }

    /// Flushes as much of the outbound queue as the socket accepts.
    /// Returns false when the connection errored (already marked).
    fn flush(&mut self, id: ConnId) -> bool {
        loop {
            {
                let Some(conn) = self.conn_mut(id) else {
                    return true;
                };
                if conn.wq.pending_bytes() == 0 {
                    conn.wq.clear(); // zero-length chunks carry no bytes
                    let close = conn.close_after_flush;
                    self.set_writable_interest(id, false);
                    if close {
                        self.mark_closing(id, false);
                    }
                    return true;
                }
            }
            crate::sys::record_writev();
            self.stats.sys_writevs.incr();
            let res = {
                let Some(conn) = self.conn_mut(id) else {
                    return true;
                };
                let mut slices: [IoSlice<'_>; MAX_GATHER_SLICES] =
                    [IoSlice::new(&[]); MAX_GATHER_SLICES];
                let count = conn.wq.gather(&mut slices);
                (&conn.stream).write_vectored(&slices[..count])
            };
            match res {
                Ok(0) => {
                    self.mark_closing(id, true);
                    return false;
                }
                Ok(n) => {
                    if let Some(conn) = self.conn_mut(id) {
                        conn.wq.advance(n);
                    }
                    self.stats.queued_write_bytes.add(-(n as i64));
                    self.stats.bytes_written.add(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_writable_interest(id, true);
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.mark_closing(id, true);
                    return false;
                }
            }
        }
    }

    fn set_writable_interest(&mut self, id: ConnId, on: bool) {
        let Some(conn) = self.conn_mut(id) else {
            return;
        };
        let want = if on {
            BASE_INTEREST | EPOLLOUT
        } else {
            BASE_INTEREST
        };
        if conn.interest != want {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.epoll.modify(fd, tok_conn(id.idx, id.gen), want);
        }
    }
}

/// Reactor-side context handed to every [`Handler`] callback.
pub struct Ctx<'a> {
    inner: &'a mut Inner,
}

impl Ctx<'_> {
    /// Queues one chunk on `conn`'s outbound queue and flushes
    /// opportunistically. Chunks are written in order with vectored
    /// writes; a `Bytes` view (e.g. a `FrameEncoder` payload chunk) is
    /// never copied, only sliced as the socket drains it.
    ///
    /// Silently ignored on a stale or closing connection. A queue that
    /// overruns [`ReactorConfig::max_write_buffer`] closes the connection
    /// (the handler sees `on_close`).
    pub fn send(&mut self, conn: ConnId, chunk: Bytes) {
        if self.enqueue(conn, chunk) {
            self.inner.flush(conn);
        }
    }

    /// Like [`send`](Self::send) for a multi-chunk frame: every chunk is
    /// queued before the one opportunistic flush, so a frame header and
    /// its payload leave in a single `writev` (one syscall, one packet on
    /// a `TCP_NODELAY` socket) instead of one flush per chunk.
    pub fn send_all<I: IntoIterator<Item = Bytes>>(&mut self, conn: ConnId, chunks: I) {
        let mut queued = false;
        for chunk in chunks {
            if !self.enqueue(conn, chunk) {
                return; // stale, closing, or overran the write buffer
            }
            queued = true;
        }
        if queued {
            self.inner.flush(conn);
        }
    }

    /// Appends one chunk; true when the connection is live and under its
    /// write-buffer limit afterwards.
    fn enqueue(&mut self, conn: ConnId, chunk: Bytes) -> bool {
        let limit = self.inner.cfg.max_write_buffer;
        let len = chunk.len();
        let Some(c) = self.inner.conn_mut(conn) else {
            return false;
        };
        c.wq.push(chunk);
        let over = c.wq.pending_bytes() > limit;
        self.inner.stats.queued_write_bytes.add(len as i64);
        if over {
            self.inner.mark_closing(conn, true);
            return false;
        }
        true
    }

    /// Adopts an already-connected outbound stream into the reactor: the
    /// stream is switched to nonblocking, registered with epoll and
    /// handled exactly like an accepted connection (reads surface via
    /// [`Handler::on_data`], writes queue through [`send`](Self::send)).
    ///
    /// This is how client-side sessions (e.g. a requesting peer's
    /// supplier connections) become reactor-hosted: some other thread
    /// performs the blocking connect/handshake, then ships the stream to
    /// the reactor inside a typed command, whose handler adopts it. Any
    /// bytes already buffered in the kernel are reported on the next
    /// event-loop turn (level-triggered readiness).
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` / epoll registration failures; the
    /// stream is dropped (closed) on error.
    pub fn adopt(&mut self, stream: TcpStream) -> io::Result<ConnId> {
        self.inner.alloc(stream)
    }

    /// Closes `conn` now, discarding any unsent bytes. The handler gets
    /// no `on_close` for a close it asked for.
    pub fn close(&mut self, conn: ConnId) {
        if let Some(c) = self.inner.conn_mut(conn) {
            let discarded = c.wq.pending_bytes();
            c.wq.clear();
            self.inner.stats.queued_write_bytes.add(-(discarded as i64));
        }
        self.inner.mark_closing(conn, false);
    }

    /// Closes `conn` once its outbound queue has fully drained (for
    /// "reply then hang up" exchanges). No `on_close` is delivered.
    pub fn close_after_flush(&mut self, conn: ConnId) {
        let Some(c) = self.inner.conn_mut(conn) else {
            return;
        };
        if c.wq.pending_bytes() == 0 {
            self.inner.mark_closing(conn, false);
        } else {
            c.close_after_flush = true;
        }
    }

    /// Arms (or re-arms, replacing the previous deadline) the `kind`
    /// timer of `conn` to fire in `delay_ms` milliseconds. Granularity is
    /// the wheel tick: the timer fires at or after the deadline, never
    /// before.
    pub fn set_timer(&mut self, conn: ConnId, kind: u32, delay_ms: u64) {
        let deadline = self.inner.now_ms() + delay_ms;
        let seq = self.inner.next_seq;
        self.inner.next_seq += 1;
        let Some(c) = self.inner.conn_mut(conn) else {
            return;
        };
        c.timers.insert(kind, seq);
        self.inner.wheel.insert(
            deadline,
            TimerKey {
                idx: conn.idx,
                gen: conn.gen,
                kind,
                seq,
            },
        );
    }

    /// Disarms the `kind` timer of `conn`, if armed.
    pub fn cancel_timer(&mut self, conn: ConnId, kind: u32) {
        if let Some(c) = self.inner.conn_mut(conn) {
            c.timers.remove(&kind);
        }
    }

    /// Milliseconds since the reactor started (the timescale of
    /// [`set_timer`](Self::set_timer) deadlines).
    pub fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    /// Bytes queued but not yet accepted by `conn`'s socket — the
    /// backpressure signal for pacing decisions.
    pub fn pending_write_bytes(&self, conn: ConnId) -> usize {
        if !self.inner.valid(conn) {
            return 0;
        }
        self.inner.conns[conn.idx as usize]
            .as_ref()
            .map_or(0, |c| c.wq.pending_bytes())
    }

    /// Number of live connections.
    pub fn conn_count(&self) -> usize {
        self.inner
            .conns
            .iter()
            .flatten()
            .filter(|c| !c.closing)
            .count()
    }
}

/// A single-threaded epoll event loop generic over the handler's command
/// type. See the [crate docs](crate) for the division of labor.
///
/// # Examples
///
/// An echo server on one reactor thread:
///
/// ```
/// use p2ps_net::{Ctx, ConnId, Handler, Reactor, ReactorConfig};
/// use std::io::{Read, Write};
///
/// struct Echo;
/// impl Handler for Echo {
///     type Cmd = ();
///     fn on_command(&mut self, _: &mut Ctx<'_>, _: ()) {}
///     fn on_accept(&mut self, _: &mut Ctx<'_>, _: ConnId, _: u64) {}
///     fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
///         ctx.send(conn, bytes::Bytes::from(data.to_vec()));
///     }
///     fn on_timer(&mut self, _: &mut Ctx<'_>, _: ConnId, _: u32) {}
///     fn on_close(&mut self, _: &mut Ctx<'_>, _: ConnId) {}
/// }
///
/// let (reactor, handle) = Reactor::new(ReactorConfig::default())?;
/// let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
/// let addr = listener.local_addr()?;
/// handle.add_listener(listener, 0)?;
/// let thread = std::thread::spawn(move || reactor.run(&mut Echo));
///
/// let mut client = std::net::TcpStream::connect(addr)?;
/// client.write_all(b"ping")?;
/// let mut buf = [0u8; 4];
/// client.read_exact(&mut buf)?;
/// assert_eq!(&buf, b"ping");
///
/// handle.shutdown();
/// thread.join().unwrap()?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Reactor<C> {
    inner: Inner,
    rx: Receiver<Control<C>>,
    waker_rx: UnixStream,
    stop: Arc<AtomicBool>,
}

impl<C> std::fmt::Debug for Reactor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("conns", &self.inner.conns.iter().flatten().count())
            .finish()
    }
}

impl<C: Send + 'static> Reactor<C> {
    /// Creates a reactor and its [`Handle`]. Nothing runs until
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Propagates epoll / self-pipe creation errors.
    pub fn new(cfg: ReactorConfig) -> io::Result<(Self, Handle<C>)> {
        let epoll = Epoll::new()?;
        let (waker_tx, waker_rx) = UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        epoll.add(waker_rx.as_raw_fd(), TOK_WAKER, EPOLLIN)?;
        let (tx, rx) = std::sync::mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Stats::register(&cfg.monitor);
        let reactor = Reactor {
            inner: Inner {
                epoll,
                conns: Vec::new(),
                gens: Vec::new(),
                free: Vec::new(),
                listeners: Vec::new(),
                wheel: TimerWheel::new(cfg.tick_ms, cfg.wheel_slots),
                closing: Vec::new(),
                next_seq: 0,
                start: Instant::now(),
                cfg,
                stats,
            },
            rx,
            waker_rx,
            stop: Arc::clone(&stop),
        };
        let handle = Handle {
            tx,
            waker: Arc::new(waker_tx),
            stop,
        };
        Ok((reactor, handle))
    }

    /// Runs the event loop until [`Handle::shutdown`]. Every connection
    /// and listener is dropped (closed) on exit.
    ///
    /// # Errors
    ///
    /// Only fatal `epoll_wait` failures; per-connection errors surface as
    /// [`Handler::on_close`] instead.
    pub fn run<H: Handler<Cmd = C>>(mut self, handler: &mut H) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<TimerKey> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        while !self.stop.load(Ordering::Relaxed) {
            let now = self.inner.now_ms();
            let timeout = self
                .inner
                .wheel
                .next_timeout_ms(now, self.inner.cfg.idle_wait_ms)
                .min(i32::MAX as u64) as i32;
            self.inner.epoll.wait(&mut events, timeout)?;
            self.inner.stats.sys_epoll_waits.incr();
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            for ev in events.drain(..) {
                if ev.token == TOK_WAKER {
                    self.drain_waker();
                    self.process_controls(handler);
                } else if ev.token & TAG_CONN != 0 {
                    let idx = (ev.token & 0xffff_ffff) as u32;
                    let gen = ((ev.token >> 32) & GEN_MASK) as u32;
                    let id = ConnId { idx, gen };
                    if ev.is_readable() {
                        self.read_ready(id, handler, &mut scratch);
                    }
                    if ev.is_writable() {
                        self.inner.flush(id);
                    }
                } else if ev.token & TAG_LISTENER != 0 {
                    let idx = (ev.token & 0xffff_ffff) as usize;
                    self.accept_ready(idx, handler);
                }
            }
            let now = self.inner.now_ms();
            self.inner.wheel.advance(now, &mut fired);
            for key in fired.drain(..) {
                self.fire_timer(key, handler);
            }
            self.sweep_closed(handler);
            self.inner
                .stats
                .timer_entries
                .set(self.inner.wheel.len() as i64);
        }
        Ok(())
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            crate::sys::record_read();
            self.inner.stats.sys_reads.incr();
            if !matches!((&self.waker_rx).read(&mut buf), Ok(n) if n > 0) {
                return;
            }
        }
    }

    fn process_controls<H: Handler<Cmd = C>>(&mut self, handler: &mut H) {
        while let Ok(ctl) = self.rx.try_recv() {
            match ctl {
                Control::AddListener(listener, tag) => {
                    let idx = self
                        .inner
                        .listeners
                        .iter()
                        .position(Option::is_none)
                        .unwrap_or_else(|| {
                            self.inner.listeners.push(None);
                            self.inner.listeners.len() - 1
                        });
                    match self.inner.epoll.add(
                        listener.as_raw_fd(),
                        tok_listener(idx as u32),
                        EPOLLIN,
                    ) {
                        Ok(()) => self.inner.listeners[idx] = Some((listener, tag)),
                        Err(e) => {
                            // The caller's add_listener already returned:
                            // this must not vanish silently — dropping the
                            // listener closes a port someone was handed.
                            eprintln!(
                                "p2ps-net: failed to register listener (tag {tag}) with epoll: {e}; \
                                 the listener is closed and its port will refuse connections"
                            );
                        }
                    }
                }
                Control::RemoveListener(tag) => {
                    for slot in &mut self.inner.listeners {
                        if slot.as_ref().is_some_and(|(_, t)| *t == tag) {
                            if let Some((listener, _)) = slot.take() {
                                let _ = self.inner.epoll.delete(listener.as_raw_fd());
                            }
                        }
                    }
                }
                Control::User(cmd) => {
                    self.inner.stats.commands.incr();
                    let mut ctx = Ctx {
                        inner: &mut self.inner,
                    };
                    handler.on_command(&mut ctx, cmd);
                }
            }
        }
    }

    fn accept_ready<H: Handler<Cmd = C>>(&mut self, lidx: usize, handler: &mut H) {
        loop {
            crate::sys::record_accept();
            self.inner.stats.sys_accepts.incr();
            let accepted = match self.inner.listeners.get(lidx).and_then(Option::as_ref) {
                Some((listener, tag)) => (listener.accept(), *tag),
                None => return,
            };
            match accepted {
                (Ok((stream, _peer)), tag) => {
                    let Ok(id) = self.inner.alloc(stream) else {
                        continue;
                    };
                    self.inner.stats.accepts.incr();
                    let mut ctx = Ctx {
                        inner: &mut self.inner,
                    };
                    handler.on_accept(&mut ctx, id, tag);
                }
                (Err(e), _) if e.kind() == io::ErrorKind::WouldBlock => return,
                (Err(e), _) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient per-connection accept failures (ECONNABORTED
                // etc.): skip this one, keep the listener.
                (Err(_), _) => return,
            }
        }
    }

    fn read_ready<H: Handler<Cmd = C>>(&mut self, id: ConnId, handler: &mut H, scratch: &mut [u8]) {
        // Level-triggered epoll re-reports unread data, so a bounded
        // number of reads per event keeps one firehose connection from
        // starving the rest.
        for _ in 0..8 {
            if !self.inner.valid(id) {
                return;
            }
            crate::sys::record_read();
            self.inner.stats.sys_reads.incr();
            let res = {
                let conn = self.inner.conns[id.idx as usize].as_ref().expect("valid");
                (&conn.stream).read(scratch)
            };
            match res {
                Ok(0) => {
                    self.inner.mark_closing(id, true);
                    return;
                }
                Ok(n) => {
                    self.inner.stats.bytes_read.add(n as u64);
                    let mut ctx = Ctx {
                        inner: &mut self.inner,
                    };
                    handler.on_data(&mut ctx, id, &scratch[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.inner.mark_closing(id, true);
                    return;
                }
            }
        }
    }

    fn fire_timer<H: Handler<Cmd = C>>(&mut self, key: TimerKey, handler: &mut H) {
        let id = ConnId {
            idx: key.idx,
            gen: key.gen,
        };
        let Some(conn) = self.inner.conn_mut(id) else {
            return; // connection gone or recycled: stale timer
        };
        // Only the latest arming of this kind is live; older ones were
        // cancelled or replaced.
        if conn.timers.get(&key.kind) != Some(&key.seq) {
            return;
        }
        conn.timers.remove(&key.kind);
        self.inner.stats.timer_fires.incr();
        let mut ctx = Ctx {
            inner: &mut self.inner,
        };
        handler.on_timer(&mut ctx, id, key.kind);
    }

    fn sweep_closed<H: Handler<Cmd = C>>(&mut self, handler: &mut H) {
        // A connection marked twice appears twice in the list; the second
        // pop finds its slot already empty and moves on.
        while let Some(idx) = self.inner.closing.pop() {
            let Some(conn) = self.inner.conns[idx as usize].take() else {
                continue;
            };
            let gen = self.inner.gens[idx as usize];
            let notify = conn.notify;
            let _ = self.inner.epoll.delete(conn.stream.as_raw_fd());
            self.inner.gens[idx as usize] = (gen + 1) & (GEN_MASK as u32);
            self.inner.free.push(idx);
            self.inner.stats.connections.add(-1);
            self.inner
                .stats
                .queued_write_bytes
                .add(-(conn.wq.pending_bytes() as i64));
            drop(conn); // closes the socket
            if notify {
                let mut ctx = Ctx {
                    inner: &mut self.inner,
                };
                handler.on_close(&mut ctx, ConnId { idx, gen });
            }
        }
    }
}
