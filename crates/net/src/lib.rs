//! A minimal Linux epoll reactor for nonblocking `std::net` sockets.
//!
//! The paper's capacity-amplification argument (§3–§4) only pays off when
//! one supplier process can hold many concurrent streaming sessions and
//! the lookup service can absorb flash-crowd query storms. Thread-per-
//! connection cannot get there; this crate provides the event-driven
//! substrate that can:
//!
//! * [`sys`] — the epoll syscalls behind a safe wrapper. The build
//!   environment has no crates.io (no `mio`, no `libc`), so the three
//!   entry points are declared `extern "C"` directly. **This is the only
//!   module in the workspace containing `unsafe`**, it is small, and it
//!   is unit-tested directly.
//! * [`TimerWheel`] — coarse hashed-wheel deadlines for read timeouts and
//!   §3 paced segment transmissions, thousands of timers at O(1) insert.
//! * [`Reactor`] / [`Handler`] / [`Ctx`] — the event loop: level-
//!   triggered readiness, per-connection buffered writes of zero-copy
//!   [`bytes::Bytes`] chunks, timer dispatch, adoption of outbound
//!   connections ([`Ctx::adopt`]), and a cloneable [`Handle`] for
//!   cross-thread listener registration, typed commands and shutdown.
//! * [`ReactorPool`] / [`PoolHandle`] — multi-reactor sharding for >1
//!   core: N reactors, each with its own handler instance, with
//!   listeners, commands and the connections they create hash-routed to
//!   one shard by key.
//!
//! The reactor is deliberately *sans protocol*: it moves raw bytes and
//! deadlines. Framing lives in `p2ps_proto`'s `FrameDecoder` /
//! `FrameEncoder`, and the directory / supplier state machines live in
//! `p2ps_node` — each layer testable without the others.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod reactor;
#[allow(unsafe_code)]
pub mod sys;
mod timer;

pub use pool::{PoolHandle, ReactorPool};
pub use reactor::{ConnId, Ctx, Handle, Handler, Reactor, ReactorConfig};
pub use timer::TimerWheel;
