//! A coarse single-level timer wheel.
//!
//! The reactor needs two kinds of deadlines — per-connection read
//! timeouts and paced segment transmissions (§3's `(p+1)·spp·δt` arrival
//! schedule) — at thousands-of-timers scale. A hashed wheel gives O(1)
//! insert and O(slots) sweep per rotation: each timer lands in the slot
//! of its deadline tick modulo the wheel size; far-future timers simply
//! stay in their slot across rotations until their deadline tick comes
//! around.
//!
//! Cancellation is the caller's job (the reactor stamps every key with a
//! sequence number and drops stale fires), which keeps the wheel itself
//! trivially simple.

/// A coarse timer wheel over millisecond deadlines.
///
/// # Examples
///
/// ```
/// use p2ps_net::TimerWheel;
///
/// let mut wheel: TimerWheel<&'static str> = TimerWheel::new(2, 256);
/// wheel.insert(10, "read-timeout");
/// wheel.insert(4, "pace");
/// let mut fired = Vec::new();
/// wheel.advance(5, &mut fired);
/// assert_eq!(fired, vec!["pace"]);
/// wheel.advance(10, &mut fired);
/// assert_eq!(fired, vec!["pace", "read-timeout"]);
/// ```
#[derive(Debug)]
pub struct TimerWheel<K> {
    slots: Vec<Vec<(u64, K)>>,
    tick_ms: u64,
    /// Next tick to sweep; every deadline below `cursor * tick_ms` has
    /// already fired.
    cursor: u64,
    len: usize,
}

impl<K> TimerWheel<K> {
    /// A wheel with `slots` buckets of `tick_ms` granularity (one
    /// rotation spans `slots · tick_ms` milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` or `slots` is zero.
    pub fn new(tick_ms: u64, slots: usize) -> Self {
        assert!(tick_ms > 0, "tick must be positive");
        assert!(slots > 0, "wheel needs at least one slot");
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick_ms,
            cursor: 0,
            len: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `key` to fire once `advance` reaches `deadline_ms`.
    /// A deadline already in the past fires on the next `advance`.
    pub fn insert(&mut self, deadline_ms: u64, key: K) {
        // Round the deadline *up* to a tick so a timer never fires early,
        // and never behind the cursor so it cannot be missed.
        let tick = deadline_ms.div_ceil(self.tick_ms).max(self.cursor);
        let idx = (tick % self.slots.len() as u64) as usize;
        self.slots[idx].push((deadline_ms, key));
        self.len += 1;
    }

    /// Fires every timer with `deadline_ms <= now_ms` into `out`
    /// (appending; the caller owns draining it). Timers in a swept slot
    /// that belong to a later rotation stay put.
    pub fn advance(&mut self, now_ms: u64, out: &mut Vec<K>) {
        let now_tick = now_ms / self.tick_ms;
        if now_tick < self.cursor {
            return;
        }
        let n = self.slots.len() as u64;
        // A jump past a full rotation visits each slot exactly once.
        let sweeps = (now_tick - self.cursor + 1).min(n);
        for step in 0..sweeps {
            let idx = ((self.cursor + step) % n) as usize;
            let slot = &mut self.slots[idx];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].0 <= now_ms {
                    let (_, key) = slot.swap_remove(i);
                    out.push(key);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick + 1;
    }

    /// A coarse upper bound on how long the caller may sleep from
    /// `now_ms` without missing a deadline, capped at `cap_ms`. May be
    /// conservative (waking early is harmless; the next `advance` simply
    /// fires nothing).
    pub fn next_timeout_ms(&self, now_ms: u64, cap_ms: u64) -> u64 {
        if self.len == 0 {
            return cap_ms;
        }
        let n = self.slots.len() as u64;
        for off in 0..n {
            let tick = self.cursor + off;
            if !self.slots[(tick % n) as usize].is_empty() {
                return (tick * self.tick_ms).saturating_sub(now_ms).min(cap_ms);
            }
        }
        cap_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_windows_not_before() {
        let mut w: TimerWheel<u32> = TimerWheel::new(2, 8);
        w.insert(10, 1);
        let mut out = Vec::new();
        w.advance(9, &mut out);
        assert!(out.is_empty(), "not due yet");
        w.advance(10, &mut out);
        assert_eq!(out, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_timers_survive_rotations() {
        // 8 slots × 2 ms = 16 ms rotation; a 100 ms timer shares a slot
        // with near ones but must only fire at 100.
        let mut w: TimerWheel<&str> = TimerWheel::new(2, 8);
        w.insert(100, "far");
        w.insert(4, "near");
        let mut out = Vec::new();
        w.advance(50, &mut out);
        assert_eq!(out, vec!["near"]);
        out.clear();
        w.advance(99, &mut out);
        assert!(out.is_empty());
        w.advance(120, &mut out);
        assert_eq!(out, vec!["far"]);
    }

    #[test]
    fn past_deadlines_fire_immediately_even_after_a_jump() {
        let mut w: TimerWheel<u32> = TimerWheel::new(2, 8);
        let mut out = Vec::new();
        w.advance(1_000, &mut out); // move the cursor far ahead
        w.insert(5, 7); // already in the past
        w.advance(1_002, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn huge_jump_sweeps_every_slot_once() {
        let mut w: TimerWheel<u32> = TimerWheel::new(1, 4);
        for t in 0..100 {
            w.insert(t, t as u32);
        }
        let mut out = Vec::new();
        w.advance(1_000_000, &mut out);
        assert_eq!(out.len(), 100, "all timers fire on a giant jump");
        assert!(w.is_empty());
    }

    #[test]
    fn timeout_hint_is_never_late() {
        let mut w: TimerWheel<u32> = TimerWheel::new(2, 16);
        assert_eq!(w.next_timeout_ms(0, 100), 100, "empty wheel sleeps the cap");
        w.insert(20, 1);
        let hint = w.next_timeout_ms(0, 100);
        assert!(hint <= 20, "sleeping {hint} ms must not pass the deadline");
        assert!(hint > 0, "nothing is due yet");
        assert_eq!(w.next_timeout_ms(25, 100), 0, "overdue timer: do not sleep");
    }
}
