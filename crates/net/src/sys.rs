//! The epoll syscall surface — the **only** module in the workspace that
//! contains `unsafe` code.
//!
//! The build environment has no crates.io access, so there is no `libc` or
//! `mio` to lean on: the three epoll entry points (plus `close`) are
//! declared `extern "C"` directly against the C library the binary links
//! anyway. Everything unsafe is confined to this module and wrapped in the
//! safe [`Epoll`] type; the reactor above it is `#![deny(unsafe_code)]`
//! like the rest of the workspace. The module is unit-tested directly
//! (readiness on socket pairs, interest modification, deregistration,
//! error propagation).

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::sync::atomic::{AtomicU64, Ordering};

// ---- process-wide syscall counters ---------------------------------------
//
// Every kernel crossing the reactor makes is tallied here with one relaxed
// atomic increment (the counters are never used for synchronization). The
// totals feed the perf trajectory: `bench` snapshots them so a regression
// that doubles the syscalls per session fails `bench compare` even when
// wall-clock noise hides it.

static READS: AtomicU64 = AtomicU64::new(0);
static WRITES: AtomicU64 = AtomicU64::new(0);
static WRITEVS: AtomicU64 = AtomicU64::new(0);
static ACCEPTS: AtomicU64 = AtomicU64::new(0);
static EPOLL_WAITS: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide totals of the syscalls issued by every reactor
/// in this process (plus their cross-thread wake-up writes). Obtained
/// from [`syscall_counts`]; subtract two snapshots to meter a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyscallCounts {
    /// `read` calls (socket reads and self-pipe drains).
    pub reads: u64,
    /// Plain `write` calls (self-pipe wake-ups).
    pub writes: u64,
    /// `writev` calls (vectored flushes of outbound queues).
    pub writevs: u64,
    /// `accept` calls (including the final `EWOULDBLOCK` probe).
    pub accepts: u64,
    /// `epoll_wait` calls (including `EINTR` retries).
    pub epoll_waits: u64,
}

impl SyscallCounts {
    /// Total syscalls across all categories.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.writevs + self.accepts + self.epoll_waits
    }

    /// Component-wise difference against an `earlier` snapshot.
    pub fn since(&self, earlier: &SyscallCounts) -> SyscallCounts {
        SyscallCounts {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            writevs: self.writevs - earlier.writevs,
            accepts: self.accepts - earlier.accepts,
            epoll_waits: self.epoll_waits - earlier.epoll_waits,
        }
    }
}

/// Snapshots the process-wide syscall totals.
pub fn syscall_counts() -> SyscallCounts {
    SyscallCounts {
        reads: READS.load(Ordering::Relaxed),
        writes: WRITES.load(Ordering::Relaxed),
        writevs: WRITEVS.load(Ordering::Relaxed),
        accepts: ACCEPTS.load(Ordering::Relaxed),
        epoll_waits: EPOLL_WAITS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_read() {
    READS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_write() {
    WRITES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_writev() {
    WRITEVS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_accept() {
    ACCEPTS.fetch_add(1, Ordering::Relaxed);
}

/// The file is readable (or a peer hang-up / error makes `read` return
/// without blocking — those are folded into "readable" by [`Event`]).
pub const EPOLLIN: u32 = 0x001;
/// The file is writable.
pub const EPOLLOUT: u32 = 0x004;
/// An error condition happened on the file.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up happened on the file.
pub const EPOLLHUP: u32 = 0x010;
/// The peer closed its writing half of the connection.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// `struct epoll_event` from `<sys/epoll.h>`. Packed on x86-64 only,
/// exactly as the kernel ABI (and libc) define it.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct RawEpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEpollEvent) -> c_int;
    fn epoll_wait(
        epfd: c_int,
        events: *mut RawEpollEvent,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file was registered with.
    pub token: u64,
    /// The raw `EPOLL*` readiness bits.
    pub events: u32,
}

impl Event {
    /// Reading will not block: data, EOF, peer shutdown or a pending
    /// error (which `read` also surfaces without blocking).
    pub fn is_readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }

    /// Writing will not block (or will surface the pending error).
    pub fn is_writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }
}

/// A safe wrapper around one epoll instance.
///
/// # Examples
///
/// ```
/// use p2ps_net::sys::{Epoll, EPOLLIN};
/// use std::io::Write;
/// use std::os::fd::AsRawFd;
/// use std::os::unix::net::UnixStream;
///
/// let mut ep = Epoll::new()?;
/// let (mut a, b) = UnixStream::pair()?;
/// ep.add(b.as_raw_fd(), 7, EPOLLIN)?;
/// a.write_all(b"x")?;
/// let mut events = Vec::new();
/// ep.wait(&mut events, 1_000)?;
/// assert_eq!(events[0].token, 7);
/// assert!(events[0].is_readable());
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
    /// Kernel-filled scratch; sized once, reused every wait.
    buf: Vec<RawEpollEvent>,
}

// Vec<RawEpollEvent> has no Debug; keep the derive working.
impl std::fmt::Debug for RawEpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, data) = (self.events, self.data);
        write!(f, "RawEpollEvent {{ events: {events:#x}, data: {data} }}")
    }
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The `epoll_create1` errno as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flags integer and returns a new
        // fd or -1; no pointers are involved.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            fd,
            buf: vec![RawEpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    /// Registers `fd` with the given readiness interest and token.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno — in particular `EEXIST` for a doubly added
    /// fd and `EBADF` for a closed one.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Changes the interest set and token of a registered `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno — `ENOENT` if the fd was never added.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` errno — `ENOENT` if the fd was never added.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = RawEpollEvent {
            events,
            data: token,
        };
        // A null event pointer is the portable form for EPOLL_CTL_DEL
        // (pre-2.6.9 kernels faulted on non-null).
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut RawEpollEvent
        };
        // SAFETY: `ptr` is either null (DEL) or points at a live,
        // properly laid out RawEpollEvent for the duration of the call;
        // the kernel only reads it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, ptr) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits up to `timeout_ms` milliseconds (0 polls, negative blocks
    /// indefinitely) and fills `out` with the ready events. Retries
    /// transparently on `EINTR`.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` errno (other than `EINTR`).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        out.clear();
        let n = loop {
            EPOLL_WAITS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `buf` is a live allocation of `buf.len()` correctly
            // laid out events; the kernel writes at most that many.
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for raw in &self.buf[..n] {
            let raw = *raw; // copy out of the (possibly packed) slot
            out.push(Event {
                token: raw.data,
                events: raw.events,
            });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this instance and closed exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_write_with_the_registered_token() {
        let mut ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), 0xfeed, EPOLLIN).unwrap();

        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no data yet, no events");

        a.write_all(b"ping").unwrap();
        ep.wait(&mut events, 1_000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 0xfeed);
        assert!(events[0].is_readable());
        assert!(!events[0].is_writable(), "EPOLLOUT was not requested");
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let mut ep = Epoll::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), 1, EPOLLIN).unwrap();
        ep.modify(b.as_raw_fd(), 2, EPOLLOUT).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 1_000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 2, "modify replaces the token too");
        assert!(events[0].is_writable(), "an idle socket is writable");
    }

    #[test]
    fn delete_stops_notifications() {
        let mut ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), 3, EPOLLIN).unwrap();
        a.write_all(b"x").unwrap();
        ep.delete(b.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "deregistered fd must not report");
    }

    #[test]
    fn peer_close_reports_readable() {
        // EOF must wake a reader: the reactor relies on this to reap
        // connections whose peer went away.
        let mut ep = Epoll::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), 4, EPOLLIN | EPOLLRDHUP).unwrap();
        drop(a);
        let mut events = Vec::new();
        ep.wait(&mut events, 1_000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].is_readable());
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 0, "and the read sees EOF");
    }

    #[test]
    fn level_triggered_rereports_until_drained() {
        let mut ep = Epoll::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), 5, EPOLLIN).unwrap();
        a.write_all(b"abc").unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 1_000).unwrap();
        assert_eq!(events.len(), 1, "first report");
        ep.wait(&mut events, 1_000).unwrap();
        assert_eq!(events.len(), 1, "still readable, reported again");
        let mut buf = [0u8; 8];
        let _ = b.read(&mut buf).unwrap();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained, no further report");
    }

    #[test]
    fn errors_propagate_as_io_errors() {
        let ep = Epoll::new().unwrap();
        let bogus_fd = {
            let (s, _t) = UnixStream::pair().unwrap();
            s.as_raw_fd()
        }; // both ends dropped: the fd is closed by here
        assert!(ep.add(bogus_fd, 0, EPOLLIN).is_err(), "EBADF surfaces");
        let (_a, b) = UnixStream::pair().unwrap();
        assert!(
            ep.modify(b.as_raw_fd(), 0, EPOLLIN).is_err(),
            "ENOENT surfaces for a never-added fd"
        );
        assert!(ep.delete(b.as_raw_fd()).is_err());
    }

    #[test]
    fn zero_timeout_does_not_block() {
        let mut ep = Epoll::new().unwrap();
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(start.elapsed() < std::time::Duration::from_millis(100));
    }

    #[test]
    fn syscall_counters_record_and_diff() {
        let before = syscall_counts();
        record_read();
        record_write();
        record_writev();
        record_accept();
        let mut ep = Epoll::new().unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        let after = syscall_counts();
        let delta = after.since(&before);
        // Other tests run concurrently, so deltas are lower bounds.
        assert!(delta.reads >= 1);
        assert!(delta.writes >= 1);
        assert!(delta.writevs >= 1);
        assert!(delta.accepts >= 1);
        assert!(delta.epoll_waits >= 1);
        assert!(delta.total() >= 5);
    }
}
