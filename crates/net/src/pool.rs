//! Multi-reactor sharding: one event loop per core, hash-routed.
//!
//! A single [`Reactor`](crate::Reactor) thread already multiplexes
//! thousands of connections, but it is one core's worth of epoll wakeups,
//! decode work and `writev` flushes. A [`ReactorPool`] runs N identical
//! reactors — each with its **own** handler instance and its own timer
//! wheel — and shards work across them by key: a connection (or listener,
//! or whole protocol session) is pinned to the reactor its key hashes to,
//! so all of its events stay on one thread and handlers never need locks
//! between shards.
//!
//! The cross-thread face is [`PoolHandle`]: cloneable, cheap, and
//! source-compatible with single-reactor code — it is a vector of the
//! per-shard [`Handle`]s plus the hash routing. Callers that used one
//! `Handle` now ask the pool for [`PoolHandle::shard`] of their key and
//! use the returned `Handle` exactly as before.

use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::{Handle, Handler, Reactor, ReactorConfig};

/// Multiplies the routing key by a 64-bit odd constant (SplitMix64's
/// golden-gamma) and takes the top bits, so sequential keys — tags and
/// session ids are counters in practice — still spread evenly.
fn shard_of(key: u64, shards: usize) -> usize {
    let mixed = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mixed >> 32) as usize % shards
}

/// A cloneable remote control for a whole [`ReactorPool`]: per-shard
/// [`Handle`]s behind hash routing.
pub struct PoolHandle<C> {
    handles: Arc<[Handle<C>]>,
}

impl<C> Clone for PoolHandle<C> {
    fn clone(&self) -> Self {
        PoolHandle {
            handles: Arc::clone(&self.handles),
        }
    }
}

impl<C> std::fmt::Debug for PoolHandle<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle")
            .field("shards", &self.handles.len())
            .finish()
    }
}

impl<C> PoolHandle<C> {
    /// Number of reactor shards behind this handle.
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }

    /// The [`Handle`] of the shard `key` routes to. All operations for
    /// one key — listeners, commands, the connections they create — land
    /// on the same reactor thread, so per-key handler state needs no
    /// cross-shard synchronization.
    pub fn shard(&self, key: u64) -> &Handle<C> {
        &self.handles[shard_of(key, self.handles.len())]
    }

    /// The shard index `key` routes to — the `{i}` of the shard's
    /// `reactor={i}` monitor scope, letting callers register per-key
    /// metrics under the reactor that will host the key.
    pub fn shard_index(&self, key: u64) -> usize {
        shard_of(key, self.handles.len())
    }

    /// Every shard's [`Handle`], in shard order (for broadcasts).
    pub fn shards(&self) -> &[Handle<C>] {
        &self.handles
    }

    /// Asks every shard to exit its run loop. Idempotent.
    pub fn shutdown_all(&self) {
        for h in self.handles.iter() {
            h.shutdown();
        }
    }
}

/// N reactor threads, each running its own handler instance, sharded by
/// key hash. See the module docs above for the routing contract.
///
/// # Examples
///
/// Echo servers on two reactor threads, one listener each:
///
/// ```
/// use p2ps_net::{Ctx, ConnId, Handler, ReactorConfig, ReactorPool};
/// use std::io::{Read, Write};
///
/// struct Echo;
/// impl Handler for Echo {
///     type Cmd = ();
///     fn on_command(&mut self, _: &mut Ctx<'_>, _: ()) {}
///     fn on_accept(&mut self, _: &mut Ctx<'_>, _: ConnId, _: u64) {}
///     fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
///         ctx.send(conn, bytes::Bytes::from(data.to_vec()));
///     }
///     fn on_timer(&mut self, _: &mut Ctx<'_>, _: ConnId, _: u32) {}
///     fn on_close(&mut self, _: &mut Ctx<'_>, _: ConnId) {}
/// }
///
/// let pool = ReactorPool::spawn(2, ReactorConfig::default(), |_shard| Echo)?;
/// let handle = pool.handle();
/// let mut addrs = Vec::new();
/// for tag in 0..2u64 {
///     let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
///     addrs.push(listener.local_addr()?);
///     handle.shard(tag).add_listener(listener, tag)?;
/// }
/// for addr in addrs {
///     let mut client = std::net::TcpStream::connect(addr)?;
///     client.write_all(b"ping")?;
///     let mut buf = [0u8; 4];
///     client.read_exact(&mut buf)?;
///     assert_eq!(&buf, b"ping");
/// }
/// pool.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ReactorPool<C> {
    handle: PoolHandle<C>,
    threads: Vec<JoinHandle<io::Result<()>>>,
}

impl<C> std::fmt::Debug for ReactorPool<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPool")
            .field("shards", &self.threads.len())
            .finish()
    }
}

impl<C: Send + 'static> ReactorPool<C> {
    /// Starts `threads` reactor threads (clamped to at least 1), calling
    /// `make_handler(shard_index)` once per shard for that thread's
    /// handler.
    ///
    /// # Errors
    ///
    /// Propagates epoll / self-pipe creation errors; already-started
    /// shards are shut down and joined before the error returns.
    pub fn spawn<H, F>(threads: usize, cfg: ReactorConfig, mut make_handler: F) -> io::Result<Self>
    where
        H: Handler<Cmd = C> + Send + 'static,
        F: FnMut(usize) -> H,
    {
        let shards = threads.max(1);
        let mut handles: Vec<Handle<C>> = Vec::with_capacity(shards);
        let mut joins: Vec<JoinHandle<io::Result<()>>> = Vec::with_capacity(shards);
        for i in 0..shards {
            // Each shard reports under its own `reactor={i}` scope of the
            // tree the caller passed in `cfg.monitor`.
            let mut cfg = cfg.clone();
            cfg.monitor = cfg.monitor.child("reactor", i);
            let (reactor, handle) = match Reactor::new(cfg) {
                Ok(pair) => pair,
                Err(e) => {
                    for h in &handles {
                        h.shutdown();
                    }
                    for j in joins {
                        let _ = j.join();
                    }
                    return Err(e);
                }
            };
            let mut handler = make_handler(i);
            let join = std::thread::Builder::new()
                .name(format!("p2ps-reactor-{i}"))
                .spawn(move || reactor.run(&mut handler))
                .expect("spawning a reactor thread cannot fail");
            handles.push(handle);
            joins.push(join);
        }
        Ok(ReactorPool {
            handle: PoolHandle {
                handles: handles.into(),
            },
            threads: joins,
        })
    }

    /// A cloneable cross-thread handle to every shard.
    pub fn handle(&self) -> PoolHandle<C> {
        self.handle.clone()
    }

    /// Number of reactor threads.
    pub fn shard_count(&self) -> usize {
        self.threads.len()
    }

    /// Stops every shard and joins its thread; all hosted connections and
    /// listeners drop.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.handle.shutdown_all();
        for join in self.threads.drain(..) {
            let _ = join.join();
        }
    }
}

impl<C> Drop for ReactorPool<C> {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.handle.shutdown_all();
            for join in self.threads.drain(..) {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 4, 16] {
            for key in 0..256u64 {
                let a = shard_of(key, shards);
                assert!(a < shards);
                assert_eq!(a, shard_of(key, shards), "stable");
            }
        }
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        let shards = 4;
        let mut hits = vec![0usize; shards];
        for key in 0..1_000u64 {
            hits[shard_of(key, shards)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                h > 1_000 / shards / 2,
                "shard {i} starved: {hits:?} (sequential keys must spread)"
            );
        }
    }
}
