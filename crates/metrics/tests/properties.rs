//! Property-based tests for the metrics substrate.

use proptest::prelude::*;

use p2ps_metrics::{Histogram, OnlineStats, StepSeries, TimeSeries, WindowedAverage};

proptest! {
    /// OnlineStats matches naive two-pass computations.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let stats: OnlineStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert_eq!(stats.count(), xs.len() as u64);
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.population_variance() - var).abs() < 1e-3 * (1.0 + var));
        prop_assert_eq!(stats.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(stats.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging any split of the samples equals processing them in one go.
    #[test]
    fn online_stats_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 0..100),
        split in any::<prop::sample::Index>(),
    ) {
        let cut = if xs.is_empty() { 0 } else { split.index(xs.len()) };
        let mut left: OnlineStats = xs[..cut].iter().copied().collect();
        let right: OnlineStats = xs[cut..].iter().copied().collect();
        left.merge(&right);
        let whole: OnlineStats = xs.iter().copied().collect();
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
    }

    /// Histogram conserves its sample count across buckets.
    #[test]
    fn histogram_conserves_count(xs in prop::collection::vec(-50f64..150.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs {
            h.record(x);
        }
        let bucketed: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucketed + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    /// Histogram quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(0f64..100.0, 1..200)) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs {
            h.record(x);
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let values: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
    }

    /// TimeSeries step lookup matches a naive linear scan.
    #[test]
    fn value_at_matches_linear_scan(
        deltas in prop::collection::vec(0f64..10.0, 1..50),
        values in prop::collection::vec(-100f64..100.0, 1..50),
        probe in -5f64..500.0,
    ) {
        let mut series = TimeSeries::new("s");
        let mut t = 0.0;
        let pairs: Vec<(f64, f64)> = deltas
            .iter()
            .zip(&values)
            .map(|(d, v)| {
                t += d;
                (t, *v)
            })
            .collect();
        series.extend(pairs.iter().copied());
        let naive = pairs.iter().rev().find(|(time, _)| *time <= probe).map(|(_, v)| *v);
        prop_assert_eq!(series.value_at(probe), naive);
    }

    /// Resampling preserves the value range of the step function.
    #[test]
    fn resample_stays_within_range(
        deltas in prop::collection::vec(0.1f64..5.0, 2..20),
        values in prop::collection::vec(-10f64..10.0, 2..20),
    ) {
        let mut series = TimeSeries::new("s");
        let mut t = 0.0;
        for (d, v) in deltas.iter().zip(&values) {
            t += d;
            series.push(t, *v);
        }
        let (lo, hi) = series.value_range().unwrap();
        let r = series.resample(0.0, t + 5.0, 0.5);
        for (_, v) in r.iter() {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    /// StepSeries current value equals the sum of all deltas.
    #[test]
    fn step_series_sums_deltas(deltas in prop::collection::vec(-100f64..100.0, 0..50)) {
        let mut s = StepSeries::new("cap", 0.0);
        let mut t = 0.0;
        let mut expected = 0.0;
        for d in &deltas {
            t += 1.0;
            s.add(t, *d);
            expected += d;
        }
        prop_assert!((s.current() - expected).abs() < 1e-9);
    }

    /// WindowedAverage: the grand total of (mean × count) per window equals
    /// the sum of all recorded values.
    #[test]
    fn windowed_average_conserves_mass(
        obs in prop::collection::vec((0f64..100.0, -50f64..50.0), 0..100),
        width in 0.5f64..20.0,
    ) {
        let mut w = WindowedAverage::new("w", width);
        let mut counts = std::collections::HashMap::new();
        for (t, v) in &obs {
            w.record(*t, *v);
            *counts.entry((t / width) as usize).or_insert(0u64) += 1;
        }
        let mut total_from_windows = 0.0;
        for (idx, n) in counts {
            total_from_windows += w.window_mean(idx).unwrap() * n as f64;
        }
        let direct: f64 = obs.iter().map(|(_, v)| v).sum();
        prop_assert!((total_from_windows - direct).abs() < 1e-6 * (1.0 + direct.abs()));
    }
}
