//! Linear-bucket histogram.

use serde::{Deserialize, Serialize};

/// A fixed-range, linear-bucket histogram with saturating overflow buckets.
///
/// The simulator uses histograms for per-peer quantities such as the number
/// of rejections before admission or the buffering delay (in units of `δt`),
/// where the interesting range is small and known in advance.
///
/// Values below the range land in an underflow bucket; values at or above
/// the upper bound land in an overflow bucket. Percentile queries treat the
/// underflow bucket as the range minimum and the overflow bucket as the
/// range maximum.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [1.0, 1.5, 2.0, 9.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_count(1.0), 2); // bucket [1, 2)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `n` equal buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded observations (exact, not bucket-estimated).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Count in the bucket containing `x`, or the under/overflow bucket if
    /// `x` is out of range.
    pub fn bucket_count(&self, x: f64) -> u64 {
        if x < self.lo {
            self.underflow
        } else if x >= self.hi {
            self.overflow
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[idx]
        }
    }

    /// Count of observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) using bucket midpoints.
    ///
    /// Returns `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * w);
            }
        }
        Some(self.hi)
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs, excluding the
    /// under/overflow buckets.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * w, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.999);
        h.record(9.999);
        assert_eq!(h.bucket_count(0.5), 2);
        assert_eq!(h.bucket_count(9.5), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn underflow_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(1.0);
        h.record(2.0);
        h.record(30.0); // overflow still contributes to the exact mean
        assert!((h.mean() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0, "median was {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.5);
        assert!(h.quantile(1.0).unwrap() >= 99.0);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 1);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn iter_yields_all_buckets() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(2.5);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(0.0, 0), (1.0, 0), (2.0, 1), (3.0, 0)]);
    }
}
