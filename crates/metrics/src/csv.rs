//! Minimal CSV emission.

use std::io::{self, Write};

use crate::TimeSeries;

/// Writes aligned series and raw rows as CSV to any [`Write`] sink.
///
/// Good enough for the experiment harness (numeric cells only, no quoting).
/// A `&mut Vec<u8>` or a `File` both work as sinks.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::{CsvWriter, TimeSeries};
///
/// let mut a = TimeSeries::new("dac");
/// a.push(0.0, 1.0);
/// a.push(1.0, 2.0);
/// let mut buf = Vec::new();
/// CsvWriter::new(&mut buf).write_series("t", &[&a])?;
/// let text = String::from_utf8(buf).unwrap();
/// assert!(text.starts_with("t,dac\n"));
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct CsvWriter<W> {
    sink: W,
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a sink. A `mut` reference also works because `&mut W: Write`.
    pub fn new(sink: W) -> Self {
        CsvWriter { sink }
    }

    /// Writes one raw row of cells.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_row<I, S>(&mut self, cells: I) -> io::Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for cell in cells {
            if !first {
                self.sink.write_all(b",")?;
            }
            self.sink.write_all(cell.as_ref().as_bytes())?;
            first = false;
        }
        self.sink.write_all(b"\n")
    }

    /// Writes several series sharing a time axis: one header row
    /// (`time_label, name1, name2, …`) then one row per time point of the
    /// *first* series, sampling the others with step semantics.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the first series is empty.
    pub fn write_series(&mut self, time_label: &str, series: &[&TimeSeries]) -> io::Result<()> {
        assert!(!series.is_empty(), "need at least one series");
        assert!(
            !series[0].is_empty(),
            "the reference series must be non-empty"
        );
        let mut header = vec![time_label.to_owned()];
        header.extend(series.iter().map(|s| s.name().to_owned()));
        self.write_row(header.iter().map(String::as_str))?;
        for (t, v0) in series[0].iter() {
            let mut row = vec![format_num(t), format_num(v0)];
            for s in &series[1..] {
                let v = s.value_at(t);
                row.push(match v {
                    Some(v) => format_num(v),
                    None => String::new(),
                });
            }
            self.write_row(row.iter().map(String::as_str))?;
        }
        Ok(())
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

fn format_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_rows() {
        let mut buf = Vec::new();
        let mut w = CsvWriter::new(&mut buf);
        w.write_row(["a", "b"]).unwrap();
        w.write_row(["1", "2"]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n");
    }

    #[test]
    fn write_aligned_series() {
        let mut a = TimeSeries::new("a");
        a.push(0.0, 1.0);
        a.push(2.0, 3.0);
        let mut b = TimeSeries::new("b");
        b.push(1.0, 10.0);
        let mut buf = Vec::new();
        CsvWriter::new(&mut buf)
            .write_series("t", &[&a, &b])
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        // at t=0 series b has no value yet -> empty cell
        assert_eq!(text, "t,a,b\n0,1,\n2,3,10\n");
    }

    #[test]
    fn integer_like_values_render_without_decimals() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(3.5), "3.500000");
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_series_list_panics() {
        let mut buf = Vec::new();
        let _ = CsvWriter::new(&mut buf).write_series("t", &[]);
    }

    #[test]
    fn into_inner_round_trips() {
        let buf: Vec<u8> = Vec::new();
        let w = CsvWriter::new(buf);
        assert!(w.into_inner().is_empty());
    }
}
