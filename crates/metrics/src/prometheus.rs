//! Prometheus text exposition (format version 0.0.4).
//!
//! [`PrometheusText`] is an incremental builder: callers feed it one
//! sample at a time (family name, kind, help text, label pairs, value)
//! in whatever order their data structure yields them, and [`render`]
//! groups the samples by family so each family's `# HELP`/`# TYPE`
//! header is emitted exactly once, followed by its samples in insertion
//! order. Label values are escaped per the exposition-format rules
//! (backslash, double quote, newline).
//!
//! [`render`]: PrometheusText::render

use std::collections::HashMap;
use std::fmt::Write as _;

/// Metric kind advertised in a family's `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing value; resets only on process restart.
    Counter,
    /// Value that can go up and down.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// Incremental builder for the Prometheus text exposition format.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::prometheus::{MetricKind, PrometheusText};
///
/// let mut out = PrometheusText::new();
/// out.sample(
///     "p2ps_reactor_connections",
///     MetricKind::Gauge,
///     "open connections on this shard",
///     &[("reactor", "0")],
///     7.0,
/// );
/// let text = out.render();
/// assert!(text.contains("# TYPE p2ps_reactor_connections gauge"));
/// assert!(text.contains("p2ps_reactor_connections{reactor=\"0\"} 7"));
/// ```
#[derive(Debug, Default)]
pub struct PrometheusText {
    order: Vec<String>,
    families: HashMap<String, Family>,
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    samples: Vec<String>,
}

impl PrometheusText {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `family` with the given label pairs.
    ///
    /// The first sample of a family fixes its kind and help text;
    /// subsequent samples only append a line. Values that are whole
    /// numbers render without a fractional part.
    pub fn sample(
        &mut self,
        family: &str,
        kind: MetricKind,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let entry = self.families.entry(family.to_string()).or_insert_with(|| {
            self.order.push(family.to_string());
            Family {
                kind,
                help: help.to_string(),
                samples: Vec::new(),
            }
        });
        let mut line = String::with_capacity(family.len() + 16 * labels.len() + 8);
        line.push_str(family);
        if !labels.is_empty() {
            line.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{k}=\"{}\"", escape_label_value(v));
            }
            line.push('}');
        }
        line.push(' ');
        line.push_str(&format_value(value));
        entry.samples.push(line);
    }

    /// Renders the full exposition: per family, `# HELP`, `# TYPE`, then
    /// each sample line, families in first-seen order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for name in &self.order {
            let fam = &self.families[name];
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for line in &fam.samples {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Number of distinct families recorded so far.
    pub fn family_count(&self) -> usize {
        self.order.len()
    }
}

fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline become `\\`, `\"` and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_samples_by_family_with_single_header() {
        let mut out = PrometheusText::new();
        out.sample("a_total", MetricKind::Counter, "as", &[("x", "1")], 3.0);
        out.sample("b", MetricKind::Gauge, "bs", &[], -2.0);
        out.sample("a_total", MetricKind::Counter, "as", &[("x", "2")], 4.0);
        let text = out.render();
        assert_eq!(text.matches("# TYPE a_total counter").count(), 1);
        let a_help = text.find("# HELP a_total").unwrap();
        let line1 = text.find("a_total{x=\"1\"} 3").unwrap();
        let line2 = text.find("a_total{x=\"2\"} 4").unwrap();
        assert!(a_help < line1 && line1 < line2, "family lines stay grouped");
        assert!(text.contains("b -2\n"));
        assert_eq!(out.family_count(), 2);
    }

    #[test]
    fn escapes_label_values() {
        let mut out = PrometheusText::new();
        out.sample("m", MetricKind::Gauge, "h", &[("item", "a\"b\\c\nd")], 1.0);
        assert!(out.render().contains("m{item=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn whole_values_render_without_fraction() {
        assert_eq!(format_value(3072.0), "3072");
        assert_eq!(format_value(-5.0), "-5");
        assert_eq!(format_value(0.5), "0.5");
    }
}
