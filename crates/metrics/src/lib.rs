//! Metrics substrate for the `p2ps` peer-to-peer media streaming
//! reproduction.
//!
//! The evaluation section of *On Peer-to-Peer Media Streaming* (ICDCS 2002)
//! reports time series (system capacity, accumulative admission rate,
//! accumulative average buffering delay), windowed averages (lowest favored
//! class per 3-hour window) and tables (average rejections before
//! admission). This crate provides the small, dependency-light building
//! blocks used by the simulator and the experiment harness to collect and
//! render those results:
//!
//! * [`OnlineStats`] — streaming mean/variance/min/max (Welford).
//! * [`TimeSeries`] — `(t, value)` samples with resampling helpers.
//! * [`StepSeries`] — piecewise-constant series sampled on demand.
//! * [`WindowedAverage`] — fixed-width window averages (paper Fig. 7).
//! * [`Histogram`] — linear-bucket histogram with percentile queries.
//! * [`Reservoir`] — uniform reservoir sample with exact quantiles.
//! * [`Table`] — aligned text tables (paper Table 1).
//! * [`eng`] — fixed-width engineering notation for large counts.
//! * [`AsciiPlot`] — multi-series terminal line plots (paper figures).
//! * [`CsvWriter`] — minimal CSV emission for post-processing.
//! * [`prometheus`] — Prometheus text exposition rendering, used by the
//!   `p2ps-monitor` introspection tree's `/metrics` endpoint.
//!
//! # Examples
//!
//! ```
//! use p2ps_metrics::{OnlineStats, TimeSeries};
//!
//! let mut stats = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     stats.record(x);
//! }
//! assert_eq!(stats.mean(), 2.0);
//!
//! let mut series = TimeSeries::new("capacity");
//! series.push(0.0, 100.0);
//! series.push(1.0, 150.0);
//! assert_eq!(series.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv;
mod format;
mod histogram;
mod plot;
pub mod prometheus;
mod reservoir;
mod stats;
mod table;
mod timeseries;
mod window;

pub use csv::CsvWriter;
pub use format::eng;
pub use histogram::Histogram;
pub use plot::AsciiPlot;
pub use reservoir::Reservoir;
pub use stats::OnlineStats;
pub use table::Table;
pub use timeseries::{StepSeries, TimeSeries};
pub use window::WindowedAverage;
