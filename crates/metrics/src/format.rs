//! Fixed-width number formatting for aligned table output.

/// Suffixes for successive powers of 1000 (engineering notation).
const SUFFIXES: [char; 7] = [' ', 'k', 'M', 'G', 'T', 'P', 'E'];

/// Formats `value` in fixed-width engineering notation: a mantissa in
/// `[0, 1000)` with three decimals, right-aligned to seven characters,
/// followed by a power-of-1000 suffix (`' '`, `k`, `M`, `G`, `T`, `P`,
/// `E`) — eight characters total, so columns of counts spanning `1` to
/// `10⁶`-and-beyond align on the decimal point.
///
/// Non-finite values render as a right-aligned token of the same width.
/// Negative values carry a leading sign inside the mantissa field and
/// keep the eight-character width down to `-99.999`; larger negative
/// mantissas widen by one character.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::eng;
///
/// assert_eq!(eng(0.0), "  0.000 ");
/// assert_eq!(eng(950.0), "950.000 ");
/// assert_eq!(eng(9_500.0), "  9.500k");
/// assert_eq!(eng(1_000_000.0), "  1.000M");
/// assert_eq!(eng(1.0e6) .len(), eng(12.0).len());
/// ```
pub fn eng(value: f64) -> String {
    if !value.is_finite() {
        return format!("{value:>8}");
    }
    let mut mantissa = value;
    let mut tier = 0usize;
    // 999.9995 rounds up to a four-digit mantissa at three decimals, so
    // promote to the next tier just before that happens.
    while mantissa.abs() >= 999.9995 && tier + 1 < SUFFIXES.len() {
        mantissa /= 1000.0;
        tier += 1;
    }
    format!("{mantissa:>7.3}{}", SUFFIXES[tier])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_magnitude_renders_eight_chars() {
        let mut v = 1.0f64;
        for _ in 0..19 {
            assert_eq!(eng(v).len(), 8, "width of {v}: {:?}", eng(v));
            v *= 10.0;
        }
        assert_eq!(eng(0.0).len(), 8);
        assert_eq!(eng(0.001).len(), 8);
    }

    #[test]
    fn tier_boundaries() {
        assert_eq!(eng(999.0), "999.000 ");
        assert_eq!(eng(1000.0), "  1.000k");
        assert_eq!(eng(999_999.0), "999.999k");
        assert_eq!(eng(1_000_000.0), "  1.000M");
        assert_eq!(eng(2.5e9), "  2.500G");
    }

    #[test]
    fn rounding_never_overflows_the_mantissa() {
        // 999.9996 would format as "1000.000" without tier promotion.
        assert_eq!(eng(999.9996), "  1.000k");
        assert_eq!(eng(999_999.6), "  1.000M");
        assert_eq!(eng(999.9996).len(), 8);
    }

    #[test]
    fn small_negatives_keep_width() {
        assert_eq!(eng(-12.5), "-12.500 ");
        assert_eq!(eng(-12.5).len(), 8);
    }

    #[test]
    fn million_peer_rows_align() {
        // The motivating case: a table column mixing seed counts with
        // million-peer populations must align on the decimal point.
        let cells = [eng(100.0), eng(10_000.0), eng(1_000_000.0)];
        assert!(cells.iter().all(|c| c.len() == 8));
        let dots: Vec<usize> = cells.iter().map(|c| c.find('.').unwrap()).collect();
        assert!(dots.windows(2).all(|w| w[0] == w[1]), "dots {dots:?}");
    }

    #[test]
    fn non_finite_values_render_in_width() {
        assert_eq!(eng(f64::NAN).len(), 8);
        assert_eq!(eng(f64::INFINITY).len(), 8);
    }
}
