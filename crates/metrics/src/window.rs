//! Fixed-width window averages.

use serde::{Deserialize, Serialize};

use crate::TimeSeries;

/// Averages observations into fixed-width, non-overlapping time windows.
///
/// Paper Fig. 7 plots the "lowest favored class" averaged over every
/// 3-hour window (non-accumulative); this type implements exactly that
/// aggregation: each observation `(t, v)` is attributed to window
/// `⌊t / width⌋` and each window reports the mean of its observations.
///
/// # Examples
///
/// ```
/// use p2ps_metrics::WindowedAverage;
///
/// let mut w = WindowedAverage::new("favored", 3.0);
/// w.record(0.5, 4.0);
/// w.record(1.0, 2.0);
/// w.record(4.0, 1.0);
/// let series = w.to_series();
/// // window [0,3) midpoint 1.5 averages 3.0; window [3,6) midpoint 4.5 is 1.0
/// let points: Vec<_> = series.iter().collect();
/// assert_eq!(points, vec![(1.5, 3.0), (4.5, 1.0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedAverage {
    name: String,
    width: f64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl WindowedAverage {
    /// Creates an aggregator with the given window width (same unit as the
    /// observation times).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive and finite.
    pub fn new(name: impl Into<String>, width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "window width must be positive"
        );
        WindowedAverage {
            name: name.into(),
            width,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The window width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Records an observation at time `t >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or non-finite.
    pub fn record(&mut self, t: f64, value: f64) {
        assert!(t >= 0.0 && t.is_finite(), "observation time must be >= 0");
        if !value.is_finite() {
            return;
        }
        let idx = (t / self.width) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Number of windows that have received at least one observation
    /// (windows are indexed from zero, so trailing empty windows do not
    /// count but interior gaps do occupy a slot).
    pub fn window_count(&self) -> usize {
        self.sums.len()
    }

    /// The mean of window `idx`, if it has observations.
    pub fn window_mean(&self, idx: usize) -> Option<f64> {
        match self.counts.get(idx) {
            Some(&c) if c > 0 => Some(self.sums[idx] / c as f64),
            _ => None,
        }
    }

    /// Converts to a [`TimeSeries`] with one point per non-empty window,
    /// placed at the window midpoint.
    pub fn to_series(&self) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        for i in 0..self.sums.len() {
            if self.counts[i] > 0 {
                let mid = (i as f64 + 0.5) * self.width;
                out.push(mid, self.sums[i] / self.counts[i] as f64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_within_windows() {
        let mut w = WindowedAverage::new("w", 10.0);
        w.record(0.0, 1.0);
        w.record(9.999, 3.0);
        w.record(10.0, 10.0);
        assert_eq!(w.window_mean(0), Some(2.0));
        assert_eq!(w.window_mean(1), Some(10.0));
        assert_eq!(w.window_mean(2), None);
    }

    #[test]
    fn empty_windows_are_skipped_in_series() {
        let mut w = WindowedAverage::new("w", 1.0);
        w.record(0.5, 1.0);
        w.record(2.5, 2.0); // window 1 stays empty
        let pts: Vec<_> = w.to_series().iter().collect();
        assert_eq!(pts, vec![(0.5, 1.0), (2.5, 2.0)]);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut w = WindowedAverage::new("w", 1.0);
        w.record(0.0, f64::NAN);
        assert_eq!(w.window_mean(0), None);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_time_panics() {
        let mut w = WindowedAverage::new("w", 1.0);
        w.record(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = WindowedAverage::new("w", 0.0);
    }

    #[test]
    fn accessors() {
        let w = WindowedAverage::new("favored", 3.0);
        assert_eq!(w.name(), "favored");
        assert_eq!(w.width(), 3.0);
        assert_eq!(w.window_count(), 0);
    }
}
